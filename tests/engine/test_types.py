"""Tests for column types, schemas, and stream tuples."""

import pytest

from repro.engine import (
    Column,
    ColumnType,
    Schema,
    SchemaError,
    StreamTuple,
    parse_type_name,
)


class TestColumnType:
    @pytest.mark.parametrize(
        "ctype,good,bad",
        [
            (ColumnType.INTEGER, 5, 5.5),
            (ColumnType.INTEGER, -3, True),  # bools are not integers here
            (ColumnType.FLOAT, 5.5, "x"),
            (ColumnType.FLOAT, 5, True),
            (ColumnType.TEXT, "hi", 5),
            (ColumnType.BOOLEAN, True, 1),
            (ColumnType.TIMESTAMP, 12.5, "now"),
        ],
    )
    def test_validate(self, ctype, good, bad):
        assert ctype.validate(good)
        assert not ctype.validate(bad)

    def test_null_always_valid(self):
        for t in ColumnType:
            assert t.validate(None)

    def test_synopsis_accepts_objects(self):
        assert ColumnType.SYNOPSIS.validate(object())

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("integer", ColumnType.INTEGER),
            ("INT", ColumnType.INTEGER),
            ("Float", ColumnType.FLOAT),
            ("cstring", ColumnType.TEXT),
            ("Synopsis", ColumnType.SYNOPSIS),
            ("timestamp", ColumnType.TIMESTAMP),
        ],
    )
    def test_parse_type_name(self, name, expected):
        assert parse_type_name(name) is expected

    def test_parse_unknown_type(self):
        with pytest.raises(ValueError, match="unknown column type"):
            parse_type_name("blob")


class TestSchema:
    def test_of_shorthand(self):
        s = Schema.of(("a", ColumnType.INTEGER), ("b", ColumnType.TEXT))
        assert s.names == ("a", "b")
        assert len(s) == 2

    def test_position_case_insensitive(self):
        s = Schema.of(("Alpha", ColumnType.INTEGER))
        assert s.position("ALPHA") == 0
        assert "alpha" in s

    def test_position_unknown_raises(self):
        s = Schema.of(("a", ColumnType.INTEGER))
        with pytest.raises(SchemaError, match="no column"):
            s.position("z")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(("a", ColumnType.INTEGER), ("A", ColumnType.TEXT))

    def test_project(self):
        s = Schema.of(("a", ColumnType.INTEGER), ("b", ColumnType.TEXT))
        p = s.project(["b"])
        assert p.names == ("b",)
        assert p.column("b").type is ColumnType.TEXT

    def test_project_reorders(self):
        s = Schema.of(("a", ColumnType.INTEGER), ("b", ColumnType.TEXT))
        assert s.project(["b", "a"]).names == ("b", "a")

    def test_concat_with_prefixes(self):
        a = Schema.of(("x", ColumnType.INTEGER))
        b = Schema.of(("x", ColumnType.INTEGER))
        c = a.concat(b, prefix_left="L.", prefix_right="R.")
        assert c.names == ("L.x", "R.x")

    def test_concat_collision_without_prefix(self):
        a = Schema.of(("x", ColumnType.INTEGER))
        with pytest.raises(SchemaError):
            a.concat(a)

    def test_validate_row_ok(self):
        s = Schema.of(("a", ColumnType.INTEGER), ("b", ColumnType.TEXT))
        s.validate_row((1, "x"))
        s.validate_row((None, None))

    def test_validate_row_arity(self):
        s = Schema.of(("a", ColumnType.INTEGER))
        with pytest.raises(SchemaError, match="arity"):
            s.validate_row((1, 2))

    def test_validate_row_type(self):
        s = Schema.of(("a", ColumnType.INTEGER))
        with pytest.raises(SchemaError, match="invalid"):
            s.validate_row(("nope",))

    def test_equality_and_hash(self):
        a = Schema.of(("a", ColumnType.INTEGER))
        b = Schema.of(("a", ColumnType.INTEGER))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.of(("a", ColumnType.TEXT))

    def test_iteration(self):
        s = Schema.of(("a", ColumnType.INTEGER))
        cols = list(s)
        assert cols == [Column("a", ColumnType.INTEGER)]


class TestStreamTuple:
    def test_ordering_by_timestamp(self):
        early = StreamTuple(1.0, (5,))
        late = StreamTuple(2.0, (1,))
        assert early < late
        assert sorted([late, early])[0] is early

    def test_frozen(self):
        t = StreamTuple(1.0, (1,))
        with pytest.raises(AttributeError):
            t.timestamp = 2.0
