"""Tests for arrival processes (steady and Markov-bursty)."""

import pytest

from repro.sources import (
    GaussianValues,
    MarkovBurstArrival,
    ParetoBurstArrival,
    RowGenerator,
    SteadyArrival,
    generate_stream,
)


class TestSteady:
    def test_exact_rate_without_jitter(self, rng):
        arr = SteadyArrival(rate=10.0)
        schedule = arr.schedule(100, rng)
        assert schedule[-1].timestamp == pytest.approx(10.0)
        gaps = [
            b.timestamp - a.timestamp for a, b in zip(schedule, schedule[1:])
        ]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_no_burst_flags(self, rng):
        arr = SteadyArrival(rate=10.0)
        assert not any(a.is_burst for a in arr.schedule(50, rng))

    def test_jitter_preserves_mean_rate(self, rng):
        arr = SteadyArrival(rate=10.0, jitter=0.5)
        schedule = arr.schedule(5000, rng)
        assert schedule[-1].timestamp == pytest.approx(500.0, rel=0.05)

    def test_monotone_timestamps(self, rng):
        arr = SteadyArrival(rate=5.0, jitter=0.9)
        ts = [a.timestamp for a in arr.schedule(200, rng)]
        assert ts == sorted(ts)

    def test_validation(self):
        with pytest.raises(ValueError):
            SteadyArrival(rate=0)
        with pytest.raises(ValueError):
            SteadyArrival(rate=1, jitter=1.0)

    def test_peak_rate(self):
        assert SteadyArrival(rate=7.0).peak_rate == 7.0


class TestMarkovBurst:
    def make(self, **kw):
        defaults = dict(
            base_rate=10.0,
            burst_speedup=100.0,
            burst_fraction=0.6,
            expected_burst_length=200.0,
        )
        defaults.update(kw)
        return MarkovBurstArrival(**defaults)

    def test_paper_parameters(self, rng):
        """60% of tuples in bursts, expected burst length 200, 100x speed."""
        arr = self.make()
        schedule = arr.schedule(60_000, rng)
        burst_frac = sum(a.is_burst for a in schedule) / len(schedule)
        assert burst_frac == pytest.approx(0.6, abs=0.05)

    def test_expected_burst_length(self, rng):
        arr = self.make()
        schedule = arr.schedule(120_000, rng)
        lengths, current = [], 0
        for a in schedule:
            if a.is_burst:
                current += 1
            elif current:
                lengths.append(current)
                current = 0
        mean_len = sum(lengths) / len(lengths)
        assert mean_len == pytest.approx(200.0, rel=0.15)

    def test_burst_gaps_100x_shorter(self, rng):
        arr = self.make()
        schedule = arr.schedule(20_000, rng)
        burst_gaps, normal_gaps = [], []
        for a, b in zip(schedule, schedule[1:]):
            gap = b.timestamp - a.timestamp
            (burst_gaps if b.is_burst else normal_gaps).append(gap)
        assert min(normal_gaps) / max(burst_gaps) == pytest.approx(100.0, rel=0.01)

    def test_rates(self):
        arr = self.make()
        assert arr.peak_rate == 1000.0
        # mean gap = 0.6/1000 + 0.4/10 = 0.0406 -> ~24.6 tuples/sec
        assert arr.mean_rate == pytest.approx(1 / 0.0406, rel=1e-6)

    def test_stationary_probabilities(self):
        arr = self.make()
        p_in, p_out = arr.entry_probability, arr.exit_probability
        assert p_in / (p_in + p_out) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(base_rate=0)
        with pytest.raises(ValueError):
            self.make(burst_speedup=0.5)
        with pytest.raises(ValueError):
            self.make(burst_fraction=1.0)
        with pytest.raises(ValueError):
            self.make(expected_burst_length=0.5)


class TestParetoBurst:
    def make(self, **kw):
        defaults = dict(base_rate=10.0, burst_speedup=50.0, alpha=1.5)
        defaults.update(kw)
        return ParetoBurstArrival(**defaults)

    def test_alternating_periods(self, rng):
        arr = self.make()
        schedule = arr.schedule(5000, rng)
        # Periods alternate: count the transitions.
        transitions = sum(
            a.is_burst != b.is_burst for a, b in zip(schedule, schedule[1:])
        )
        assert transitions > 10

    def test_heavy_tail_produces_long_bursts(self, rng):
        arr = self.make(min_burst_length=10)
        schedule = arr.schedule(60_000, rng)
        lengths, current = [], 0
        for a in schedule:
            if a.is_burst:
                current += 1
            elif current:
                lengths.append(current)
                current = 0
        # Pareto: the max burst dwarfs the median (infinite variance regime).
        lengths.sort()
        assert lengths[-1] > lengths[len(lengths) // 2] * 5

    def test_burst_rate_ratio(self, rng):
        arr = self.make()
        schedule = arr.schedule(10_000, rng)
        burst_gaps, idle_gaps = [], []
        for a, b in zip(schedule, schedule[1:]):
            (burst_gaps if b.is_burst else idle_gaps).append(
                b.timestamp - a.timestamp
            )
        assert min(idle_gaps) / max(burst_gaps) == pytest.approx(50.0, rel=0.01)

    def test_mean_period_lengths(self):
        arr = self.make(alpha=2.0, min_burst_length=10, min_idle_length=30)
        burst, idle = arr.mean_period_lengths
        assert burst == pytest.approx(20.0)
        assert idle == pytest.approx(60.0)

    def test_peak_rate(self):
        assert self.make().peak_rate == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(alpha=1.0)
        with pytest.raises(ValueError):
            self.make(base_rate=0)
        with pytest.raises(ValueError):
            self.make(min_burst_length=0)

    def test_deterministic_under_seed(self):
        import random as _random

        arr = self.make()
        a = arr.schedule(500, _random.Random(9))
        b = arr.schedule(500, _random.Random(9))
        assert a == b


class TestGenerateStream:
    def test_burst_tuples_from_shifted_distribution(self, rng):
        normal = RowGenerator([GaussianValues(mean=20, std=2)])
        burst = RowGenerator([GaussianValues(mean=80, std=2)])
        arr = MarkovBurstArrival(base_rate=10, burst_fraction=0.5,
                                 expected_burst_length=50)
        tuples = generate_stream(5000, arr, normal, burst, rng)
        lows = [t for t in tuples if t.row[0] < 50]
        highs = [t for t in tuples if t.row[0] >= 50]
        assert len(lows) > 1000 and len(highs) > 1000

    def test_without_burst_generator(self, rng):
        normal = RowGenerator([GaussianValues(mean=20, std=2)])
        arr = MarkovBurstArrival(base_rate=10)
        tuples = generate_stream(1000, arr, normal, None, rng)
        assert all(t.row[0] < 50 for t in tuples)

    def test_timestamps_sorted_and_rows_match_arity(self, rng):
        normal = RowGenerator([GaussianValues(), GaussianValues()])
        tuples = generate_stream(100, SteadyArrival(5.0), normal, None, rng)
        assert [t.timestamp for t in tuples] == sorted(t.timestamp for t in tuples)
        assert all(len(t.row) == 2 for t in tuples)
