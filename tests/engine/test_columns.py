"""ColumnBatch: zero-copy views, gathers, and row-materialization parity."""

import pytest

from repro.engine.columns import ColumnBatch
from repro.engine.types import Column, ColumnType, Schema, StreamTuple

SCHEMA = Schema([Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)])


def make_batch(shared=True):
    cols = ([1, 2, 3, 4], ["w", "x", "y", "z"])
    ts = 5.0 if shared else [0.1, 0.2, 0.3, 0.4]
    return ColumnBatch(cols, ts, SCHEMA)


class TestConstruction:
    def test_from_rows_round_trips(self):
        rows = [(1, "w"), (2, "x"), (3, "y")]
        batch = ColumnBatch.from_rows(rows, 1.5, SCHEMA)
        assert len(batch) == 3
        assert batch.to_rows() == rows
        assert batch.shared_timestamp
        assert batch.timestamp_at(2) == 1.5

    def test_from_stream_tuples(self):
        tuples = [StreamTuple(0.1, (1, "w")), StreamTuple(0.2, (2, "x"))]
        batch = ColumnBatch.from_stream_tuples(tuples, SCHEMA)
        assert batch.stream_tuples() == tuples
        assert not batch.shared_timestamp

    def test_empty(self):
        batch = ColumnBatch.from_rows([], 0.0, SCHEMA)
        assert len(batch) == 0
        assert batch.to_rows() == []
        assert batch.stream_tuples() == []
        assert list(batch) == []


class TestViews:
    def test_slice_is_zero_copy(self):
        batch = make_batch()
        view = batch.slice(1, 3)
        assert len(view) == 2
        assert view.columns is batch.columns  # shared, not copied
        assert view.to_rows() == [(2, "x"), (3, "y")]
        assert view.row(0) == (2, "x")
        assert view.tuple_at(1) == StreamTuple(5.0, (3, "y"))

    def test_slice_of_slice_composes(self):
        view = make_batch(shared=False).slice(1).slice(1, 2)
        assert view.to_rows() == [(3, "y")]
        assert view.timestamp_at(0) == 0.3

    def test_slice_clamps_hi(self):
        assert len(make_batch().slice(2, 99)) == 2

    def test_select_gathers_rows_and_timestamps(self):
        batch = make_batch(shared=False)
        picked = batch.select([3, 0])
        assert picked.to_rows() == [(4, "z"), (1, "w")]
        assert picked.timestamps == [0.4, 0.1]
        shared = make_batch().select([1])
        assert shared.timestamps == 5.0  # scalar stays scalar

    def test_select_respects_view_offset(self):
        picked = make_batch(shared=False).slice(2).select([1])
        assert picked.to_rows() == [(4, "z")]
        assert picked.timestamps == [0.4]


class TestMaterialization:
    @pytest.mark.parametrize("shared", [True, False])
    def test_stream_tuples_matches_per_row_pivot(self, shared):
        batch = make_batch(shared)
        expected = [batch.tuple_at(i) for i in range(len(batch))]
        assert batch.stream_tuples() == expected
        assert list(batch) == expected
        assert batch.stream_tuples(1, 3) == expected[1:3]
        assert batch.stream_tuples(3, 2) == []

    def test_stream_tuples_on_view(self):
        view = make_batch(shared=False).slice(1, 3)
        assert view.stream_tuples() == [
            StreamTuple(0.2, (2, "x")),
            StreamTuple(0.3, (3, "y")),
        ]

    def test_repr(self):
        assert "4 rows x 2 cols" in repr(make_batch())
