"""Join ordering for synopsis plans (paper Section 5.2).

*"The join ordering problem is quite different when one is performing query
processing over synopsis data structures instead of over relations ... the
size of the synopsis of a relation depends not on the number of tuples in
the relation but on the structure of the synopsis."*

Cost therefore derives from *bucket counts*, not cardinalities.  The model
here captures the two regimes the paper's implementation exposed:

* **aligned** synopses (shared grids: sparse cubic histograms, dense grids,
  grid-constrained MHISTs) — joining touches only coordinate-matched bucket
  pairs, and the result's bucket count is bounded by the output grid;
* **unaligned** synopses (free MHIST boundaries) — every overlapping bucket
  pair produces an output bucket, so sizes compound multiplicatively, and
  join order changes intermediate sizes dramatically.

:func:`best_order` searches left-deep orders (exhaustively up to 8 inputs,
greedily beyond) for the minimum total intermediate size.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class JoinInput:
    """One input to a synopsis join chain: a name and its bucket count."""

    name: str
    size: int


def aligned_result_size(a: int, b: int, grid_cells: int = 400) -> int:
    """Result bucket count for grid-aligned joins.

    Matched pairs only, and the output cannot exceed the output grid —
    ``grid_cells`` caps it (e.g. a 20×20 grid over two surviving dims).
    """
    return max(1, min(a * b, grid_cells))


def unaligned_result_size(a: int, b: int) -> int:
    """Result bucket count for unaligned joins: the quadratic regime."""
    return max(1, a * b)


CostFn = Callable[[int, int], int]


def plan_cost(order: Sequence[JoinInput], result_size: CostFn) -> int:
    """Total work of a left-deep plan: Σ pairwise bucket-pair probes.

    Each join of intermediates with ``a`` and ``b`` buckets inspects ``a·b``
    pairs (the paper's observed join cost); the intermediate then has
    ``result_size(a, b)`` buckets.
    """
    if not order:
        return 0
    cost = 0
    current = order[0].size
    for nxt in order[1:]:
        cost += current * nxt.size
        current = result_size(current, nxt.size)
    return cost


def _connected_orders(
    inputs: Sequence[JoinInput], edges: set[frozenset[str]]
) -> "itertools.chain":
    """Permutations that never require a cross product (if edges are given)."""

    def ok(perm: tuple[JoinInput, ...]) -> bool:
        if not edges:
            return True
        seen = {perm[0].name}
        for nxt in perm[1:]:
            if not any(frozenset((s, nxt.name)) in edges for s in seen):
                return False
            seen.add(nxt.name)
        return True

    return (p for p in itertools.permutations(inputs) if ok(p))


def best_order(
    inputs: Sequence[JoinInput],
    edges: Sequence[tuple[str, str]] = (),
    result_size: CostFn = unaligned_result_size,
) -> list[JoinInput]:
    """The cheapest left-deep join order.

    ``edges`` lists which input pairs share a join predicate; orders that
    would need a cross product are excluded when edges are provided.
    Exhaustive for up to 8 inputs, greedy (smallest next intermediate)
    beyond.
    """
    inputs = list(inputs)
    if len(inputs) <= 1:
        return inputs
    edge_set = {frozenset(e) for e in edges}
    if len(inputs) <= 8:
        candidates = list(_connected_orders(inputs, edge_set))
        if not candidates:  # disconnected graph: fall back to all orders
            candidates = list(itertools.permutations(inputs))
        return list(min(candidates, key=lambda p: plan_cost(p, result_size)))
    # Greedy: start from the smallest input, repeatedly take the connected
    # input minimizing the next intermediate size.
    remaining = sorted(inputs, key=lambda i: i.size)
    order = [remaining.pop(0)]
    current = order[0].size
    while remaining:
        def connected(i: JoinInput) -> bool:
            return not edge_set or any(
                frozenset((s.name, i.name)) in edge_set for s in order
            )

        pool = [i for i in remaining if connected(i)] or remaining
        nxt = min(pool, key=lambda i: result_size(current, i.size))
        remaining.remove(nxt)
        order.append(nxt)
        current = result_size(current, nxt.size)
    return order
