"""Tests for the SQL-to-SQL rewrite output (paper Figures 4 & 5)."""

import pytest

from repro.rewrite import (
    RewriteError,
    SPJPlan,
    dropped_view,
    kept_view,
    rewrite_to_sql,
    shadow_view,
    substream_ddl,
)
from repro.sql import (
    Binder,
    CreateStreamStmt,
    CreateViewStmt,
    parse_script,
    parse_statement,
    render_statement,
)

QUERY = "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d;"


@pytest.fixture
def plan(paper_catalog):
    return SPJPlan.from_bound(Binder(paper_catalog).bind(parse_statement(QUERY)))


class TestSubstreamDDL:
    def test_four_streams_and_one_view_per_input(self, plan):
        stmts = substream_ddl(plan)
        streams = [s for s in stmts if isinstance(s, CreateStreamStmt)]
        views = [s for s in stmts if isinstance(s, CreateViewStmt)]
        assert len(streams) == 3 * 4  # kept, dropped, kept_syn, dropped_syn
        assert len(views) == 3  # X_all
        names = {s.name for s in streams}
        assert {"R_kept", "R_dropped", "R_kept_syn", "R_dropped_syn"} <= names

    def test_substream_schemas_match_base(self, plan):
        stmts = substream_ddl(plan)
        s_kept = next(s for s in stmts if getattr(s, "name", "") == "S_kept")
        assert [(c.name, c.type_name) for c in s_kept.columns] == [
            ("b", "integer"),
            ("c", "integer"),
        ]

    def test_synopsis_stream_schema(self, plan):
        stmts = substream_ddl(plan)
        syn = next(s for s in stmts if getattr(s, "name", "") == "T_dropped_syn")
        assert [c.name for c in syn.columns] == ["syn", "earliest", "latest"]


class TestKeptAndDroppedViews:
    def test_kept_view_targets_kept_substreams(self, plan):
        sql = render_statement(kept_view(plan))
        assert "R_kept R" in sql and "S_kept S" in sql and "T_kept T" in sql
        assert "R.a = S.b" in sql.replace("(", "").replace(")", "")

    def test_dropped_view_has_one_arm_per_relation(self, plan):
        view = dropped_view(plan)
        sql = render_statement(view)
        assert sql.count("UNION ALL") == 2  # three arms
        assert "R_dropped" in sql and "S_dropped" in sql and "T_dropped" in sql
        # Arm i uses kept before the pivot and _all after it.
        assert "S_all" in sql and "T_all" in sql

    def test_generated_views_parse_back(self, plan):
        for stmt in [kept_view(plan), dropped_view(plan)]:
            reparsed = parse_statement(render_statement(stmt))
            assert isinstance(reparsed, CreateViewStmt)

    def test_dropped_view_executes_correctly(self, plan, paper_catalog, rng):
        """Execute the generated Q_dropped SQL and compare with the exact
        lost-results bag — SQL-level end-to-end validation of Figure 4."""
        from repro.algebra import Multiset
        from repro.engine import QueryExecutor
        from repro.rewrite import evaluate_exact, evaluate_expansion

        # Register substreams + views in the catalog, then run the SQL.
        for stmt in substream_ddl(plan):
            if isinstance(stmt, CreateStreamStmt):
                from repro.engine.types import Column, ColumnType, Schema
                from repro.engine import parse_type_name

                schema = Schema(
                    [Column(c.name, parse_type_name(c.type_name)) for c in stmt.columns]
                )
                paper_catalog.create_stream(stmt.name, schema, replace=True)
            else:
                paper_catalog.create_view(stmt.name, stmt.query, replace=True)

        full, kept, dropped, inputs = {}, {}, {}, {}
        for name, arity in (("R", 1), ("S", 2), ("T", 1)):
            rel = Multiset(
                tuple(rng.randint(1, 10) for _ in range(arity)) for _ in range(40)
            )
            k, d = Multiset(), Multiset()
            for row in rel:
                (k if rng.random() < 0.6 else d).add(row)
            full[name], kept[name], dropped[name] = rel, k, d
            inputs[f"{name.lower()}_kept"] = k
            inputs[f"{name.lower()}_dropped"] = d

        bound = Binder(paper_catalog).bind(dropped_view(plan).query)
        result = QueryExecutor(paper_catalog).execute(bound, inputs)
        assert result.rows == evaluate_expansion(plan, kept, dropped)
        assert result.rows + evaluate_exact(plan, kept) == evaluate_exact(
            plan, full
        )


class TestShadowView:
    def test_matches_figure5_structure(self, plan):
        sql = render_statement(shadow_view(plan))
        # The exact nested expression of paper Figure 5:
        expected = (
            "union(equijoin(R_d.syn, 'R.a', equijoin(union(S_d.syn, S_k.syn), "
            "'S.c', union(T_d.syn, T_k.syn), 'T.d'), 'S.b'), "
            "equijoin(R_k.syn, 'R.a', union(equijoin(S_d.syn, 'S.c', "
            "union(T_d.syn, T_k.syn), 'T.d'), equijoin(S_k.syn, 'S.c', "
            "T_d.syn, 'T.d')), 'S.b'))"
        )
        assert expected in sql

    def test_from_clause_lists_all_synopsis_streams(self, plan):
        view = shadow_view(plan)
        names = {t.name for t in view.query.from_sources}
        assert names == {
            "R_kept_syn",
            "R_dropped_syn",
            "S_kept_syn",
            "S_dropped_syn",
            "T_kept_syn",
            "T_dropped_syn",
        }

    def test_window_clause_per_stream(self, plan):
        view = shadow_view(plan, window_interval="2 seconds")
        assert len(view.query.windows) == 6
        assert all(w.interval == "2 seconds" for w in view.query.windows)

    def test_parses_back(self, plan):
        reparsed = parse_statement(render_statement(shadow_view(plan)))
        assert isinstance(reparsed, CreateViewStmt)

    def test_multi_predicate_link_uses_equijoin_multi(self, paper_catalog):
        from repro.engine import ColumnType, Schema

        paper_catalog.create_stream(
            "U", Schema.of(("x", ColumnType.INTEGER), ("y", ColumnType.INTEGER))
        )
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(
                parse_statement(
                    "SELECT * FROM S, U WHERE S.b = U.x AND S.c = U.y"
                )
            )
        )
        sql = render_statement(shadow_view(plan))
        assert "equijoin_multi(" in sql
        assert "'S.b, S.c'" in sql and "'U.x, U.y'" in sql
        parse_statement(sql)  # round-trips


def test_rewrite_to_sql_full_script_parses(plan):
    script = rewrite_to_sql(plan)
    stmts = parse_script(script)
    # 12 streams + 3 all-views + Q_kept + Q_dropped + Q_dropped_syn
    assert len(stmts) == 18
