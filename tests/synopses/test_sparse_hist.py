"""Tests for the sparse cubic-bucket histogram (the paper's fast synopsis)."""

import pytest

from repro.synopses import (
    Dimension,
    SparseCubicHistogram,
    SparseHistogramFactory,
    SynopsisError,
)

A = Dimension("a", 1, 100)
BC = [Dimension("b", 1, 100), Dimension("c", 1, 100)]


class TestBasics:
    def test_insert_and_total(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        s.insert((1,))
        s.insert((99,), weight=2.0)
        assert s.total() == pytest.approx(3.0)

    def test_storage_is_sparse(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        for _ in range(100):
            s.insert((7,))
        assert s.storage_size() == 1  # all mass in one bucket

    def test_invalid_width(self):
        with pytest.raises(SynopsisError):
            SparseCubicHistogram([A], bucket_width=0)

    def test_scale(self):
        s = SparseCubicHistogram([A])
        s.insert((1,))
        assert s.scale(3.0).total() == pytest.approx(3.0)
        assert s.total() == pytest.approx(1.0)  # original untouched

    def test_empty_like(self):
        s = SparseCubicHistogram([A], bucket_width=7)
        s.insert((1,))
        e = s.empty_like()
        assert e.total() == 0 and e.bucket_width == 7


class TestProjectAndUnion:
    def test_project_preserves_total(self):
        s = SparseCubicHistogram(BC, bucket_width=5)
        for v in range(1, 50):
            s.insert((v, 101 - v))
        p = s.project(["b"])
        assert p.total() == pytest.approx(s.total())
        assert p.dim_names == ("b",)

    def test_union_adds(self):
        a = SparseCubicHistogram([A], bucket_width=5)
        b = SparseCubicHistogram([A], bucket_width=5)
        a.insert((1,))
        b.insert((1,))
        b.insert((50,))
        u = a.union_all(b)
        assert u.total() == pytest.approx(3.0)

    def test_union_width_mismatch(self):
        a = SparseCubicHistogram([A], bucket_width=5)
        b = SparseCubicHistogram([A], bucket_width=10)
        with pytest.raises(SynopsisError, match="width mismatch"):
            a.union_all(b)

    def test_union_dim_mismatch(self):
        a = SparseCubicHistogram([A], bucket_width=5)
        b = SparseCubicHistogram([Dimension("z", 1, 100)], bucket_width=5)
        with pytest.raises(SynopsisError):
            a.union_all(b)


class TestEquijoin:
    def test_width1_join_is_exact(self):
        """At bucket width 1 the histogram join equals the true join size."""
        r = SparseCubicHistogram([A], bucket_width=1)
        s = SparseCubicHistogram(BC, bucket_width=1)
        for v in [(3,), (3,), (5,)]:
            r.insert(v)
        for v in [(3, 10), (5, 20), (5, 30)]:
            s.insert(v)
        j = r.equijoin(s, "a", "b")
        # exact: a=3 matches twice against one S row -> 2; a=5: 1 x 2 -> 2
        assert j.total() == pytest.approx(4.0)
        assert j.dim_names == ("a", "c")

    def test_uniformity_assumption_within_bucket(self):
        # One bucket of width 5, masses 10 and 15 -> 10*15/5 = 30 expected.
        r = SparseCubicHistogram([A], bucket_width=5)
        s = SparseCubicHistogram([Dimension("b", 1, 100)], bucket_width=5)
        for _ in range(10):
            r.insert((2,))
        for _ in range(15):
            s.insert((3,))
        j = r.equijoin(s, "a", "b")
        assert j.total() == pytest.approx(30.0)

    def test_join_keeps_join_dimension(self):
        r = SparseCubicHistogram([A], bucket_width=5)
        s = SparseCubicHistogram(BC, bucket_width=5)
        r.insert((10,))
        s.insert((10, 50))
        j = r.equijoin(s, "a", "b")
        assert "a" in j.dim_names and "c" in j.dim_names
        assert "b" not in j.dim_names

    def test_join_name_collision_renamed(self):
        r = SparseCubicHistogram([Dimension("x", 1, 100), Dimension("y", 1, 100)])
        s = SparseCubicHistogram([Dimension("k", 1, 100), Dimension("x", 1, 100)])
        j = r.equijoin(s, "x", "k")
        assert j.dim_names == ("x", "y", "x_r")

    def test_join_misaligned_origin_rejected(self):
        r = SparseCubicHistogram([Dimension("a", 0, 99)], bucket_width=5)
        s = SparseCubicHistogram([Dimension("b", 1, 100)], bucket_width=5)
        with pytest.raises(SynopsisError, match="misaligned"):
            r.equijoin(s, "a", "b")

    def test_join_width_mismatch_rejected(self):
        r = SparseCubicHistogram([A], bucket_width=5)
        s = SparseCubicHistogram([Dimension("b", 1, 100)], bucket_width=4)
        with pytest.raises(SynopsisError):
            r.equijoin(s, "a", "b")

    def test_disjoint_buckets_empty_join(self):
        r = SparseCubicHistogram([A], bucket_width=5)
        s = SparseCubicHistogram([Dimension("b", 1, 100)], bucket_width=5)
        r.insert((1,))
        s.insert((99,))
        assert r.equijoin(s, "a", "b").total() == 0


class TestSelectionAndGroups:
    def test_group_counts_sum_to_total(self):
        s = SparseCubicHistogram(BC, bucket_width=5)
        for v in range(1, 30):
            s.insert((v, v))
        gc = s.group_counts("b")
        assert sum(gc.values()) == pytest.approx(s.total())

    def test_group_counts_spread_uniformly(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        for _ in range(10):
            s.insert((3,))
        gc = s.group_counts("a")
        # bucket covers values 1..5, each gets 2.0
        assert gc[1] == pytest.approx(2.0)
        assert gc[5] == pytest.approx(2.0)
        assert 6 not in gc

    def test_select_range_full_bucket(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        s.insert((3,), weight=10)
        assert s.select_range("a", 1, 5).total() == pytest.approx(10.0)

    def test_select_range_partial_bucket_fraction(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        s.insert((3,), weight=10)
        # keep values 1..2 of the 1..5 bucket: 2/5 of the mass
        assert s.select_range("a", 1, 2).total() == pytest.approx(4.0)

    def test_select_range_disjoint(self):
        s = SparseCubicHistogram([A], bucket_width=5)
        s.insert((3,))
        assert s.select_range("a", 50, 60).total() == 0

    def test_edge_bucket_shorter_than_width(self):
        # Domain 1..7 with width 5: second bucket covers 6..7 (2 values).
        d = Dimension("a", 1, 7)
        s = SparseCubicHistogram([d], bucket_width=5)
        s.insert((7,), weight=4)
        gc = s.group_counts("a")
        assert gc[6] == pytest.approx(2.0)
        assert gc[7] == pytest.approx(2.0)

    def test_bucket_items_geometry(self):
        s = SparseCubicHistogram(BC, bucket_width=10)
        s.insert((15, 95))
        ((box, mass),) = s.bucket_items()
        assert box == ((11, 20), (91, 100))
        assert mass == pytest.approx(1.0)


def test_factory():
    f = SparseHistogramFactory(bucket_width=4)
    s = f.create([A])
    assert isinstance(s, SparseCubicHistogram) and s.bucket_width == 4
    assert "sparse_hist" in f.name
    with pytest.raises(SynopsisError):
        SparseHistogramFactory(bucket_width=0)
