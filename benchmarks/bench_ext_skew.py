"""Extension — skewed (Zipf) workloads: which synopsis copes best?

The paper's Gaussian workload is kind to uniformity-assuming histograms.
Real bursty sources (its own references: network traffic) are Zipf-like —
a few values dominate.  This bench reruns the overloaded Figure 8 setup
with Zipf-distributed join keys and compares the uniformity-based sparse
histogram against the heavy-hitter-exact end-biased histogram and the
MAXDIFF MHIST (whose splits chase frequency cliffs).

Expected: the skew-aware families (end-biased, MHIST) clearly beat the
fixed-grid histogram under skew, reversing the near-tie seen on Gaussian
data — evidence for the Future-Work claim that synopsis choice should track
the data distribution.
"""

from __future__ import annotations

import random

import pytest

from conftest import BENCH_PARAMS
from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.quality import ErrorSummary, run_rms
from repro.sources import RowGenerator, SteadyArrival, ZipfValues, generate_stream
from repro.synopses import EndBiasedFactory, MHistFactory, SparseHistogramFactory

RATE = 1800.0
N_RUNS = 5

FAMILIES = {
    "sparse_hist(w=5)": SparseHistogramFactory(bucket_width=5),
    "end_biased(k=12)": EndBiasedFactory(k=12),
    "mhist(grid=5)": MHistFactory(max_buckets=60, grid=5),
}


def zipf_streams(seed):
    rng = random.Random(seed)
    z = ZipfValues(s=1.2, lo=1, hi=100)
    gens = {
        "R": RowGenerator([z]),
        "S": RowGenerator([z, z]),
        "T": RowGenerator([z]),
    }
    per_stream = RATE / 3
    return {
        name: generate_stream(
            BENCH_PARAMS.tuples_per_stream, SteadyArrival(per_stream), gens[name],
            None, rng,
        )
        for name in ("R", "S", "T")
    }


def run_family(factory, seed):
    per_stream = RATE / 3
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=WindowSpec(width=BENCH_PARAMS.tuples_per_window / per_stream),
        queue_capacity=BENCH_PARAMS.queue_capacity,
        service_time=BENCH_PARAMS.service_time,
        synopsis_factory=factory,
        seed=seed,
    )
    pipeline = DataTriagePipeline(paper_catalog(), PAPER_QUERY, config)
    return run_rms(pipeline.run(zipf_streams(seed)))


@pytest.mark.parametrize("family", list(FAMILIES))
def test_ext_skew_family(benchmark, family):
    summary = benchmark.pedantic(
        lambda: ErrorSummary.from_values(
            [run_family(FAMILIES[family], seed) for seed in range(N_RUNS)]
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nZipf workload, {family}: RMS {summary.mean:.1f} ± {summary.std:.1f}")


def test_ext_skew_ranking(benchmark):
    results = benchmark.pedantic(
        lambda: {
            name: ErrorSummary.from_values(
                [run_family(f, seed) for seed in range(N_RUNS)]
            )
            for name, f in FAMILIES.items()
        },
        rounds=1,
        iterations=1,
    )
    print("\nZipf-skew synopsis ranking:")
    for name, s in sorted(results.items(), key=lambda kv: kv[1].mean):
        print(f"  {name:18s} RMS {s.mean:7.1f} ± {s.std:5.1f}")
    # Skew-aware families must beat the fixed grid under skew.
    grid = results["sparse_hist(w=5)"]
    assert results["end_biased(k=12)"].mean < grid.mean
    assert results["mhist(grid=5)"].mean < grid.mean
