"""TelegraphCQ-flavoured SQL: lexer, parser, AST, binder, renderer."""

from repro.sql.ast import (
    STAR,
    ColumnDef,
    CreateStreamStmt,
    CreateViewStmt,
    Query,
    SelectItem,
    SelectStmt,
    Star,
    Statement,
    SubquerySource,
    TableRef,
    UnionAllStmt,
    WindowItem,
)
from repro.sql.binder import (
    Binder,
    BindError,
    BoundQuery,
    BoundSource,
    BoundUnion,
    JoinPredicate,
)
from repro.sql.lexer import LexError, Token, tokenize
from repro.sql.parser import ParseError, Parser, parse_query, parse_script, parse_statement
from repro.sql.render import render_expression, render_query, render_statement

__all__ = [
    "STAR",
    "ColumnDef",
    "CreateStreamStmt",
    "CreateViewStmt",
    "Query",
    "SelectItem",
    "SelectStmt",
    "Star",
    "Statement",
    "SubquerySource",
    "TableRef",
    "UnionAllStmt",
    "WindowItem",
    "Binder",
    "BindError",
    "BoundQuery",
    "BoundSource",
    "BoundUnion",
    "JoinPredicate",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "Parser",
    "parse_query",
    "parse_script",
    "parse_statement",
    "render_expression",
    "render_query",
    "render_statement",
]
