"""NFA-style pattern-matching engine over stream tuples.

A :class:`PatternEngine` executes one bound ``PATTERN SEQ(...)`` statement
(SASE-style sequence with Kleene closure and a WITHIN time bound) against a
stream of :class:`~repro.engine.types.StreamTuple`\\ s.  Partial matches are
*runs*: each run remembers which steps it has bound, the environment row
(one slot per pattern column), and the events that contributed.  Runs expire
when the WITHIN bound can no longer be met, and the engine bounds its own
memory pSPICE-style by retiring the lowest-utility runs when ``max_runs`` is
exceeded (Slo et al., "pSPICE: Partial Match Shedding for Complex Event
Processing" — see PAPERS.md).

Semantics, chosen for determinism and small-code clarity:

* Events are consumed one at a time in arrival order; every run inspects the
  event in ascending run-id order, so the produced match set is a pure
  function of the input sequence — no RNG anywhere in the engine.
* A run advances *greedily toward progress*: if the event can move the run
  to its next step, it does; otherwise, if the run sits in a Kleene step,
  the event may be absorbed there.  Each run consumes an event at most once.
* Every event that satisfies step 0 also starts a fresh run
  (skip-till-next-match style), so overlapping matches are found.
* A run completes — and is removed — the moment its final step binds; the
  match row is ``(match_start, match_end, <step columns...>)`` with Kleene
  steps contributing a count plus the last absorbed event's columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.expressions import is_equijoin_conjunct
from repro.engine.types import StreamTuple
from repro.sql.binder import BoundPattern

#: Engine observer signature: ``observer(event, value)``.  Events:
#: ``"run_start"``, ``"run_extend"``, ``"match"``, ``"run_expire"``,
#: ``"run_shed"`` — each with value 1.0 per occurrence.
EngineObserver = Callable[[str, float], None]


@dataclass
class EngineStats:
    """Lifecycle counters for one engine instance."""

    events: int = 0
    runs_started: int = 0
    runs_extended: int = 0
    matches: int = 0
    runs_expired: int = 0
    runs_shed: int = 0


class _CompiledStep:
    """A bound step with its predicates compiled against the env schema."""

    __slots__ = (
        "variable",
        "stream",
        "kleene",
        "env_offset",
        "width",
        "predicates",
        "key_link",
    )

    def __init__(self, bound_step, pattern: "BoundPattern") -> None:
        self.variable = bound_step.variable
        self.stream = bound_step.stream_name
        self.kleene = bound_step.kleene
        self.env_offset = bound_step.env_offset
        self.width = len(bound_step.schema)
        self.predicates = [
            p.bind(pattern.env_schema) for p in bound_step.predicates
        ]
        self.key_link = _find_key_link(bound_step, pattern)


class _Run:
    """One partial match."""

    __slots__ = ("rid", "step", "counts", "env", "events", "start", "progress")

    def __init__(self, rid: int, n_steps: int, env_len: int, start: float) -> None:
        self.rid = rid
        self.step = 0  # index of the step currently being filled
        self.counts = [0] * n_steps
        self.env: list = [None] * env_len
        self.events: list[tuple[str, float]] = []
        self.start = start
        self.progress = 0  # number of steps with at least one event bound


class PatternProtection:
    """Which (stream, row) pairs currently extend an active partial match.

    Built from live runs: a stream is in ``any_streams`` when some run wants
    its next event from that stream without a usable key constraint; keyed
    entries map ``stream -> row position -> set of wanted key values``.
    """

    __slots__ = ("any_streams", "keyed")

    def __init__(self) -> None:
        self.any_streams: set[str] = set()
        self.keyed: dict[str, dict[int, set]] = {}

    def want_any(self, stream: str) -> None:
        self.any_streams.add(stream)

    def want_key(self, stream: str, position: int, value) -> None:
        self.keyed.setdefault(stream, {}).setdefault(position, set()).add(value)

    def protects(self, stream: str, row: tuple) -> bool:
        if stream in self.any_streams:
            return True
        by_pos = self.keyed.get(stream)
        if not by_pos:
            return False
        return any(row[pos] in values for pos, values in by_pos.items())


class PatternEngine:
    """Executes one bound pattern; deterministic by construction."""

    def __init__(
        self,
        pattern: BoundPattern,
        *,
        max_runs: int = 1024,
        observer: EngineObserver | None = None,
        utility=None,
        audit=None,
    ) -> None:
        if max_runs < 1:
            raise ValueError(f"max_runs must be >= 1, got {max_runs}")
        self.pattern = pattern
        self.max_runs = max_runs
        self.observer = observer
        self.utility = utility
        #: Optional :class:`repro.obs.audit.DropLedger`: records every
        #: partial-match evict (``cep_evict``) with the retired run's
        #: utility score.  Assignable post-construction.
        self.audit = audit
        self.stats = EngineStats()
        self._steps = [_CompiledStep(s, pattern) for s in pattern.steps]
        self._runs: list[_Run] = []
        self._next_rid = 0
        self._version = 0  # bumped on any run mutation; caches key off it
        self._protection: tuple[int, PatternProtection] | None = None

    # ------------------------------------------------------------------
    @property
    def active_runs(self) -> int:
        return len(self._runs)

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    def consume(self, stream: str, tup: StreamTuple) -> list[StreamTuple]:
        """Feed one event; returns the matches it completed (often empty)."""
        self.stats.events += 1
        if self.utility is not None:
            self.utility.observe(stream, tup.timestamp)
        ts = tup.timestamp
        self._expire(ts)
        matches: list[StreamTuple] = []
        completed: list[_Run] = []
        for run in self._runs:
            if self._extend(run, stream, tup):
                self.stats.runs_extended += 1
                self._notify("run_extend")
                if run.step >= len(self._steps):
                    completed.append(run)
        if completed:
            done = set(id(r) for r in completed)
            self._runs = [r for r in self._runs if id(r) not in done]
            for run in completed:
                matches.append(self._emit(run, ts))
        self._start_run(stream, tup, matches)
        if matches or completed:
            self._version += 1
        return matches

    def run_snapshot(self) -> list[tuple[int, int, float]]:
        """(rid, current step, start time) per active run — for debugging/UI."""
        return [(r.rid, r.step, r.start) for r in self._runs]

    # ------------------------------------------------------------------
    def protection_index(self) -> PatternProtection:
        """The live protection set, cached against the engine version."""
        cached = self._protection
        if cached is not None and cached[0] == self._version:
            return cached[1]
        out = PatternProtection()
        steps = self._steps
        n = len(steps)
        for run in self._runs:
            targets = []
            k = run.step
            if k < n:
                # Advancing out of an open Kleene group is also an extension.
                if steps[k].kleene and run.counts[k] >= 1 and k + 1 < n:
                    targets.append(k + 1)
                targets.append(k)
            for t in targets:
                step = steps[t]
                link = step.key_link
                if link is None:
                    out.want_any(step.stream)
                    continue
                cand_pos, env_pos = link
                value = run.env[env_pos]
                if value is None:
                    out.want_any(step.stream)
                else:
                    out.want_key(step.stream, cand_pos, value)
        self._protection = (self._version, out)
        return out

    # ------------------------------------------------------------------
    def _extend(self, run: _Run, stream: str, tup: StreamTuple) -> bool:
        steps = self._steps
        n = len(steps)
        k = run.step
        if k >= n:
            return False
        # Progress first: leave an open Kleene group when the next step fits.
        if steps[k].kleene and run.counts[k] >= 1 and k + 1 < n:
            if steps[k + 1].stream == stream and self._bind(run, k + 1, tup):
                self._after_bind(run, k + 1, tup)
                if not steps[k + 1].kleene:
                    run.step = k + 2
                elif k + 1 == n - 1:
                    run.step = n  # trailing Kleene: emit at first absorb
                else:
                    run.step = k + 1
                return True
        if steps[k].stream == stream and self._bind(run, k, tup):
            self._after_bind(run, k, tup)
            if not steps[k].kleene:
                run.step = k + 1
            elif k == n - 1:
                # Trailing Kleene step: emit at its first absorb (earliest
                # match); further absorbs would be ambiguous.
                run.step = n
            return True
        return False

    def _bind(self, run: _Run, step_idx: int, tup: StreamTuple) -> bool:
        """Write the candidate into the env, keep it iff predicates pass."""
        step = self._steps[step_idx]
        off, width = step.env_offset, step.width
        env = run.env
        saved = env[off : off + width]
        env[off : off + width] = tup.row
        for pred in step.predicates:
            if pred(env) is not True:
                env[off : off + width] = saved
                return False
        return True

    def _after_bind(self, run: _Run, step_idx: int, tup: StreamTuple) -> None:
        if run.counts[step_idx] == 0:
            run.progress += 1
        run.counts[step_idx] += 1
        run.events.append((self._steps[step_idx].stream, tup.timestamp))
        self._version += 1

    def _start_run(
        self, stream: str, tup: StreamTuple, matches: list[StreamTuple]
    ) -> None:
        step0 = self._steps[0]
        if step0.stream != stream:
            return
        run = _Run(
            self._next_rid, len(self._steps), len(self.pattern.env_schema), tup.timestamp
        )
        if not self._bind(run, 0, tup):
            return
        self._next_rid += 1
        self._after_bind(run, 0, tup)
        if not step0.kleene:
            run.step = 1
        if run.step >= len(self._steps):  # single-step pattern
            matches.append(self._emit(run, tup.timestamp))
        else:
            self._runs.append(run)
            self.stats.runs_started += 1
            self._notify("run_start")
            if len(self._runs) > self.max_runs:
                self._shed_run(tup.timestamp)
        self._version += 1

    def _emit(self, run: _Run, end_ts: float) -> StreamTuple:
        row: list = [run.start, end_ts]
        for k, step in enumerate(self._steps):
            if step.kleene:
                row.append(run.counts[k])
            row.extend(run.env[step.env_offset : step.env_offset + step.width])
        self.stats.matches += 1
        self._notify("match")
        if self.utility is not None:
            for stream, ts in run.events:
                self.utility.credit(stream, ts)
        return StreamTuple(end_ts, tuple(row))

    def _expire(self, now: float) -> None:
        within = self.pattern.within
        alive = [r for r in self._runs if now - r.start <= within]
        expired = len(self._runs) - len(alive)
        if expired:
            self._runs = alive
            self.stats.runs_expired += expired
            self._version += 1
            self._notify("run_expire", float(expired))

    def _shed_run(self, now: float) -> None:
        """pSPICE-style partial-match shedding: retire the worst run.

        Utility = completion progress plus remaining-lifetime fraction; ties
        break toward the oldest run id, so the choice is deterministic.
        """
        n = len(self._steps)
        within = self.pattern.within
        worst_idx = 0
        worst_key = None
        for i, run in enumerate(self._runs):
            utility = run.progress / n + max(0.0, 1.0 - (now - run.start) / within)
            key = (utility, run.rid)
            if worst_key is None or key < worst_key:
                worst_key = key
                worst_idx = i
        worst = self._runs[worst_idx]
        del self._runs[worst_idx]
        self.stats.runs_shed += 1
        self._version += 1
        self._notify("run_shed")
        if self.audit is not None:
            self.audit.record(
                "cep_evict",
                policy="pspice",
                stream=self._steps[0].stream,
                windows=(),
                timestamp=worst.start,
                depth=len(self._runs),
                score=worst_key[0] if worst_key is not None else None,
            )

    def _notify(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            self.observer(event, value)


def _find_key_link(bound_step, pattern: BoundPattern) -> tuple[int, int] | None:
    """``(candidate row position, env position of the partner value)``.

    The first predicate of the form ``me.col = other_var.col`` (either
    orientation) where ``other_var`` is a different step.  Lets the
    protection index enumerate exactly which key values on this stream would
    extend each active run; steps without one protect their whole stream.
    """
    me = bound_step.variable.lower()
    by_var = {s.variable.lower(): s for s in pattern.steps}
    for pred in bound_step.predicates:
        pair = is_equijoin_conjunct(pred)
        if pair is None:
            continue
        left, right = pair
        lmine = (left.table or "").lower() == me
        rmine = (right.table or "").lower() == me
        if lmine == rmine:
            continue
        cand, other = (left, right) if lmine else (right, left)
        partner = by_var.get((other.table or "").lower())
        if partner is None:
            continue
        cand_pos = bound_step.schema.position(cand.name)
        env_pos = partner.env_offset + partner.schema.position(other.name)
        return (cand_pos, env_pos)
    return None


def match_identity(pattern: BoundPattern, row: tuple) -> tuple:
    """A shedding-robust identity for one match row.

    ``(match_start, <non-Kleene step columns...>)``: the start timestamp
    pins the run's anchoring first event, and single-step columns pin the
    specific events bound.  Kleene groups (whose absorb count and last
    event legitimately vary once noise events are shed) and the end
    timestamp (a later closing event may complete the same instance) are
    excluded, so recall measures *detection* of a pattern instance, not
    byte equality of the emitted row.
    """
    out = [row[0]]
    pos = 2
    for step in pattern.steps:
        width = len(step.schema)
        if step.kleene:
            pos += 1 + width  # skip <var>_count and the last absorbed event
        else:
            out.extend(row[pos : pos + width])
            pos += width
    return tuple(out)


def canonical_match_bytes(matches: list[StreamTuple]) -> bytes:
    """A byte string identifying a match sequence exactly (for determinism tests)."""
    return "\n".join(
        f"{m.timestamp!r}\t{m.row!r}" for m in matches
    ).encode("utf-8")
