#!/usr/bin/env python
"""Detail-in-context visualization of a triaged window (paper Figure 3).

Reconstructs the screenshot of the TelegraphCQ web interface: a 2-D query
result rendered as points (exact tuples the engine computed) overlaid with
rectangles whose shading encodes the shadow plan's estimate of *lost*
result tuples.

The pipeline runs the non-aggregate query ``SELECT * FROM R, S, T ...`` in
*raw mode* (Future Work §8.1's "queries without aggregates"): each window
carries its exact result rows plus the lost-results synopsis, which is
exactly what the Figure 3 interface consumes.  The workload's burst draws
from shifted Gaussians, so the dropped region sits visibly apart from the
kept points.

Prints an ASCII rendering and writes ``triage_window.svg`` next to this
script.

Run:  python examples/visualize_triage.py
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import Column, ColumnType, Schema, WindowSpec
from repro.algebra import Multiset, project
from repro.experiments import paper_catalog
from repro.sources import MarkovBurstArrival, generate_stream, paper_row_generators
from repro.viz import build_scene, render_ascii, render_svg

QUERY = "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d;"


def main() -> None:
    rng = random.Random(20)
    gens = paper_row_generators()
    # Steady traffic centres at 40; the burst's distribution sits at 75.
    for g in gens.values():
        for i, col in enumerate(g.columns):
            g.columns[i] = type(col)(mean=40, std=9)
    burst_gens = {k: g.shifted(35.0) for k, g in gens.items()}

    arrival = MarkovBurstArrival(base_rate=8.0, burst_speedup=100.0)
    streams = {
        name: generate_stream(1500, arrival, gens[name], burst_gens[name], rng)
        for name in ("R", "S", "T")
    }
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=WindowSpec(width=300 / arrival.mean_rate),
        queue_capacity=10,
        service_time=1 / 250.0,
        seed=3,
        compute_ideal=False,
    )
    pipeline = DataTriagePipeline(paper_catalog(), QUERY, config)
    result = pipeline.run(streams)

    # Pick the window whose burst cost the most query results.
    window = max(
        result.windows,
        key=lambda w: w.lost_synopsis.total() if w.lost_synopsis else 0.0,
    )
    print(
        f"window {window.window_id}: kept {sum(window.kept.values())} tuples, "
        f"dropped {sum(window.dropped.values())}"
    )

    # Plot the result over (R.a, S.c): project the exact rows onto those two
    # columns; the lost synopsis already carries them as dimensions.
    points = project(window.raw_rows or Multiset(), [0, 2])
    schema = Schema(
        [Column("R.a", ColumnType.INTEGER), Column("S.c", ColumnType.INTEGER)]
    )
    scene = build_scene(
        points,
        schema,
        window.lost_synopsis,
        x_column="R.a",
        y_column="S.c",
        title=f"window {window.window_id}: exact points + estimated lost results",
    )
    print(render_ascii(scene, width=70, height=26))
    out_path = Path(__file__).resolve().parent / "triage_window.svg"
    out_path.write_text(render_svg(scene))
    print(f"SVG written to {out_path}")
    lost = window.lost_synopsis.total() if window.lost_synopsis else 0.0
    print(
        f"\nexact result tuples: {len(points)}; estimated lost results: "
        f"{lost:.0f} (the shaded region is the burst the engine never saw)"
    )


if __name__ == "__main__":
    main()
