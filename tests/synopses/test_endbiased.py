"""Tests for the end-biased histogram."""

import random
from collections import Counter

import pytest

from repro.synopses import Dimension, EndBiasedFactory, EndBiasedHistogram, SynopsisError
from repro.sources import ZipfValues

A = Dimension("a", 1, 100)
BC = [Dimension("b", 1, 100), Dimension("c", 1, 100)]


def zipf_rows(rng, n=500, s=1.3):
    g = ZipfValues(s=s, lo=1, hi=100)
    return [(g.draw(rng),) for _ in range(n)]


class TestBasics:
    def test_total_exact(self):
        h = EndBiasedHistogram([A], k=4)
        for v in (1, 1, 2, 3):
            h.insert((v,))
        assert h.total() == pytest.approx(4.0)

    def test_heavy_hitters_exact(self, rng):
        rows = zipf_rows(rng)
        h = EndBiasedHistogram([A], k=8)
        h.insert_many(rows)
        counts = Counter(v for (v,) in rows)
        gc = h.group_counts("a")
        for v, _ in counts.most_common(8):
            assert gc[v] == pytest.approx(counts[v])

    def test_tail_uniform(self):
        h = EndBiasedHistogram([A], k=1)
        # 10 copies of value 1 (the singleton), 9 scattered tail values.
        for _ in range(10):
            h.insert((1,))
        for v in range(2, 11):
            h.insert((v,))
        gc = h.group_counts("a")
        assert gc[1] == pytest.approx(10.0)
        # Tail mass 9 spread over the 99 non-singleton values.
        assert gc[50] == pytest.approx(9 / 99)

    def test_group_counts_sum_to_total(self, rng):
        h = EndBiasedHistogram([A], k=6)
        h.insert_many(zipf_rows(rng))
        assert sum(h.group_counts("a").values()) == pytest.approx(h.total())

    def test_post_build_insert(self):
        h = EndBiasedHistogram([A], k=2)
        h.insert((1,))
        h.group_counts("a")  # build
        h.insert((1,))
        h.insert((50,))  # not a singleton: lands in the tail
        assert h.total() == pytest.approx(3.0)
        assert h.group_counts("a")[1] == pytest.approx(2.0)

    def test_invalid_k(self):
        with pytest.raises(SynopsisError):
            EndBiasedHistogram([A], k=0)

    def test_storage_bounded(self, rng):
        h = EndBiasedHistogram(BC, k=5)
        h.insert_many([(rng.randint(1, 100), rng.randint(1, 100)) for _ in range(300)])
        h.group_counts("b")
        assert h.storage_size() <= (5 + 1) * 2


class TestOperations:
    def test_union_preserves_total_and_hitters(self, rng):
        a = EndBiasedHistogram([A], k=4)
        b = EndBiasedHistogram([A], k=4)
        for _ in range(50):
            a.insert((7,))
            b.insert((7,))
        for _ in range(10):
            b.insert((9,))
        u = a.union_all(b)
        assert u.total() == pytest.approx(110.0)
        assert u.group_counts("a")[7] == pytest.approx(100.0)

    def test_join_exact_on_skewed_data(self, rng):
        """On Zipf data, heavy hitters dominate the join; the estimate
        should land very close even with few singletons."""
        rows_a = zipf_rows(rng, n=400, s=1.5)
        rows_b = zipf_rows(rng, n=400, s=1.5)
        ca = Counter(v for (v,) in rows_a)
        cb = Counter(v for (v,) in rows_b)
        exact = sum(ca[v] * cb[v] for v in ca)
        a = EndBiasedHistogram([A], k=10)
        b = EndBiasedHistogram([Dimension("b", 1, 100)], k=10)
        a.insert_many(rows_a)
        b.insert_many(rows_b)
        est = a.equijoin(b, "a", "b").total()
        assert est == pytest.approx(exact, rel=0.1)

    def test_join_keeps_dim_names(self):
        a = EndBiasedHistogram([A], k=4)
        b = EndBiasedHistogram(BC, k=4)
        a.insert((1,))
        b.insert((1, 2))
        j = a.equijoin(b, "a", "b")
        assert j.dim_names == ("a", "c")

    def test_select_range_singletons_and_tail(self):
        h = EndBiasedHistogram([A], k=1)
        for _ in range(10):
            h.insert((5,))
        for v in range(50, 60):
            h.insert((v,))
        sel = h.select_range("a", 1, 10)
        # The singleton (5) is kept exactly; the tail barely overlaps.
        assert sel.group_counts("a")[5] == pytest.approx(10.0)
        assert sel.total() == pytest.approx(10 + 10 * (9 / 99), rel=0.01)

    def test_project_and_scale(self, rng):
        h = EndBiasedHistogram(BC, k=4)
        h.insert_many(
            [(rng.randint(1, 100), rng.randint(1, 100)) for _ in range(100)]
        )
        assert h.project(["c"]).total() == pytest.approx(h.total())
        assert h.scale(0.5).total() == pytest.approx(h.total() * 0.5)

    def test_factory(self):
        f = EndBiasedFactory(k=7)
        assert f.create([A]).k == 7
        assert "end_biased" in f.name
