"""Round-trip tests for the SQL renderer."""

import pytest

from repro.sql import parse_statement, render_statement


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM R;",
        "SELECT a, COUNT(*) AS n FROM R GROUP BY a;",
        "SELECT a FROM R WHERE (a = 1) OR (NOT (b < 2));",
        "SELECT * FROM R_kept R, S_kept S WHERE R.a = S.b;",
        "(SELECT * FROM A) UNION ALL (SELECT * FROM B);",
        "SELECT * FROM (SELECT a FROM R) sub;",
        "CREATE STREAM R (a integer, b float);",
        "CREATE VIEW v AS SELECT * FROM R;",
        "SELECT equijoin(x.syn, 'R.a', y.syn, 'S.b') AS result FROM x, y;",
        "SELECT * FROM R WINDOW R ['1 second'];",
        "SELECT COUNT(*) AS c FROM R;",
        "SELECT 'it''s', NULL, TRUE FROM R;",
    ],
)
def test_parse_render_parse_fixpoint(sql):
    """render(parse(x)) must itself parse to something that renders identically."""
    first = render_statement(parse_statement(sql))
    second = render_statement(parse_statement(first))
    assert first == second


def test_rendered_text_is_readable():
    out = render_statement(parse_statement("SELECT a FROM R WHERE a = 1 AND b = 2;"))
    assert "SELECT a" in out
    assert "WHERE" in out and "AND" in out


def test_distinct_rendered():
    out = render_statement(parse_statement("SELECT DISTINCT a FROM R;"))
    assert "DISTINCT" in out
