"""Tests for the physical query operators."""

import pytest

from repro.algebra import Multiset
from repro.engine import (
    AggregateSpec,
    BinaryOp,
    ColumnRef,
    ColumnType,
    Filter,
    HashAggregate,
    HashJoin,
    Literal,
    NestedLoopJoin,
    Project,
    Scan,
    Schema,
    UnionAll,
)

AB = Schema.of(("a", ColumnType.INTEGER), ("b", ColumnType.INTEGER))
C = Schema.of(("c", ColumnType.INTEGER))


def bag(op):
    return op.to_multiset()


class TestScanFilterProject:
    def test_scan_yields_rows_with_multiplicity(self):
        rows = Multiset([(1, 2), (1, 2)])
        assert bag(Scan(rows, AB)) == rows

    def test_scan_accepts_iterable(self):
        assert len(bag(Scan([(1, 2)], AB))) == 1

    def test_filter_true_only(self):
        scan = Scan([(1, 2), (3, 4)], AB)
        out = bag(Filter(scan, BinaryOp(">", ColumnRef("a"), Literal(2))))
        assert out == Multiset([(3, 4)])

    def test_filter_null_predicate_excludes(self):
        scan = Scan([(None, 2)], AB)
        out = bag(Filter(scan, BinaryOp(">", ColumnRef("a"), Literal(0))))
        assert len(out) == 0

    def test_project_expressions(self):
        scan = Scan([(1, 2)], AB)
        op = Project(
            scan,
            [("sum", BinaryOp("+", ColumnRef("a"), ColumnRef("b"))), ("a", ColumnRef("a"))],
        )
        assert bag(op) == Multiset([(3, 1)])
        assert op.schema.names == ("sum", "a")

    def test_project_keeps_duplicates(self):
        scan = Scan([(1, 2), (1, 3)], AB)
        out = bag(Project(scan, [("a", ColumnRef("a"))]))
        assert out.multiplicity((1,)) == 2


class TestJoins:
    def test_hash_join_basic(self):
        left = Scan([(1, 10), (2, 20)], AB)
        right = Scan([(1,), (1,)], C)
        out = bag(HashJoin(left, right, ["a"], ["c"]))
        assert out.multiplicity((1, 10, 1)) == 2
        assert len(out) == 2

    def test_hash_join_null_keys_never_match(self):
        left = Scan([(None, 10)], AB)
        right = Scan([(None,)], C)
        assert len(bag(HashJoin(left, right, ["a"], ["c"]))) == 0

    def test_hash_join_label_qualification(self):
        left = Scan([(1, 2)], AB)
        right = Scan([(1,)], C)
        op = HashJoin(left, right, ["a"], ["c"], left_label="L", right_label="R")
        assert op.schema.names == ("L.a", "L.b", "R.c")

    def test_hash_join_key_mismatch(self):
        with pytest.raises(ValueError):
            HashJoin(Scan([], AB), Scan([], C), ["a", "b"], ["c"])

    def test_nested_loop_theta(self):
        left = Scan([(1, 0), (5, 0)], AB)
        right = Scan([(3,)], C)
        pred = BinaryOp("<", ColumnRef("a"), ColumnRef("c"))
        out = bag(NestedLoopJoin(left, right, pred))
        assert out == Multiset([(1, 0, 3)])

    def test_nested_loop_cross(self):
        out = bag(NestedLoopJoin(Scan([(1, 2)], AB), Scan([(9,), (8,)], C)))
        assert len(out) == 2


class TestAggregates:
    def make(self, rows, aggs, group=("a",)):
        scan = Scan(rows, AB)
        group_by = [(g, ColumnRef(g)) for g in group]
        return bag(HashAggregate(scan, group_by, aggs))

    def test_count_star(self):
        out = self.make(
            [(1, 10), (1, 20), (2, 30)],
            [AggregateSpec("count", None, "n")],
        )
        assert out == Multiset([(1, 2), (2, 1)])

    def test_count_column_ignores_null(self):
        out = self.make(
            [(1, None), (1, 5)],
            [AggregateSpec("count", ColumnRef("b"), "n")],
        )
        assert out == Multiset([(1, 1)])

    def test_sum_avg_min_max(self):
        out = self.make(
            [(1, 10), (1, 20)],
            [
                AggregateSpec("sum", ColumnRef("b"), "s"),
                AggregateSpec("avg", ColumnRef("b"), "m"),
                AggregateSpec("min", ColumnRef("b"), "lo"),
                AggregateSpec("max", ColumnRef("b"), "hi"),
            ],
        )
        assert out == Multiset([(1, 30.0, 15.0, 10, 20)])

    def test_all_null_group_aggregates_to_none(self):
        out = self.make(
            [(1, None)],
            [AggregateSpec("sum", ColumnRef("b"), "s")],
        )
        assert out == Multiset([(1, None)])

    def test_empty_input_no_groups(self):
        out = self.make([], [AggregateSpec("count", None, "n")])
        assert len(out) == 0

    def test_scalar_aggregate_no_group_by(self):
        scan = Scan([(1, 2), (3, 4)], AB)
        out = bag(HashAggregate(scan, [], [AggregateSpec("count", None, "n")]))
        assert out == Multiset([(2,)])

    def test_invalid_aggregate_function(self):
        with pytest.raises(ValueError, match="unsupported aggregate"):
            AggregateSpec("median", ColumnRef("b"), "x")

    def test_star_only_for_count(self):
        with pytest.raises(ValueError):
            AggregateSpec("sum", None, "x")

    def test_output_schema(self):
        scan = Scan([], AB)
        op = HashAggregate(
            scan, [("a", ColumnRef("a"))], [AggregateSpec("count", None, "n")]
        )
        assert op.schema.names == ("a", "n")
        assert op.schema.column("n").type is ColumnType.INTEGER


class TestUnionAll:
    def test_concatenates(self):
        out = bag(UnionAll([Scan([(1,)], C), Scan([(1,), (2,)], C)]))
        assert out.multiplicity((1,)) == 2
        assert len(out) == 3

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            UnionAll([Scan([], C), Scan([], AB)])

    def test_empty_children_list(self):
        with pytest.raises(ValueError):
            UnionAll([])
