"""Differential relational algebra over multisets (paper Section 3).

This subpackage is the formal foundation of the Data Triage query rewrite:
bag-semantics relations (:class:`Multiset`), perturbed-relation triples
(:class:`DifferentialRelation`), and the differential operators σ̂ π̂ ×̂ ⋈̂ −̂ ∪̂
that propagate drop/add deltas through a query.
"""

from repro.algebra.multiset import Multiset, Row
from repro.algebra.operators import (
    cross,
    difference,
    differential_cross,
    differential_difference,
    differential_difference_paper,
    differential_equijoin,
    differential_project,
    differential_select,
    differential_theta_join,
    differential_union_all,
    equijoin,
    project,
    select,
    theta_join,
    union_all,
)
from repro.algebra.triple import DifferentialRelation

__all__ = [
    "Multiset",
    "Row",
    "DifferentialRelation",
    "select",
    "project",
    "cross",
    "theta_join",
    "equijoin",
    "union_all",
    "difference",
    "differential_select",
    "differential_project",
    "differential_cross",
    "differential_equijoin",
    "differential_theta_join",
    "differential_union_all",
    "differential_difference",
    "differential_difference_paper",
]
