"""EXPLAIN for the Data Triage rewrite.

Shows what the rewrite will do with a query before any data flows: the
chosen join chain (equation 15's order), the dropped-results expansion
terms (equation 14), the synopsis dimensions each stream needs, and the
shadow plan's join keys and compiled selections.
"""

from __future__ import annotations

import io

from repro.rewrite.plan import SPJPlan
from repro.rewrite.shadow import ShadowPlan
from repro.rewrite.spj import dropped_terms


def explain_rewrite(plan: SPJPlan, shadow: ShadowPlan | None = None) -> str:
    """A textual account of the rewrite for one SPJ query."""
    out = io.StringIO()
    out.write("Data Triage rewrite\n")
    out.write("===================\n")
    out.write("join chain (eq. 15 order):\n")
    for i, link in enumerate(plan.chain):
        joins = (
            " AND ".join(str(p) for p in link.join_with_prefix)
            if link.join_with_prefix
            else "(chain head)"
        )
        selections = plan.local_predicates.get(link.source_name, [])
        sel_text = (
            f"  selections: {' AND '.join(str(s) for s in selections)}"
            if selections
            else ""
        )
        out.write(
            f"  R{i + 1}: {link.source_name} (stream {link.stream_name}) "
            f"joined via {joins}{sel_text}\n"
        )
    out.write("\ndropped-results expansion (eq. 14, distributed form):\n")
    for i, term in enumerate(dropped_terms(len(plan.chain))):
        parts = [
            f"{link.source_name}_{channel.value}"
            for link, channel in zip(plan.chain, term.channels)
        ]
        out.write(f"  term {i + 1}: " + " ⋈ ".join(parts) + "\n")

    if shadow is None:
        try:
            shadow = ShadowPlan(plan)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            out.write(f"\nshadow plan: NOT COMPILABLE ({exc})\n")
            return out.getvalue()
    out.write("\nshadow plan (synopsis evaluation):\n")
    for link in shadow.links:
        if not link.left_keys:
            out.write(f"  {link.source_name}: chain head\n")
        else:
            keys = " AND ".join(
                f"{l} = {r}" for l, r in link.key_pairs
            )
            out.write(f"  {link.source_name}: equijoin on {keys}\n")
        for sel in link.selections:
            out.write(
                f"      select {sel.dim} in [{sel.lo:g}, {sel.hi:g}]\n"
            )
    return out.getvalue()
