"""Tests for the network link model."""

import pytest

from repro.engine import StreamTuple
from repro.sources.network import NetworkLink


def stream(timestamps):
    return [StreamTuple(float(t), (i,)) for i, t in enumerate(timestamps)]


class TestNetworkLink:
    def test_latency_only(self):
        link = NetworkLink(latency=0.5)
        out = link.transmit(stream([0.0, 1.0]))
        assert [t.timestamp for t in out] == [0.5, 1.5]
        assert [t.row for t in out] == [(0,), (1,)]

    def test_bandwidth_spaces_arrivals(self):
        # 10 tuples offered simultaneously over a 10 tuple/sec link.
        link = NetworkLink(bandwidth=10.0)
        out = link.transmit(stream([0.0] * 10))
        gaps = [b.timestamp - a.timestamp for a, b in zip(out, out[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)
        assert out[-1].timestamp == pytest.approx(1.0)

    def test_no_queueing_below_bandwidth(self):
        link = NetworkLink(bandwidth=100.0, latency=0.2)
        out = link.transmit(stream([0.0, 1.0, 2.0]))
        assert [t.timestamp for t in out] == pytest.approx([0.21, 1.21, 2.21])

    def test_fifo_order_preserved_under_jitter(self):
        link = NetworkLink(latency=0.1, jitter=0.5, seed=3)
        out = link.transmit(stream([i * 0.01 for i in range(100)]))
        ts = [t.timestamp for t in out]
        assert ts == sorted(ts)
        assert [t.row for t in out] == [(i,) for i in range(100)]

    def test_queueing_delay_measurement(self):
        link = NetworkLink(bandwidth=1.0)
        tuples = stream([0.0, 0.0, 0.0])
        # Third tuple waits 2 transmission slots.
        assert link.queueing_delay(tuples) == pytest.approx(2.0)
        assert link.queueing_delay(stream([0.0, 5.0])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(latency=-1)
        with pytest.raises(ValueError):
            NetworkLink(jitter=-0.1)
        with pytest.raises(ValueError):
            NetworkLink(bandwidth=0)

    def test_unbounded_bandwidth(self):
        link = NetworkLink()
        assert link.transmission_time == 0.0
        out = link.transmit(stream([1.0]))
        assert out[0].timestamp == 1.0
