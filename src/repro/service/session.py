"""Session bookkeeping: admission control, rate caps, slow-consumer eviction.

The triage queues shed *data* load; this module sheds *client* load, so a
misbehaving peer cannot take the service down a different way:

* **Admission control** — at most ``max_sessions`` concurrent connections;
  a connection beyond that is turned away with a structured ERROR before it
  can allocate anything.
* **Per-session rate caps** — each session's PUBLISH volume passes through
  a token bucket (``rate_limit`` rows/second, ``burst`` tokens deep).  An
  over-rate batch is refused with a retryable ERROR; the tuples never reach
  a triage queue, which keeps one hot client from starving the others'
  share of queue capacity.
* **Slow-consumer eviction** — every session has a bounded outbound frame
  queue drained by its own sender task.  A subscriber that stops reading
  fills the queue and is *evicted* (connection closed) rather than buffered
  without bound — the subscriber-side mirror of the triage queue's
  drop-not-buffer discipline.

The registry is asyncio-native: all mutation happens on the event loop, so
no locking is needed here (the triage queues the server shares across
producers have their own lock; see :mod:`repro.core.triage_queue`).
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

from repro.service.protocol import encode_frame

__all__ = ["AdmissionError", "TokenBucket", "Session", "SessionRegistry"]


class AdmissionError(Exception):
    """A client request was refused by an admission policy."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, up to ``burst`` stored.

    ``None`` rate disables limiting.  Time is injected (``now``) so the
    server's virtual clock drives it and tests stay deterministic.
    """

    rate: float | None
    burst: float
    _tokens: float = field(init=False)
    _last: float | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive or None, got {self.rate}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._tokens = self.burst

    def try_consume(self, n: float, now: float) -> bool:
        """Take ``n`` tokens if available; refill according to ``now``."""
        if self.rate is None:
            return True
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if n <= self._tokens:
            self._tokens -= n
            return True
        return False


class Session:
    """One connected client: identity, permissions, and its outbound queue."""

    def __init__(
        self,
        session_id: int,
        writer: asyncio.StreamWriter,
        *,
        rate_limit: float | None,
        burst: float,
        send_queue_frames: int,
        client_name: str = "",
    ) -> None:
        self.id = session_id
        self.writer = writer
        self.client_name = client_name
        self.declared: set[str] = set()
        self.subscribed = False
        self.telemetry = False
        self.bucket = TokenBucket(rate_limit, burst)
        self.published_rows = 0
        self.results_sent = 0
        self.telemetry_sent = 0
        self.closing = False
        #: Outbound frames: dicts (encoded at send time) or pre-encoded
        #: bytes (broadcast fan-out encodes once per frame, not per peer);
        #: None is the close sentinel.
        self._out: asyncio.Queue[dict | bytes | None] = asyncio.Queue(
            maxsize=send_queue_frames
        )
        self._sender: asyncio.Task | None = None

    # ------------------------------------------------------------------
    @property
    def peername(self) -> str:
        try:
            peer = self.writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport already gone
            peer = None
        return str(peer) if peer else "?"

    def start_sender(self) -> None:
        self._sender = asyncio.get_running_loop().create_task(self._send_loop())

    async def _send_loop(self) -> None:
        """Drain the outbound queue onto the socket, one frame at a time."""
        try:
            while True:
                frame = await self._out.get()
                if frame is None:  # close sentinel
                    break
                self.writer.write(
                    frame if isinstance(frame, bytes) else encode_frame(frame)
                )
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.writer.close()

    def try_enqueue(self, frame: dict | bytes) -> bool:
        """Queue an outbound frame; False means the consumer is too slow."""
        if self.closing:
            return True  # silently dropped; the connection is going away
        try:
            self._out.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            return False

    async def send_now(self, frame: dict) -> None:
        """Send bypassing the queue — for request/reply frames only, called
        from the connection's reader task (so ordering with queued frames is
        still FIFO per peer: replies interleave but never reorder)."""
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def close(self, *, flush: bool = True) -> None:
        """Stop the sender and close the transport.

        ``flush=True`` lets already-queued frames go out first (graceful
        shutdown); ``flush=False`` cuts the peer off (eviction).
        """
        self.closing = True
        if self._sender is None:
            self.writer.close()
            return
        if flush:
            try:
                self._out.put_nowait(None)
            except asyncio.QueueFull:
                self._sender.cancel()
        else:
            self._sender.cancel()
        try:
            await self._sender
        except asyncio.CancelledError:
            pass


class SessionRegistry:
    """All live sessions, plus the admission and eviction policies."""

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        rate_limit: float | None = None,
        burst: float | None = None,
        send_queue_frames: int = 64,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.rate_limit = rate_limit
        self.burst = burst if burst is not None else (rate_limit or 1.0)
        self.send_queue_frames = send_queue_frames
        self.sessions: dict[int, Session] = {}
        self._ids = itertools.count(1)
        self.evictions = 0

    # ------------------------------------------------------------------
    def admit(self, writer: asyncio.StreamWriter, client_name: str = "") -> Session:
        """Register a new connection, or refuse it."""
        if len(self.sessions) >= self.max_sessions:
            raise AdmissionError(
                "too-many-sessions",
                f"server is at its session limit ({self.max_sessions})",
            )
        session = Session(
            next(self._ids),
            writer,
            rate_limit=self.rate_limit,
            burst=self.burst,
            send_queue_frames=self.send_queue_frames,
            client_name=client_name,
        )
        self.sessions[session.id] = session
        session.start_sender()
        return session

    def remove(self, session: Session) -> None:
        self.sessions.pop(session.id, None)

    def subscribers(self) -> list[Session]:
        return [s for s in self.sessions.values() if s.subscribed]

    def telemetry_subscribers(self) -> list[Session]:
        return [s for s in self.sessions.values() if s.telemetry]

    # ------------------------------------------------------------------
    async def broadcast(self, frame: dict, *, group: str = "results") -> list[Session]:
        """Fan a frame out to every subscriber; returns evicted sessions.

        ``group`` selects the audience: ``"results"`` (RESULT fan-out, the
        default) or ``"telemetry"`` (TELEMETRY push to sessions that opted
        in via SUBSCRIBE).  Either way a subscriber whose outbound queue is
        full is a slow consumer: it is evicted immediately (closed without
        flushing) so the window ticker never blocks on one peer's socket.
        """
        if group not in ("results", "telemetry"):
            raise ValueError(f"unknown broadcast group {group!r}")
        # Encode once: every subscriber's sender writes the same buffer
        # instead of re-serializing the frame per peer.
        payload = encode_frame(frame)
        evicted: list[Session] = []
        for session in list(self.sessions.values()):
            if group == "telemetry":
                if not session.telemetry:
                    continue
            elif not session.subscribed:
                continue
            if session.try_enqueue(payload):
                if group == "telemetry":
                    session.telemetry_sent += 1
                else:
                    session.results_sent += 1
            else:
                evicted.append(session)
        for session in evicted:
            self.evictions += 1
            self.remove(session)
            await session.close(flush=False)
        return evicted

    async def close_all(self, farewell: dict | None = None) -> None:
        """Graceful shutdown: optionally queue a farewell, then flush+close."""
        sessions = list(self.sessions.values())
        self.sessions.clear()
        payload = encode_frame(farewell) if farewell is not None else None
        for session in sessions:
            if payload is not None:
                session.try_enqueue(payload)
            await session.close(flush=True)
