"""Concurrency regression tests: shared triage queues stay consistent.

Two layers: raw ``TriageQueue(thread_safe=True)`` hammered from worker
threads, and several ``TriageClient`` publishers pushing through the real
TCP server at once.
"""

import asyncio
import threading

from repro.core.pipeline import DataTriagePipeline
from repro.core.strategies import PipelineConfig
from repro.engine.types import StreamTuple
from repro.engine.window import WindowSpec
from repro.experiments import paper_catalog
from repro.service import ServiceConfig, TriageClient, TriageServer

QUERY = "SELECT a, COUNT(*) AS n FROM R GROUP BY a;"


class TestThreadedQueue:
    def test_concurrent_offers_never_lose_accounting(self):
        config = PipelineConfig(
            window=WindowSpec(width=1.0), queue_capacity=50, compute_ideal=False
        )
        pipeline = DataTriagePipeline(paper_catalog(), QUERY, config)
        queue = pipeline.build_queue("R", thread_safe=True)

        n_threads, per_thread = 4, 2000
        barrier = threading.Barrier(n_threads)

        def publisher(worker: int) -> None:
            barrier.wait()  # maximize interleaving
            for i in range(per_thread):
                ts = (i % 1000) / 1000  # all in window 0
                queue.offer(StreamTuple(ts, (1 + (worker + i) % 100,)))

        threads = [
            threading.Thread(target=publisher, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        offered = n_threads * per_thread
        assert queue.stats.offered == offered
        assert len(queue) <= 50
        assert queue.stats.high_watermark <= 50
        # Every offered tuple is either still buffered or was shed — none
        # vanished and none was double-counted.
        assert queue.stats.dropped + len(queue) == offered
        released = queue.release_window(0)
        assert released.dropped_count == queue.stats.dropped
        assert released.synopsis is not None

    def test_concurrent_offer_and_poll(self):
        config = PipelineConfig(
            window=WindowSpec(width=1.0), queue_capacity=20, compute_ideal=False
        )
        pipeline = DataTriagePipeline(paper_catalog(), QUERY, config)
        queue = pipeline.build_queue("R", thread_safe=True)
        stop = threading.Event()
        polled = []

        def consumer() -> None:
            while not stop.is_set() or len(queue):
                tup = queue.poll()
                if tup is not None:
                    polled.append(tup)

        consumer_thread = threading.Thread(target=consumer)
        consumer_thread.start()
        try:
            # Unique timestamps (all within window 0) identify each tuple;
            # values stay inside the synopsis domain [1, 100].
            for i in range(5000):
                queue.offer(StreamTuple(0.5 + i * 1e-9, (1 + i % 100,)))
        finally:
            stop.set()
        consumer_thread.join()

        assert queue.stats.offered == 5000
        assert len(polled) == queue.stats.polled
        assert queue.stats.polled + queue.stats.dropped == 5000
        assert len({t.timestamp for t in polled}) == len(polled)  # no dups


class TestConcurrentClients:
    def test_parallel_publishers_through_the_server(self):
        async def scenario():
            clock = {"t": 0.0}
            config = PipelineConfig(
                window=WindowSpec(width=1.0),
                queue_capacity=30,
                service_time=0.01,
                compute_ideal=False,
            )
            service = ServiceConfig(tick_interval=None, clock=lambda: clock["t"])
            server = TriageServer(paper_catalog(), QUERY, config, service)
            await server.start()
            try:
                watcher = await TriageClient.connect(
                    "127.0.0.1", server.port, client_name="watcher"
                )
                await watcher.subscribe()

                async def publish_many(worker: int) -> int:
                    client = await TriageClient.connect(
                        "127.0.0.1", server.port, client_name=f"w{worker}"
                    )
                    try:
                        await client.declare("R")
                        accepted = 0
                        for batch in range(5):
                            ack = await client.publish(
                                "R",
                                [[1 + (i % 4)] for i in range(40)],
                                timestamps=[
                                    (batch * 40 + i) / 1000 for i in range(40)
                                ],
                            )
                            accepted += ack["accepted"]
                            assert ack["queue_depth"] <= 30
                        return accepted
                    finally:
                        await client.close()

                totals = await asyncio.gather(*(publish_many(w) for w in range(4)))
                assert totals == [200, 200, 200, 200]

                offered = server.metrics.get("triage_offered_total")
                assert offered.value(stream="R") == 800
                assert server.queues["R"].stats.high_watermark <= 30

                clock["t"] = 3.0
                await server.tick()
                result = await watcher.next_result(timeout=2)
                assert result["arrived"]["R"] == 800
                assert result["kept"]["R"] + result["dropped"]["R"] == 800
                assert result["dropped"]["R"] > 0
                await watcher.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())
