"""SELECT DISTINCT under Data Triage (paper Future Work §8.1).

*"Finally, we would like to extend our query rewriting technique to handle
SELECT DISTINCT queries.  We believe that we can perform these queries by
deferring projection to the top of the shadow query plan."*

The subtlety: the differential projection operator is only correct over
multisets (§3.2.2), so DISTINCT cannot be pushed into the kept/dropped
arms — a result tuple present in both `Q_kept` and `Q_dropped` would be
double-reported.  Deferring duplicate elimination **above** the union fixes
this exactly on the relational path:

    Q_distinct  =  δ( Q_kept  ⊎  Q_dropped )

:func:`distinct_view` emits that SQL; :func:`evaluate_distinct` computes it
over multisets and is provably equal to δ(Q) (tested).

On the synopsis path an exact δ is impossible (synopses carry mass, not
identity), so :func:`estimate_distinct_count` provides the natural
estimator: within each histogram bucket, mass behaves as m uniform draws
over the bucket's n value-cells, so the expected number of distinct tuples
is ``n · (1 - (1 - 1/n)^m)`` — the classic occupancy formula.
"""

from __future__ import annotations

from repro.algebra.multiset import Multiset
from repro.rewrite.differential import evaluate_exact, evaluate_expansion
from repro.rewrite.plan import SPJPlan
from repro.rewrite.sqlgen import dropped_view, kept_view
from repro.sql.ast import (
    STAR,
    CreateViewStmt,
    SelectItem,
    SelectStmt,
    SubquerySource,
    UnionAllStmt,
)
from repro.synopses.base import Synopsis


def distinct_view(plan: SPJPlan, view_name: str = "Q_distinct") -> CreateViewStmt:
    """``SELECT DISTINCT * FROM (Q_kept UNION ALL Q_dropped)``.

    Duplicate elimination deferred to the very top, per the paper's
    proposal; the inner arms are the standard Figure 4 views inlined.
    """
    kept = kept_view(plan).query
    dropped = dropped_view(plan).query
    if isinstance(kept, SelectStmt) and (kept.group_by or kept.distinct):
        raise ValueError("distinct_view applies to non-aggregate SPJ queries")
    union = UnionAllStmt(
        [kept] + (dropped.queries if isinstance(dropped, UnionAllStmt) else [dropped])
    )
    outer = SelectStmt(
        items=[SelectItem(STAR)],
        from_sources=[SubquerySource(union, alias="all_results")],
        distinct=True,
    )
    return CreateViewStmt(view_name, outer)


def evaluate_distinct(
    plan: SPJPlan,
    kept: dict[str, Multiset],
    dropped: dict[str, Multiset],
) -> Multiset:
    """δ(Q_kept ⊎ Q_dropped): the deferred-distinct answer over multisets.

    Equal to δ(Q(full relations)) — the identity the deferral buys.
    """
    combined = evaluate_exact(plan, kept) + evaluate_expansion(plan, kept, dropped)
    return Multiset.from_counts({row: 1 for row in combined.support()})


def estimate_distinct_count(synopsis: Synopsis | None) -> float:
    """Expected number of distinct tuples summarized by ``synopsis``.

    Per-bucket occupancy estimate: a bucket spanning ``n`` value cells with
    mass ``m`` is expected to cover ``n (1 - (1 - 1/n)^m)`` distinct tuples.
    Requires bucket geometry (histogram families); for one-cell buckets the
    formula degenerates to "at least one tuple", as it should.
    """
    if synopsis is None:
        return 0.0
    items = getattr(synopsis, "bucket_items", None)
    if items is None:
        raise TypeError(
            f"{type(synopsis).__name__} exposes no bucket geometry; distinct "
            "estimation needs a histogram synopsis"
        )
    total = 0.0
    for box, mass in items():
        if mass <= 0:
            continue
        n = 1
        for lo, hi in box:
            n *= hi - lo + 1
        total += n * (1.0 - (1.0 - 1.0 / n) ** mass)
    return total
