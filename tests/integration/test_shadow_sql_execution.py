"""Execute the generated Q_dropped_syn SQL inside the query engine.

The paper's central implementation claim (Section 5): because synopses are
a user-defined type and their relational operations are user-defined
functions, the shadow query is *ordinary SQL* that the unmodified engine
executes.  This test does exactly that: register the UDFs, feed one
synopsis tuple per ``X_kept_syn``/``X_dropped_syn`` stream (the paper:
"each synopsis stream generates a single tuple per window, [so] the
cross-product in this query only produces one tuple per window"), run the
generated view through the executor, and check the resulting synopsis value
matches both the programmatic shadow plan and the true count of lost
results.
"""

import pytest

from repro.algebra import Multiset
from repro.engine import QueryExecutor
from repro.rewrite import (
    ShadowPlan,
    SPJPlan,
    evaluate_expansion,
    shadow_view,
)
from repro.sql import Binder, parse_statement
from repro.synopses import (
    Dimension,
    SparseCubicHistogram,
    register_synopsis_udfs,
)

QUERY = "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d;"

DIMS = {
    "R": [Dimension("R.a", 1, 10)],
    "S": [Dimension("S.b", 1, 10), Dimension("S.c", 1, 10)],
    "T": [Dimension("T.d", 1, 10)],
}


@pytest.fixture
def setup(paper_catalog, rng):
    register_synopsis_udfs(paper_catalog.functions)
    plan = SPJPlan.from_bound(
        Binder(paper_catalog).bind(parse_statement(QUERY))
    )
    # Register the synopsis streams the view reads.
    for name in ("R", "S", "T"):
        paper_catalog.create_triage_streams(name)

    def g(arity):
        return tuple(rng.randint(1, 10) for _ in range(arity))

    full = {
        "R": Multiset(g(1) for _ in range(50)),
        "S": Multiset(g(2) for _ in range(50)),
        "T": Multiset(g(1) for _ in range(50)),
    }
    kept, dropped = {}, {}
    for name, rel in full.items():
        k, d = Multiset(), Multiset()
        for row in rel:
            (k if rng.random() < 0.6 else d).add(row)
        kept[name], dropped[name] = k, d
    return paper_catalog, plan, full, kept, dropped


def synopsize(bags):
    out = {}
    for name, bag in bags.items():
        syn = SparseCubicHistogram(DIMS[name], bucket_width=1)
        syn.insert_many(bag)
        out[name] = syn
    return out


class TestShadowSqlExecution:
    def test_view_executes_and_matches_truth(self, setup):
        catalog, plan, full, kept, dropped = setup
        kept_syn, dropped_syn = synopsize(kept), synopsize(dropped)

        view = shadow_view(plan)
        bound = Binder(catalog).bind(view.query)

        # One synopsis tuple per stream per window (paper Section 5.1).
        inputs = {}
        for name in ("R", "S", "T"):
            inputs[f"{name.lower()}_kept_syn"] = Multiset(
                [(kept_syn[name], 0.0, 1.0)]
            )
            inputs[f"{name.lower()}_dropped_syn"] = Multiset(
                [(dropped_syn[name], 0.0, 1.0)]
            )

        result = QueryExecutor(catalog).execute(bound, inputs)
        # "the cross-product in this query only produces one tuple per window"
        assert len(result.rows) == 1
        (row,) = iter(result.rows)
        result_synopsis = row[0]

        true_lost = evaluate_expansion(plan, kept, dropped)
        assert result_synopsis.total() == pytest.approx(
            len(true_lost), rel=1e-9
        )

        # And it agrees with the programmatic shadow plan exactly.
        programmatic = ShadowPlan(plan).estimate_dropped(kept_syn, dropped_syn)
        sql_counts = result_synopsis.group_counts("R.a")
        prog_counts = programmatic.group_counts("R.a")
        for v in range(1, 11):
            assert sql_counts.get(v, 0.0) == pytest.approx(
                prog_counts.get(v, 0.0)
            )

    def test_empty_drop_synopses_yield_zero_estimate(self, setup):
        catalog, plan, full, kept, dropped = setup
        kept_syn = synopsize(kept)
        empty_syn = synopsize({name: Multiset() for name in full})

        view = shadow_view(plan)
        bound = Binder(catalog).bind(view.query)
        inputs = {}
        for name in ("R", "S", "T"):
            inputs[f"{name.lower()}_kept_syn"] = Multiset(
                [(kept_syn[name], 0.0, 1.0)]
            )
            inputs[f"{name.lower()}_dropped_syn"] = Multiset(
                [(empty_syn[name], 0.0, 1.0)]
            )
        result = QueryExecutor(catalog).execute(bound, inputs)
        (row,) = iter(result.rows)
        assert row[0].total() == pytest.approx(0.0)

    def test_udf_ddl_catalogued(self, setup):
        catalog, *_ = setup
        ddl = catalog.functions.ddl()
        assert any("CREATE FUNCTION equijoin" in s for s in ddl)
        assert any("CREATE FUNCTION union_all" in s for s in ddl)
        assert catalog.functions.has_type("Synopsis")
