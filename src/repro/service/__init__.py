"""The network service: streaming ingest/subscribe with triage at the edge.

Paper Figure 1 shows triage queues sitting not only inside the engine but
at remote gateways upstream of network links.  This package turns the
library into that deployment: a long-running asyncio TCP server
(:mod:`repro.service.server`) accepts live publishers, sheds overload into
per-window synopses via the same :class:`~repro.core.triage_queue.TriageQueue`
machinery the simulator uses, evaluates each closed window's composite
(exact + approximate) answer, and fans it out to subscribers — while a
dependency-free telemetry layer (:mod:`repro.service.metrics`) reports
queue depths, drop ratios, and window latencies as Prometheus text or JSON.

Modules:

* :mod:`repro.service.protocol` — the versioned NDJSON wire protocol;
* :mod:`repro.service.metrics` — counters/gauges/histograms + exports;
* :mod:`repro.service.session` — admission control, rate caps, eviction;
* :mod:`repro.service.dataplane` — the in-process triage data plane;
* :mod:`repro.service.shard` — the multi-process sharded data plane;
* :mod:`repro.service.server` — the asyncio TCP server + window ticker;
* :mod:`repro.service.client` — the asyncio client library.
"""

from repro.service.client import ServiceError, TriageClient
from repro.service.dataplane import StreamDataPlane
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service.protocol import (
    MAX_BATCH_ROWS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    validate_frame,
)
from repro.service.server import ServiceConfig, TriageServer
from repro.service.session import AdmissionError, SessionRegistry, TokenBucket
from repro.service.shard import ShardedDataPlane, ShardError, shard_of

__all__ = [
    "TriageServer",
    "ServiceConfig",
    "StreamDataPlane",
    "ShardedDataPlane",
    "ShardError",
    "shard_of",
    "TriageClient",
    "ServiceError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ProtocolError",
    "AdmissionError",
    "SessionRegistry",
    "TokenBucket",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_BATCH_ROWS",
    "encode_frame",
    "decode_frame",
    "validate_frame",
]
