"""The ``repro bench`` regression harness.

Five curated suites cover the hot paths this repo's performance story rests
on; each is timed over several repetitions with fixed seeds so the numbers
are comparable run-to-run and PR-to-PR:

* ``pipeline_fig9_bursty`` — the Figure 9 workload end to end: pre-generated
  bursty streams through ``DataTriagePipeline.run`` (triage queues, heap
  drain, synopsis build, window evaluation).  Reported in tuples/second.
* ``pipeline_fig9_traced`` — the identical workload with observability
  attached (metrics + tracing + tuple-lifecycle events); the delta against
  ``pipeline_fig9_bursty`` is the instrumentation overhead.
* ``executor_micro`` — the Figure 6 "original query" microbenchmark: one
  3-way join + aggregate execution over static tables, through the compiled
  query plan.  Reported in executions/second.
* ``synopsis_join`` — the Figure 6 "rewritten query" path: build sparse
  cubic histograms from the substream tables and evaluate the shadow plan
  (synopsis equijoins + Q-).  Reported in evaluations/second.
* ``service_ingest`` — the network publish hot path:
  :meth:`TriageServer.ingest_rows` over pre-built row batches (schema
  validation, window accounting, triage offer).  Reported in rows/second.

Results are written as ``BENCH_pipeline.json`` with the stable schema
``repro-bench/v1``: one object per suite holding ``ops_per_sec``,
``p50_ms``, ``p95_ms``, ``reps``, ``units_per_rep``, and ``unit``, plus the
git revision the numbers belong to.  ``quick=True`` shrinks reps and input
sizes for CI smoke runs; the schema is identical, only the noise floor
differs.
"""

from __future__ import annotations

import json
import random
import statistics
import subprocess
import time
from pathlib import Path

#: Stable identifier for the output format; bump only on breaking changes.
BENCH_SCHEMA = "repro-bench/v1"

#: Repo root when running from a checkout (bench.py -> perf -> repro -> src -> root).
REPO_ROOT = Path(__file__).resolve().parents[3]


def git_revision() -> str:
    """The checkout's HEAD revision, or "unknown" outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:  # noqa: BLE001 - bench must run anywhere
        return "unknown"


def _time_suite(fn, reps: int, units_per_rep: int, unit: str) -> dict:
    """Run ``fn`` ``reps`` times; report median-based throughput + latency."""
    durations = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - t0)
    durations.sort()
    p50 = statistics.median(durations)
    p95 = durations[min(len(durations) - 1, round(0.95 * (len(durations) - 1)))]
    return {
        "ops_per_sec": round(units_per_rep / p50, 2) if p50 > 0 else None,
        "p50_ms": round(p50 * 1e3, 3),
        "p95_ms": round(p95 * 1e3, 3),
        "reps": reps,
        "units_per_rep": units_per_rep,
        "unit": unit,
    }


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------
def bench_pipeline(quick: bool) -> dict:
    """Figure 9 bursty workload through ``DataTriagePipeline.run``."""
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline

    params = ExperimentParams()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0
    )
    pipeline.run(streams)  # warm the plan cache + window-id cache
    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    return _time_suite(
        lambda: pipeline.run(streams),
        reps=5 if quick else 15,
        units_per_rep=tuples,
        unit="tuples",
    )


def bench_pipeline_traced(quick: bool) -> dict:
    """The same Figure 9 workload with full observability attached.

    Byte-identical streams and config to ``pipeline_fig9_bursty`` (both go
    through :func:`repro.experiments.bursty_pipeline` with the same seed),
    so the gap between the two suites *is* the cost of tracing + metrics —
    the observability overhead budget tracked in ``BENCH_pipeline.json``.
    """
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline
    from repro.obs import Observability

    params = ExperimentParams()
    obs = Observability(trace=True, trace_capacity=65536)
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0, obs=obs
    )
    pipeline.run(streams)  # warm the plan cache + window-id cache

    def one_rep() -> None:
        obs.reset()  # fresh trace buffer + phase store, as a real run has
        pipeline.run(streams)

    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    return _time_suite(
        one_rep,
        reps=5 if quick else 15,
        units_per_rep=tuples,
        unit="tuples",
    )


def bench_executor(quick: bool) -> dict:
    """Figure 6 original query: 3-way join + aggregate over static tables."""
    from repro.experiments import microbench_original, microbench_setup

    setup = microbench_setup(rows_per_table=300 if quick else 1000, seed=7)
    microbench_original(setup)  # warm the plan cache
    return _time_suite(
        lambda: microbench_original(setup),
        reps=3 if quick else 9,
        units_per_rep=1,
        unit="executions",
    )


def bench_synopsis(quick: bool) -> dict:
    """Figure 6 rewritten query: histogram build + shadow-plan evaluation."""
    from repro.experiments import (
        fast_synopsis_factory,
        microbench_rewritten,
        microbench_setup,
    )

    setup = microbench_setup(rows_per_table=300 if quick else 1000, seed=7)
    factory = fast_synopsis_factory()
    return _time_suite(
        lambda: microbench_rewritten(setup, factory),
        reps=9 if quick else 21,
        units_per_rep=1,
        unit="evaluations",
    )


def bench_service_ingest(quick: bool) -> dict:
    """Publish hot path: ``TriageServer.ingest_rows`` over pre-built batches."""
    from repro.core.strategies import PipelineConfig
    from repro.engine.window import WindowSpec
    from repro.experiments import PAPER_QUERY, STREAM_NAMES, paper_catalog
    from repro.service import ServiceConfig, TriageServer
    from repro.sources.generators import paper_row_generators

    rows_per_stream = 500 if quick else 2000
    batch = 500
    rng = random.Random(13)
    gens = paper_row_generators()
    rows = {
        name: [gens[name].draw(rng) for _ in range(rows_per_stream)]
        for name in STREAM_NAMES
    }
    timestamps = [i * 0.01 for i in range(rows_per_stream)]
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=200,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=lambda: 0.0)
    catalog = paper_catalog()

    def one_rep() -> None:
        # A fresh server per rep keeps queue/window state identical across
        # reps; its construction cost (~1ms) is noise against the ingest.
        server = TriageServer(catalog, PAPER_QUERY, config, service)
        for name in STREAM_NAMES:
            for lo in range(0, rows_per_stream, batch):
                server.ingest_rows(
                    name,
                    rows[name][lo : lo + batch],
                    timestamps=timestamps[lo : lo + batch],
                    now=0.0,
                )

    return _time_suite(
        one_rep,
        reps=5 if quick else 11,
        units_per_rep=len(STREAM_NAMES) * rows_per_stream,
        unit="rows",
    )


SUITES = {
    "pipeline_fig9_bursty": bench_pipeline,
    "pipeline_fig9_traced": bench_pipeline_traced,
    "executor_micro": bench_executor,
    "synopsis_join": bench_synopsis,
    "service_ingest": bench_service_ingest,
}


def run_bench_suites(quick: bool = False, suites: list[str] | None = None) -> dict:
    """Run the curated suites; return the ``repro-bench/v1`` result document."""
    names = list(SUITES) if suites is None else list(suites)
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        raise ValueError(f"unknown bench suites: {unknown}; have {list(SUITES)}")
    results = {name: SUITES[name](quick) for name in names}
    return {
        "schema": BENCH_SCHEMA,
        "git_rev": git_revision(),
        "quick": quick,
        "suites": results,
    }


def render_text(doc: dict) -> str:
    """A fixed-width table of the result document, for terminals and CI logs."""
    lines = [
        f"bench schema {doc['schema']}  rev {doc['git_rev'][:12]}"
        f"{'  (quick)' if doc['quick'] else ''}",
        f"{'suite':24s} {'ops/sec':>12s} {'p50 ms':>10s} {'p95 ms':>10s} unit",
    ]
    for name, r in doc["suites"].items():
        lines.append(
            f"{name:24s} {r['ops_per_sec']:>12,.2f} {r['p50_ms']:>10.2f} "
            f"{r['p95_ms']:>10.2f} {r['unit']}"
        )
    return "\n".join(lines)


def write_results(doc: dict, path: str | Path) -> Path:
    """Write the result document as pretty-printed JSON (trailing newline)."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
