"""Back-compat re-export: the metrics registry moved to :mod:`repro.obs.metrics`.

The registry began life here as service-only telemetry; once the core
pipeline and the executors grew instrumentation of their own it was promoted
to the shared observability layer (``repro.obs``).  Existing imports keep
working — this module re-exports the full public surface.
"""

from __future__ import annotations

from repro.obs.metrics import (  # noqa: F401 - re-exported for back-compat
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    record_hook_error,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "global_registry",
    "record_hook_error",
]
