"""Integration tests: the paper's experimental hypotheses (Section 6.1).

Small-scale versions of Figures 8 and 9 that assert the *shape* claims:

1. Under constant low load, Data Triage ≈ drop-only (both exact).
2. Under constant high load, Data Triage ≈ summarize-only (and never
   meaningfully worse).
3. Under bursty load with shifted burst data, Data Triage beats both.
4. Drop-only crosses above summarize-only as rate grows.
"""

import pytest

from repro.core import ShedStrategy
from repro.experiments import (
    ExperimentParams,
    run_bursty_rate,
    run_constant_rate,
)
from repro.quality import ErrorSummary, run_rms

PARAMS = ExperimentParams(
    tuples_per_window=100,
    n_windows=5,
    engine_capacity=500.0,
    queue_capacity=40,
)

N_RUNS = 3


def summarize(strategy, rate, bursty=False):
    values = []
    for seed in range(N_RUNS):
        run = (
            run_bursty_rate(strategy, rate, PARAMS, seed)
            if bursty
            else run_constant_rate(strategy, rate, PARAMS, seed)
        )
        values.append(run_rms(run))
    return ErrorSummary.from_values(values)


class TestConstantRate:
    def test_low_load_triage_and_drop_exact(self):
        for strategy in (ShedStrategy.DATA_TRIAGE, ShedStrategy.DROP_ONLY):
            s = summarize(strategy, rate=200)
            assert s.mean == pytest.approx(0.0, abs=1e-9)

    def test_low_load_summarize_only_pays_approximation(self):
        s = summarize(ShedStrategy.SUMMARIZE_ONLY, rate=200)
        assert s.mean > 1.0

    def test_high_load_drop_only_worst(self):
        rate = 2400  # ~80% shedding
        drop = summarize(ShedStrategy.DROP_ONLY, rate)
        summ = summarize(ShedStrategy.SUMMARIZE_ONLY, rate)
        triage = summarize(ShedStrategy.DATA_TRIAGE, rate)
        assert drop.mean > summ.mean  # the Figure 8 crossover happened
        assert triage.mean < drop.mean

    def test_triage_never_exceeds_summarize_only_meaningfully(self):
        for rate in (200, 800, 2400):
            triage = summarize(ShedStrategy.DATA_TRIAGE, rate)
            summ = summarize(ShedStrategy.SUMMARIZE_ONLY, rate)
            assert triage.mean <= summ.mean * 1.15

    def test_triage_error_monotone_ish_in_rate(self):
        errors = [summarize(ShedStrategy.DATA_TRIAGE, r).mean for r in (200, 1000, 2800)]
        assert errors[0] <= errors[1] <= errors[2] * 1.05

    def test_drop_only_error_grows_with_rate(self):
        errors = [summarize(ShedStrategy.DROP_ONLY, r).mean for r in (200, 1000, 2800)]
        assert errors[0] < errors[1] < errors[2]


class TestBurstyRate:
    def test_triage_dominates_both_at_high_peak(self):
        peak = 4000
        triage = summarize(ShedStrategy.DATA_TRIAGE, peak, bursty=True)
        drop = summarize(ShedStrategy.DROP_ONLY, peak, bursty=True)
        summ = summarize(ShedStrategy.SUMMARIZE_ONLY, peak, bursty=True)
        assert triage.mean < drop.mean
        assert triage.mean <= summ.mean * 1.1

    def test_low_peak_no_shedding(self):
        s = summarize(ShedStrategy.DATA_TRIAGE, 900, bursty=True)
        assert s.mean == pytest.approx(0.0, abs=1e-9)

    def test_burst_data_is_what_drop_only_loses(self):
        """The qualitative claim of the intro: with drop-only, the burst's
        (mean-shifted) groups are under-reported far more than with triage."""
        peak = 4000
        seed = 2
        drop = run_bursty_rate(ShedStrategy.DROP_ONLY, peak, PARAMS, seed)
        triage = run_bursty_rate(ShedStrategy.DATA_TRIAGE, peak, PARAMS, seed)

        def burst_region_deficit(run):
            """Ideal minus reported counts for groups in the shifted region."""
            deficit = ideal_total = 0.0
            for w in run.windows:
                for key, vals in (w.ideal or {}).items():
                    if key[0] >= 65:  # burst Gaussians center at 75
                        ideal = vals.get("count") or 0.0
                        got = (w.merged.get(key) or {}).get("count") or 0.0
                        deficit += max(0.0, ideal - got)
                        ideal_total += ideal
            return deficit / ideal_total if ideal_total else 0.0

        assert burst_region_deficit(triage) < burst_region_deficit(drop)
