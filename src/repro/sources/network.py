"""Network links between remote wrappers and the query engine.

Paper Figure 1 places triage queues inside the *wrappers* that feed the
engine — including remote wrappers on the far side of a network — and the
introduction lists "keeping load-shedding logic ... close to the data
source in scenarios where distributed gateways can be deployed" among Data
Triage's design goals, noting that "available network bandwidth ... may
also be affected during periods of bursts."

:class:`NetworkLink` models that constrained pipe: a propagation latency
(plus optional uniform jitter) and a bandwidth cap enforced as a
single-server transmission queue — when tuples are offered faster than the
link drains, they wait, and their arrival at the engine slips.  The gateway
layer (:mod:`repro.core.gateway`) composes this with a triage queue to shed
load *before* the bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.engine.types import StreamTuple


@dataclass(frozen=True)
class NetworkLink:
    """A fixed-capacity link: latency, jitter, and bandwidth (tuples/sec).

    ``bandwidth=None`` models an uncongested LAN (latency only).
    """

    latency: float = 0.0
    jitter: float = 0.0
    bandwidth: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def transmission_time(self) -> float:
        """Seconds the link is busy per transmitted tuple."""
        return 0.0 if self.bandwidth is None else 1.0 / self.bandwidth

    def transmit(self, tuples: Iterable[StreamTuple]) -> list[StreamTuple]:
        """Deliver tuples across the link; returns them re-timestamped.

        Tuples are offered at their current timestamps (must be
        non-decreasing); each occupies the link for ``1/bandwidth`` seconds
        (FIFO queueing when offered faster), then arrives ``latency`` plus
        up to ``jitter`` seconds later.  Delivery order is preserved — the
        link is a FIFO pipe, jitter only spreads arrival spacing.
        """
        rng = random.Random(self.seed)
        out: list[StreamTuple] = []
        link_free = 0.0
        last_arrival = 0.0
        for t in tuples:
            start = max(t.timestamp, link_free)
            link_free = start + self.transmission_time
            arrival = link_free + self.latency
            if self.jitter:
                arrival += rng.random() * self.jitter
            # FIFO pipes cannot reorder: clamp to the previous arrival.
            arrival = max(arrival, last_arrival)
            last_arrival = arrival
            out.append(StreamTuple(arrival, t.row))
        return out

    def queueing_delay(self, tuples: list[StreamTuple]) -> float:
        """Worst-case waiting time a tuple spent queued at the link."""
        worst = 0.0
        link_free = 0.0
        for t in tuples:
            start = max(t.timestamp, link_free)
            worst = max(worst, start - t.timestamp)
            link_free = start + self.transmission_time
        return worst
