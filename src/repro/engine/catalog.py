"""System catalog: streams, views, and the UDF/UDT registry.

The Data Triage rewrite manufactures auxiliary streams (``R_kept``,
``R_dropped``, ``R_dropped_syn``, ``R_kept_syn`` — paper Section 5.1) beside
each user stream; :meth:`Catalog.create_triage_streams` performs exactly that
DDL expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.types import Column, ColumnType, Schema
from repro.engine.udf import UDFRegistry


class CatalogError(KeyError):
    """Raised for unknown or duplicate catalog objects."""


@dataclass
class StreamDef:
    """A registered stream: its schema plus bookkeeping flags."""

    name: str
    schema: Schema
    is_auxiliary: bool = False  # True for rewrite-generated _kept/_dropped/_syn
    source_stream: str | None = None  # the user stream an auxiliary derives from


#: Schema of the auxiliary synopsis streams the rewrite creates (paper §5.1):
#: one synopsis value per window plus the timestamp range it covers.
SYNOPSIS_STREAM_SCHEMA = Schema(
    [
        Column("syn", ColumnType.SYNOPSIS),
        Column("earliest", ColumnType.TIMESTAMP),
        Column("latest", ColumnType.TIMESTAMP),
    ]
)


@dataclass
class Catalog:
    """Name → definition maps for streams and views, plus the UDF registry."""

    streams: dict[str, StreamDef] = field(default_factory=dict)
    views: dict[str, Any] = field(default_factory=dict)  # name -> SQL AST
    functions: UDFRegistry = field(default_factory=UDFRegistry)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def create_stream(
        self,
        name: str,
        schema: Schema,
        *,
        is_auxiliary: bool = False,
        source_stream: str | None = None,
        replace: bool = False,
    ) -> StreamDef:
        key = name.lower()
        if key in self.streams and not replace:
            raise CatalogError(f"stream {name!r} already exists")
        d = StreamDef(name, schema, is_auxiliary, source_stream)
        self.streams[key] = d
        return d

    def stream(self, name: str) -> StreamDef:
        try:
            return self.streams[name.lower()]
        except KeyError:
            raise CatalogError(f"no stream {name!r}") from None

    def has_stream(self, name: str) -> bool:
        return name.lower() in self.streams

    def drop_stream(self, name: str) -> None:
        if self.streams.pop(name.lower(), None) is None:
            raise CatalogError(f"no stream {name!r}")

    def user_streams(self) -> list[StreamDef]:
        return [d for d in self.streams.values() if not d.is_auxiliary]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(self, name: str, definition: Any, replace: bool = False) -> None:
        key = name.lower()
        if key in self.views and not replace:
            raise CatalogError(f"view {name!r} already exists")
        self.views[key] = definition

    def view(self, name: str) -> Any:
        try:
            return self.views[name.lower()]
        except KeyError:
            raise CatalogError(f"no view {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self.views

    # ------------------------------------------------------------------
    # Data Triage DDL expansion (paper Sections 4.3 & 5.1)
    # ------------------------------------------------------------------
    def create_triage_streams(self, name: str) -> dict[str, StreamDef]:
        """Create the four auxiliary streams Data Triage needs beside ``name``.

        ``X_kept``/``X_dropped`` carry relational tuples that survived /
        were evicted from the triage queue; ``X_kept_syn``/``X_dropped_syn``
        carry one synopsis per window.  Returns the new definitions keyed by
        suffix.
        """
        base = self.stream(name)
        out: dict[str, StreamDef] = {}
        for suffix in ("kept", "dropped"):
            out[suffix] = self.create_stream(
                f"{base.name}_{suffix}",
                base.schema,
                is_auxiliary=True,
                source_stream=base.name,
                replace=True,
            )
        for suffix in ("kept_syn", "dropped_syn"):
            out[suffix] = self.create_stream(
                f"{base.name}_{suffix}",
                SYNOPSIS_STREAM_SCHEMA,
                is_auxiliary=True,
                source_stream=base.name,
                replace=True,
            )
        return out
