"""Window-at-a-time query execution over bound queries.

:class:`QueryExecutor` takes a :class:`~repro.sql.binder.BoundQuery` plus the
current window's contents for every stream and produces the window's result
bag.  Join planning is the textbook greedy heuristic: build a left-deep tree,
always attaching a source that shares an equijoin predicate with what has
been joined so far (falling back to a cross product only when the query graph
is genuinely disconnected).

The continuous-query layer (:class:`ContinuousQuery`) drives this executor
once per window, which is the paper's execution model for the experiment
query of Figure 7.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.algebra.multiset import Multiset
from repro.engine.catalog import Catalog
from repro.engine.expressions import ColumnRef, Expression, conjoin
from repro.engine.operators import (
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Scan,
    UnionAll,
)
from repro.engine.types import Column, Schema, StreamTuple
from repro.engine.window import WindowSpec, assign_windows


class ExecutionError(RuntimeError):
    """Raised when a query cannot be planned or executed."""


@dataclass
class QueryResult:
    """A window's result: the output bag plus its schema.

    ``ordered_rows`` is populated (a list, duplicates included) when the
    query has an ORDER BY and/or LIMIT — bags are unordered, so ordering
    travels separately.
    """

    rows: Multiset
    schema: Schema
    ordered_rows: list[tuple] | None = None


class QueryExecutor:
    """Executes bound queries over per-window input bags."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._functions = catalog.functions

    # ------------------------------------------------------------------
    def execute(self, bound, inputs: dict[str, Multiset]) -> QueryResult:
        """Run ``bound`` (BoundQuery or BoundUnion) over ``inputs``.

        ``inputs`` maps *stream names* (not aliases) to the window's rows.
        Streams missing from ``inputs`` are treated as empty.
        """
        from repro.sql.binder import BoundQuery, BoundUnion

        if isinstance(bound, BoundUnion):
            results = [self.execute(q, inputs) for q in bound.queries]
            rows = Multiset()
            for r in results:
                rows = rows + r.rows
            return QueryResult(rows=rows, schema=results[0].schema)
        if not isinstance(bound, BoundQuery):
            raise ExecutionError(f"cannot execute {type(bound).__name__}")
        plan = self._plan(bound, inputs)
        if not bound.order_by and bound.limit is None:
            return QueryResult(rows=plan.to_multiset(), schema=plan.schema)
        rows = list(plan)
        if bound.order_by:
            rows = _order_rows(rows, plan.schema, bound.order_by, self._functions)
        if bound.limit is not None:
            rows = rows[: bound.limit]
        return QueryResult(
            rows=Multiset(rows), schema=plan.schema, ordered_rows=rows
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _plan(self, bound, inputs: dict[str, Multiset]) -> PhysicalOperator:
        per_source = {
            src.name: self._plan_source(src, inputs) for src in bound.sources
        }
        # Local selections first (predicate pushdown).
        for name, preds in bound.local_predicates.items():
            pred = conjoin(preds)
            if pred is not None:
                per_source[name] = Filter(
                    per_source[name], pred, self._functions
                )

        joined, joined_names = self._join_sources(bound, per_source)

        residual = conjoin(bound.residual_predicates)
        if residual is not None:
            joined = Filter(joined, residual, self._functions)

        if bound.is_aggregate:
            op: PhysicalOperator = HashAggregate(
                joined, bound.group_by, bound.aggregates, self._functions
            )
            if bound.having is not None:
                # HAVING sees the aggregate's output row (group keys +
                # aggregate values addressed by their output names).
                op = Filter(op, bound.having, self._functions)
        elif bound.select_star:
            op = joined
        else:
            op = Project(joined, bound.outputs, self._functions)

        if bound.distinct:
            op = _Distinct(op)
        return op

    def _plan_source(self, src, inputs: dict[str, Multiset]) -> PhysicalOperator:
        """Scan a base stream (qualifying its columns) or execute a subquery."""
        if src.subquery is not None:
            result = self.execute(src.subquery, inputs)
            # A derived table's output columns are bare names in SQL: strip
            # the inner qualifiers (when unambiguous) before re-qualifying
            # with this source's alias.
            schema = _qualify(_dequalify(result.schema), src.name)
            return Scan(result.rows, schema)
        rows = inputs.get(src.stream_name.lower(), None)
        if rows is None:
            rows = inputs.get(src.stream_name, Multiset())
        return Scan(rows, _qualify(src.schema, src.name))

    def _join_sources(self, bound, per_source: dict[str, PhysicalOperator]):
        """Greedy left-deep join tree construction."""
        remaining = dict(per_source)
        order = [src.name for src in bound.sources]
        first = order[0]
        current = remaining.pop(first)
        joined_names = {first}
        pending = list(bound.join_predicates)
        while remaining:
            # Find a predicate connecting the joined set to a new source.
            chosen = None
            for pred in pending:
                if pred.left_source in joined_names and pred.right_source in remaining:
                    chosen = (pred, pred.right_source)
                    break
                if pred.right_source in joined_names and pred.left_source in remaining:
                    chosen = (pred.reversed(), pred.left_source)
                    break
            if chosen is None:
                # Disconnected query graph: take the next source in FROM
                # order and cross-join it.
                nxt = next(n for n in order if n in remaining)
                current = NestedLoopJoin(
                    current, remaining.pop(nxt), None, self._functions
                )
                joined_names.add(nxt)
                continue
            pred, new_name = chosen
            # Gather every pending predicate between the joined set ∪ {new}
            # so multi-key joins use all keys at once.
            keys_left, keys_right, used = [], [], []
            for p in pending:
                cand = None
                if p.left_source in joined_names and p.right_source == new_name:
                    cand = p
                elif p.right_source in joined_names and p.left_source == new_name:
                    cand = p.reversed()
                if cand is not None:
                    keys_left.append(f"{cand.left_source}.{cand.left_column}")
                    keys_right.append(f"{cand.right_source}.{cand.right_column}")
                    used.append(p)
            pending = [p for p in pending if p not in used]
            current = HashJoin(
                current, remaining.pop(new_name), keys_left, keys_right
            )
            joined_names.add(new_name)
        return current, joined_names


class _Distinct(PhysicalOperator):
    """Duplicate elimination (SELECT DISTINCT)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self.schema = child.schema

    def __iter__(self):
        seen: set[tuple] = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row


def _order_rows(rows, schema: Schema, order_by, functions) -> list[tuple]:
    """Stable multi-key sort with SQL NULL placement (NULLs sort last)."""
    evals = [(expr.bind(schema, functions), asc) for expr, asc in order_by]
    out = list(rows)
    # Apply keys from the least significant to the most (stable sort).
    for ev, ascending in reversed(evals):
        out.sort(
            key=lambda row: ((ev(row) is None), ev(row) if ev(row) is not None else 0),
            reverse=not ascending,
        )
        if not ascending:
            # reverse=True puts NULLs first; move them to the end.
            nulls = [r for r in out if ev(r) is None]
            out = [r for r in out if ev(r) is not None] + nulls
    return out


def _dequalify(schema: Schema) -> Schema:
    """Strip ``x.`` qualifiers when the bare names stay unique."""
    bare = [c.name.rsplit(".", 1)[-1] for c in schema.columns]
    if len({b.lower() for b in bare}) != len(bare):
        return schema  # collisions: keep qualified names
    return Schema([Column(b, c.type) for b, c in zip(bare, schema.columns)])


def _qualify(schema: Schema, name: str) -> Schema:
    """Prefix every unqualified column with ``name.`` for join disambiguation."""
    cols = []
    for c in schema.columns:
        cols.append(c if "." in c.name else Column(f"{name}.{c.name}", c.type))
    return Schema(cols)


@dataclass
class WindowResult:
    """Result of one window of a continuous query."""

    window_id: int
    start: float
    end: float
    rows: Multiset
    schema: Schema


class ContinuousQuery:
    """Drives a bound query window-by-window over timestamped streams.

    This is the per-window execution loop the Data Triage pipeline sits in
    front of: the pipeline decides *which* tuples reach each window (triage),
    and this class computes the per-window relational answer.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        bound,
        window: WindowSpec,
    ) -> None:
        self.executor = executor
        self.bound = bound
        self.window = window

    def run(
        self, streams: dict[str, Iterable[StreamTuple]]
    ) -> list[WindowResult]:
        """Execute over full stream histories, producing one result per window."""
        per_stream_windows: dict[str, dict[int, list[StreamTuple]]] = {
            name.lower(): assign_windows(tuples, self.window)
            for name, tuples in streams.items()
        }
        window_ids = sorted(
            {w for wins in per_stream_windows.values() for w in wins}
        )
        out: list[WindowResult] = []
        for wid in window_ids:
            inputs = {
                name: Multiset(t.row for t in wins.get(wid, []))
                for name, wins in per_stream_windows.items()
            }
            result = self.executor.execute(self.bound, inputs)
            start, end = self.window.bounds(wid)
            out.append(
                WindowResult(
                    window_id=wid,
                    start=start,
                    end=end,
                    rows=result.rows,
                    schema=result.schema,
                )
            )
        return out
