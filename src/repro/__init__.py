"""Data Triage: an adaptive load-shedding architecture for stream queries.

A from-scratch reproduction of Reiss & Hellerstein, *Data Triage: An Adaptive
Architecture for Load Shedding in TelegraphCQ*.  The package bundles:

* :mod:`repro.engine` -- a mini continuous-query engine (the TelegraphCQ
  substrate): schemas, windows, SPJ + aggregate execution, object-relational
  UDF/UDT extensibility;
* :mod:`repro.sql` -- the paper's SQL dialect (parser, binder, renderer);
* :mod:`repro.algebra` -- the differential relational algebra of Section 3;
* :mod:`repro.rewrite` -- the kept/dropped query rewrite of Section 4 and the
  synopsis shadow plans of Section 5;
* :mod:`repro.synopses` -- synopsis data structures (sparse cubic histograms,
  MHIST, samples, sketches, wavelets) with relational operations;
* :mod:`repro.core` -- Data Triage itself: triage queues, drop policies, the
  three load-shedding strategies, shadow execution, result merging, and the
  virtual-clock load pipeline;
* :mod:`repro.sources`, :mod:`repro.quality`, :mod:`repro.viz` -- workload
  generation, result scoring, and detail-in-context visualization.
"""

__version__ = "1.0.0"
