"""The SPJ recurrence expansion (paper Section 4.2, equations 10–14).

For a join chain ``R1 ⋈ ... ⋈ Rn`` whose inputs only *lose* tuples
(``Ri+ = ∅``, the load-shedding case), equation 14 expands the dropped
results to::

    Q- = R1- ⋈ R2..n
       + R1_noisy ⋈ ( R2- ⋈ R3..n
                    + R2_noisy ⋈ ( R3- ⋈ R4..n + ... ))

Distributing the kept prefixes turns this into a sum of ``n`` disjoint
terms, one per relation that "takes the blame" for a lost result::

    term_i = (⋈_{j<i} Rj_kept) ⋈ Ri_dropped ⋈ (⋈_{j>i} Rj_all)

where ``Rj_all = Rj_kept + Rj_dropped``.  Both shapes are produced here: the
flat term list (:func:`dropped_terms`) drives execution, and the rewriter's
SQL/shadow generators use the nested shape for Figure 5 fidelity.

The symmetric expansion for added tuples (equations in Section 4.2's
``R1,k+`` recurrence) is included for completeness —
:func:`added_terms` — though SPJ queries under pure load shedding never
produce added results (equation 13: ``Q+ = ∅``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Channel(enum.Enum):
    """Which substream of a relation a term consumes."""

    KEPT = "kept"
    DROPPED = "dropped"
    ADDED = "added"
    ALL = "all"  # kept + dropped (the original relation, reconstructed)
    NOISY = "noisy"  # what the engine actually saw (= kept when added is ∅)


@dataclass(frozen=True)
class ExpansionTerm:
    """One additive term: a channel assignment for every chain position."""

    channels: tuple[Channel, ...]

    @property
    def pivot(self) -> int:
        """Position of the dropped/added relation in this term."""
        for i, c in enumerate(self.channels):
            if c in (Channel.DROPPED, Channel.ADDED):
                return i
        raise ValueError("term has no pivot channel")

    def __str__(self) -> str:
        return " ⋈ ".join(c.value for c in self.channels)


def dropped_terms(n: int) -> list[ExpansionTerm]:
    """The ``n`` terms of equation 14's distributed form.

    Term ``i``: kept for positions ``< i``, dropped at ``i``, all for
    positions ``> i``.  The terms are disjoint (each lost result is counted
    exactly once: attribute it to its *first* dropped input) and they sum to
    ``Q-``.
    """
    if n < 1:
        raise ValueError(f"need at least one relation, got {n}")
    out = []
    for i in range(n):
        channels = (
            (Channel.KEPT,) * i + (Channel.DROPPED,) + (Channel.ALL,) * (n - i - 1)
        )
        out.append(ExpansionTerm(channels))
    return out


def added_terms(n: int) -> list[ExpansionTerm]:
    """The symmetric expansion of ``R1,k+`` for inputs that gain tuples.

    Term ``i``: true-kept (noisy − added) for positions ``< i``, added at
    ``i``, noisy for positions ``> i``.
    """
    if n < 1:
        raise ValueError(f"need at least one relation, got {n}")
    out = []
    for i in range(n):
        channels = (
            (Channel.KEPT,) * i + (Channel.ADDED,) + (Channel.NOISY,) * (n - i - 1)
        )
        out.append(ExpansionTerm(channels))
    return out


def join_count(n: int) -> int:
    """Join operations needed for Q- and Q+ with intermediate reuse.

    The paper notes both expansions are computable with ``3n - 1`` joins by
    reusing the suffix joins ``R_{i..n}`` — exposed for the cost tests.
    """
    if n < 1:
        raise ValueError(f"need at least one relation, got {n}")
    return 3 * n - 1
