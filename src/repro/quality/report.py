"""Experiment-series containers and plain-text rendering.

Benchmarks accumulate (x, per-method :class:`ErrorSummary`) points into a
:class:`Series` table and print it in the shape of the paper's figures: one
row per load level, one column per load-shedding method, each cell
``mean ± std``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.quality.rms import ErrorSummary


@dataclass
class Series:
    """One figure's data: x-axis label/values and per-method error curves."""

    title: str
    x_label: str
    methods: list[str]
    rows: list[tuple[float, dict[str, ErrorSummary]]] = field(default_factory=list)

    def add_point(self, x: float, summaries: dict[str, ErrorSummary]) -> None:
        missing = [m for m in self.methods if m not in summaries]
        if missing:
            raise ValueError(f"missing methods at x={x}: {missing}")
        self.rows.append((x, summaries))

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render as an aligned text table (the bench harness's output)."""
        out = io.StringIO()
        out.write(f"{self.title}\n")
        header = [self.x_label] + [f"{m} (rms ± std)" for m in self.methods]
        widths = [max(len(h), 12) for h in header]
        cells_rows = []
        for x, summaries in self.rows:
            cells = [f"{x:g}"]
            for m in self.methods:
                s = summaries[m]
                cells.append(f"{s.mean:.1f} ± {s.std:.1f}")
            cells_rows.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        def fmt(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        out.write(fmt(header) + "\n")
        out.write("-" * (sum(widths) + 2 * (len(widths) - 1)) + "\n")
        for cells in cells_rows:
            out.write(fmt(cells) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Machine-readable export for external plotting."""
        out = io.StringIO()
        cols = [self.x_label]
        for m in self.methods:
            cols += [f"{m}_mean", f"{m}_std"]
        out.write(",".join(cols) + "\n")
        for x, summaries in self.rows:
            cells = [f"{x:g}"]
            for m in self.methods:
                s = summaries[m]
                cells += [f"{s.mean:.6g}", f"{s.std:.6g}"]
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    def to_ascii_chart(self, width: int = 64, height: int = 16) -> str:
        """A terminal line chart of every method's mean-RMS curve.

        One glyph per method; x positions follow the swept values linearly,
        higher error plots higher.  A low-fi rendering of the paper's
        figures that lives happily in benchmark output.
        """
        if not self.rows:
            return f"{self.title}\n(no data)\n"
        glyphs = "*o+x#%"
        xs = [x for x, _ in self.rows]
        ymax = max(
            s[m].mean for _, s in self.rows for m in self.methods
        ) or 1.0
        x0, x1 = min(xs), max(xs)
        span = (x1 - x0) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for mi, method in enumerate(self.methods):
            glyph = glyphs[mi % len(glyphs)]
            for x, summaries in self.rows:
                col = int((x - x0) / span * (width - 1))
                row = height - 1 - int(
                    summaries[method].mean / ymax * (height - 1)
                )
                cell = grid[row][col]
                grid[row][col] = "!" if cell not in (" ", glyph) else glyph
        out = io.StringIO()
        out.write(f"{self.title}\n")
        for r, line in enumerate(grid):
            label = f"{ymax * (height - 1 - r) / (height - 1):8.1f} |"
            out.write(label + "".join(line) + "\n")
        out.write(" " * 9 + "+" + "-" * width + "\n")
        out.write(f"{'':9}{x0:<10g}{'':{max(0, width - 20)}}{x1:>10g}\n")
        out.write(
            "legend: "
            + "  ".join(
                f"{glyphs[i % len(glyphs)]}={m}" for i, m in enumerate(self.methods)
            )
            + "  (!=overlap)\n"
        )
        return out.getvalue()

    # ------------------------------------------------------------------
    def method_curve(self, method: str) -> list[tuple[float, float]]:
        """(x, mean-RMS) points of one method."""
        return [(x, s[method].mean) for x, s in self.rows]

    def crossover(self, method_a: str, method_b: str) -> float | None:
        """First x where ``method_a``'s mean error exceeds ``method_b``'s.

        The Figure 8 narrative: drop-only starts below summarize-only and
        eventually crosses above it.  Returns None if no crossover occurs.
        """
        for x, s in self.rows:
            if s[method_a].mean > s[method_b].mean:
                return x
        return None
