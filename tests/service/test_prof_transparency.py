"""Profiler transparency and fleet-merge exactness (ISSUE 9 gate).

Three contracts, mirroring the audit-reconcile suite:

* **Transparency** — results and drop decisions are byte-identical with
  profiling on and off, for the Figure 9 pipeline run and for the serial
  and sharded data planes: the sampler lives on its own daemon thread
  and never touches the policy RNG chain or the hot path's data flow.
* **Service surface** — a server started with ``profile_hz`` carries a
  ``prof`` block in STATS (and supports live collapsed capture over the
  wire); a prof-off server's replies are unchanged and live capture is
  refused with a clear error.
* **Merge exactness** — the coordinator's fleet-wide profile is a pure
  merge target (never started), so after ``prof_sync`` its total sample
  count equals the sum of the workers' shipped samples exactly, no
  matter how many times syncing runs.
"""

import asyncio
import contextlib

import pytest

from repro.core.strategies import PipelineConfig, ShedStrategy
from repro.engine.window import WindowSpec
from repro.experiments import bursty_pipeline, paper_catalog
from repro.obs.prof import SamplingProfiler, parse_collapsed, validate_collapsed
from repro.service import ServiceConfig, TriageServer
from repro.service.dataplane import StreamDataPlane
from repro.service.shard import ShardedDataPlane
from tests.service.test_audit_reconcile import (
    ExperimentParams,
    drive,
    make_pipeline,
    outcome_key,
    workload,
)


# ---------------------------------------------------------------------------
# Transparency: profiling on/off is byte-identical
# ---------------------------------------------------------------------------
def test_fig9_run_identical_with_profiling_on_and_off():
    params = ExperimentParams(n_windows=2)

    def run_once(profiled):
        pipeline, streams = bursty_pipeline(
            ShedStrategy.DATA_TRIAGE, 3000.0, params, 0
        )
        if profiled:
            pipeline.prof = SamplingProfiler(hz=250.0)
        try:
            result = pipeline.run(streams)
        finally:
            if pipeline.prof is not None:
                pipeline.prof.stop()
        keys = [outcome_key(o) for o in result.windows]
        return keys, result.total_arrived, result.total_kept, result.total_dropped

    plain = run_once(False)
    profiled = run_once(True)
    assert profiled == plain
    assert plain[3] > 0, "workload must force shedding to be a real test"


def test_profile_hz_config_starts_sampler_on_run():
    params = ExperimentParams(n_windows=2)
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0
    )
    import dataclasses

    pipeline.config = dataclasses.replace(pipeline.config, profile_hz=250.0)
    try:
        pipeline.run(streams)
    finally:
        if pipeline.prof is not None:
            pipeline.prof.stop()
    assert pipeline.prof is not None
    assert pipeline.prof.samples >= 0
    validate_collapsed(pipeline.prof.export_collapsed())


def test_profile_hz_must_be_positive():
    with pytest.raises(ValueError):
        PipelineConfig(window=WindowSpec(width=1.0), profile_hz=0.0)


@pytest.mark.parametrize("shards", [1, 2])
def test_plane_results_identical_with_profiling_on_and_off(shards):
    schedule = workload(seed=23)

    def run_once(prof):
        pipeline = make_pipeline()
        if prof is not None:
            pipeline.prof = prof
            prof.start()
        if shards == 1:
            plane = StreamDataPlane(pipeline)
            try:
                return drive(plane, pipeline, schedule)
            finally:
                if prof is not None:
                    prof.stop()
        plane = ShardedDataPlane(pipeline, shards, prof=prof)
        try:
            return drive(plane, pipeline, schedule)
        finally:
            if prof is not None:
                prof.stop()
            plane.close()

    plain = run_once(None)
    profiled = run_once(SamplingProfiler(hz=250.0))
    assert profiled == plain
    assert plain[1][1] > 0  # dropped: shedding actually happened


# ---------------------------------------------------------------------------
# Merge exactness: coordinator total == sum of worker shipments
# ---------------------------------------------------------------------------
def test_sharded_merge_total_equals_sum_of_worker_samples():
    coordinator = SamplingProfiler(hz=97.0)
    pipeline = make_pipeline()
    plane = ShardedDataPlane(pipeline, 2, prof=coordinator)
    try:
        assert not coordinator.running  # pure merge target, never sampled
        drive(plane, pipeline, workload())
        absorbed = plane.prof_sync()
        absorbed += plane.prof_sync()  # deltas: re-sync never double counts
    finally:
        plane.close()
    assert coordinator.samples == absorbed
    header, counts = parse_collapsed(coordinator.export_collapsed())
    assert header["samples"] == absorbed
    assert sum(counts.values()) == absorbed


# ---------------------------------------------------------------------------
# Server surface: STATS prof block, live capture, prof-off refusal
# ---------------------------------------------------------------------------
class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@contextlib.asynccontextmanager
async def serve(**service_kwargs):
    clock = ManualClock()
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=30,
        service_time=0.001,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=clock, **service_kwargs)
    server = TriageServer(
        paper_catalog(),
        "SELECT a, COUNT(*) AS n FROM R GROUP BY a;",
        config,
        service,
    )
    await server.start()
    server.clock = clock
    try:
        yield server
    finally:
        await server.shutdown()


def test_server_stats_reply_carries_prof_block():
    from repro.service import TriageClient

    async def main():
        async with serve(profile_hz=250.0) as server:
            assert server.prof is not None and server.prof.running
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="prof-test"
            )
            try:
                stats = await client.stats()
                prof = stats["prof"]
                assert prof["summary"]["schema"] == "repro-prof/v1"
                assert prof["summary"]["hz"] == 250.0
                assert isinstance(prof["top"], list)
                assert "collapsed" not in prof  # only on request
                collapsed = await client.profile()
                header = validate_collapsed(collapsed)
                assert header["schema"] == "repro-prof/v1"
            finally:
                await client.close()

        async with serve() as server:
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="prof-test"
            )
            try:
                stats = await client.stats()
                assert "prof" not in stats  # prof-off replies are unchanged
                with pytest.raises(RuntimeError, match="not profiling"):
                    await client.profile()
            finally:
                await client.close()

    asyncio.run(main())


def test_sharded_server_live_capture_merges_workers():
    from repro.service import TriageClient

    async def main():
        async with serve(profile_hz=250.0, shards=2) as server:
            rows = [[1] for _ in range(80)]
            ts = [i / 80 for i in range(80)]
            server.ingest_rows("R", rows, ts, now=0.5)
            server.clock.t = 2.0
            await server.tick()
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="prof-test"
            )
            try:
                collapsed = await client.profile()
            finally:
                await client.close()
            header = validate_collapsed(collapsed)
            # The live capture synced worker deltas over the RPC hop into
            # the server's profiler before exporting.
            assert header["schema"] == "repro-prof/v1"
            assert server.prof.samples >= header["samples"] >= 0

    asyncio.run(main())
