"""Property-based tests (hypothesis) for synopsis estimator invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses import Dimension, SparseCubicHistogram

values = st.integers(1, 30)
rows_1d = st.lists(values.map(lambda v: (v,)), max_size=60)
rows_2d = st.lists(st.tuples(values, values), max_size=60)
widths = st.sampled_from([1, 2, 3, 5, 10])


def hist(dims, rows, width):
    syn = SparseCubicHistogram(dims, bucket_width=width)
    syn.insert_many(rows)
    return syn


D = Dimension("a", 1, 30)
D2 = [Dimension("b", 1, 30), Dimension("c", 1, 30)]


class TestSparseHistogramProperties:
    @given(rows_1d, widths)
    def test_total_is_exact(self, rows, width):
        assert hist([D], rows, width).total() == pytest.approx(len(rows))

    @given(rows_1d, widths, st.integers(1, 30))
    def test_select_range_partition_additivity(self, rows, width, mid):
        """σ[lo..mid] + σ[mid+1..hi] carries exactly σ[lo..hi]'s mass."""
        syn = hist([D], rows, width)
        left = syn.select_range("a", 1, mid).total()
        right = syn.select_range("a", mid + 1, 30).total() if mid < 30 else 0.0
        assert left + right == pytest.approx(syn.total())

    @given(rows_1d, rows_2d, widths)
    def test_join_total_never_negative_and_bounded(self, r_rows, s_rows, width):
        r = hist([D], r_rows, width)
        s = hist(D2, s_rows, width)
        j = r.equijoin(s, "a", "b")
        assert j.total() >= -1e-9
        # Upper bound: every pair could match at most once per value cell.
        assert j.total() <= len(r_rows) * len(s_rows) + 1e-9

    @given(rows_1d, rows_2d)
    def test_width1_join_is_exact(self, r_rows, s_rows):
        r = hist([D], r_rows, 1)
        s = hist(D2, s_rows, 1)
        cr = Counter(v for (v,) in r_rows)
        cs = Counter(b for b, _ in s_rows)
        exact = sum(cr[v] * cs[v] for v in cr)
        assert r.equijoin(s, "a", "b").total() == pytest.approx(exact)

    @given(rows_2d, widths)
    def test_projection_commutes_with_group_counts(self, rows, width):
        syn = hist(D2, rows, width)
        direct = syn.group_counts("c")
        via_project = syn.project(["c"]).group_counts("c")
        for v in set(direct) | set(via_project):
            assert direct.get(v, 0.0) == pytest.approx(via_project.get(v, 0.0))

    @given(rows_1d, rows_1d, widths)
    def test_union_then_query_equals_query_then_sum(self, rows_a, rows_b, width):
        a = hist([D], rows_a, width)
        b = hist([D], rows_b, width)
        u = a.union_all(b)
        ga, gb, gu = a.group_counts("a"), b.group_counts("a"), u.group_counts("a")
        for v in set(gu) | set(ga) | set(gb):
            assert gu.get(v, 0.0) == pytest.approx(
                ga.get(v, 0.0) + gb.get(v, 0.0)
            )

    @settings(max_examples=30)
    @given(rows_1d, rows_2d, widths)
    def test_join_distributes_over_union(self, r_rows, s_rows, width):
        """(r1 + r2) ⋈ s == r1 ⋈ s + r2 ⋈ s (histogram joins are bilinear)."""
        half = len(r_rows) // 2
        r1 = hist([D], r_rows[:half], width)
        r2 = hist([D], r_rows[half:], width)
        s = hist(D2, s_rows, width)
        joined_union = r1.union_all(r2).equijoin(s, "a", "b")
        union_joined = r1.equijoin(s, "a", "b").union_all(
            r2.equijoin(s, "a", "b")
        )
        gu = joined_union.group_counts("a")
        gj = union_joined.group_counts("a")
        for v in set(gu) | set(gj):
            assert gu.get(v, 0.0) == pytest.approx(gj.get(v, 0.0))

    @given(rows_1d, widths, st.floats(0.1, 10.0))
    def test_scale_commutes_with_group_counts(self, rows, width, factor):
        syn = hist([D], rows, width)
        scaled = syn.scale(factor)
        g, gs = syn.group_counts("a"), scaled.group_counts("a")
        for v in set(g) | set(gs):
            assert gs.get(v, 0.0) == pytest.approx(g.get(v, 0.0) * factor)
