"""Stream trace record/replay.

The paper's load driver *"read raw tuples off of disk and sent them to
TelegraphCQ with arbitrary time delays between tuple deliveries"*.  This
module is that driver's file format: a plain text trace of
``timestamp<TAB>v1,v2,...`` lines per stream, so experiment workloads can be
frozen to disk, inspected, and replayed bit-identically.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from repro.engine.types import StreamTuple


class TraceError(ValueError):
    """Raised on malformed trace lines."""


def dump_trace(tuples: Iterable[StreamTuple], fp: io.TextIOBase) -> int:
    """Write tuples to an open text file; returns the number written."""
    n = 0
    for t in tuples:
        values = ",".join(_dump_value(v) for v in t.row)
        fp.write(f"{t.timestamp!r}\t{values}\n")
        n += 1
    return n


def load_trace(fp: io.TextIOBase) -> list[StreamTuple]:
    """Read a trace written by :func:`dump_trace`."""
    out = []
    for lineno, line in enumerate(fp, start=1):
        line = line.rstrip("\n").rstrip("\r")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            ts_text, values_text = line.split("\t", 1)
            timestamp = float(ts_text)
            if values_text.strip() == "":
                row: tuple = ()
            else:
                row = tuple(_parse_value(v) for v in _split_values(values_text))
        except (ValueError, IndexError) as exc:
            raise TraceError(f"malformed trace line {lineno}: {line!r}") from exc
        out.append(StreamTuple(timestamp, row))
    return out


#: Bare (unquoted) literals — NULL round-trips a None column value, which
#: ``repr`` used to write as the *string* ``None`` that load then rejected.
_LITERALS = {"NULL": None, "TRUE": True, "FALSE": False}
_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\"}


def _dump_value(v) -> str:
    if v is None:
        return "NULL"
    if v is True:
        return "TRUE"
    if v is False:
        return "FALSE"
    if isinstance(v, (int, float)):
        return repr(v)
    if isinstance(v, str):
        # SQL-style '' quote doubling plus backslash escapes for the two
        # characters that would break the line format (tab, newline).
        escaped = (
            v.replace("\\", "\\\\")
            .replace("'", "''")
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        return f"'{escaped}'"
    raise TraceError(
        f"unsupported trace value type {type(v).__name__}: {v!r}"
    )


def _split_values(text: str) -> list[str]:
    """Split on commas, except inside quoted strings.

    ``'...'`` is the current format (with ``''`` doubling and backslash
    escapes); ``"..."`` appears in legacy traces written via ``repr`` and
    gets plain closing-quote matching.
    """
    parts: list[str] = []
    buf: list[str] = []
    quote: str | None = None
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if quote == "'":
            if ch == "\\" and i + 1 < n:
                buf.append(ch)
                buf.append(text[i + 1])
                i += 2
                continue
            if ch == "'" and i + 1 < n and text[i + 1] == "'":
                buf.append("''")
                i += 2
                continue
            if ch == "'":
                quote = None
            buf.append(ch)
        elif quote == '"':
            if ch == '"':
                quote = None
            buf.append(ch)
        elif ch in ("'", '"'):
            quote = ch
            buf.append(ch)
        elif ch == ",":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    if quote is not None:
        raise ValueError("unterminated quoted string")
    parts.append("".join(buf))
    return parts


def _unescape(s: str) -> str:
    out: list[str] = []
    i, n = 0, len(s)
    while i < n:
        ch = s[i]
        if ch == "\\" and i + 1 < n:
            out.append(_ESCAPES.get(s[i + 1], "\\" + s[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str):
    text = text.strip()
    if not text:
        raise ValueError("empty value")
    upper = text.upper()
    if upper in _LITERALS:
        return _LITERALS[upper]
    if len(text) >= 2 and text[0] == "'" and text[-1] == "'":
        return _unescape(text[1:-1].replace("''", "'"))
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]  # legacy traces: repr() double-quoted strings
    try:
        return int(text)
    except ValueError:
        return float(text)  # failure propagates -> malformed line


def save_trace_file(tuples: Iterable[StreamTuple], path: str | Path) -> int:
    """Record a stream to ``path``."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_trace(tuples, fp)


def load_trace_file(path: str | Path) -> list[StreamTuple]:
    """Replay a stream from ``path``."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_trace(fp)


def rescale_trace(
    tuples: list[StreamTuple], rate_factor: float
) -> list[StreamTuple]:
    """Replay the same tuples faster/slower ("arbitrary time delays").

    ``rate_factor > 1`` compresses the timeline (higher data rate), exactly
    how the paper's driver swept load without regenerating data.
    """
    if rate_factor <= 0:
        raise ValueError(f"rate_factor must be positive, got {rate_factor}")
    return [StreamTuple(t.timestamp / rate_factor, t.row) for t in tuples]
