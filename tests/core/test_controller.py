"""Tests for the load controller."""

import pytest

from repro.core import LoadController
from repro.core.triage_queue import QueueStats


def stats(offered, dropped):
    s = QueueStats()
    s.offered = offered
    s.dropped = dropped
    return s


class TestObservation:
    def test_rate_estimate_converges(self):
        c = LoadController(alpha=0.5)
        total = 0
        for _ in range(20):
            total += 100
            c.observe(1.0, stats(total, 0))
        assert c.estimate.arrival_rate == pytest.approx(100.0, rel=0.01)
        assert not c.estimate.shedding

    def test_drop_fraction_tracked(self):
        c = LoadController(alpha=1.0)
        c.observe(1.0, stats(100, 40))
        assert c.estimate.drop_fraction == pytest.approx(0.4)
        assert c.estimate.shedding

    def test_deltas_not_cumulative(self):
        c = LoadController(alpha=1.0)
        c.observe(1.0, stats(100, 10))
        c.observe(1.0, stats(150, 10))  # 50 new offers, 0 new drops
        assert c.estimate.arrival_rate == pytest.approx(50.0)
        assert c.estimate.drop_fraction == pytest.approx(0.0)

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            LoadController().observe(0.0, stats(1, 0))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LoadController(alpha=0.0)
        with pytest.raises(ValueError):
            LoadController(alpha=1.5)


class TestRecommendation:
    def test_staleness_bounds_capacity(self):
        c = LoadController(alpha=1.0, max_staleness=2.0)
        c.observe(1.0, stats(10_000, 0))  # huge arrival rate
        # service_time 10ms -> at most 200 tuples drain in 2s.
        assert c.recommended_capacity(service_time=0.01) == 200

    def test_arrival_bounds_capacity_when_low(self):
        c = LoadController(alpha=1.0, max_staleness=2.0, min_capacity=16)
        c.observe(1.0, stats(30, 0))  # 30 tuples/sec
        # 2s of arrivals = 60 < staleness cap.
        assert c.recommended_capacity(service_time=0.001) == 60

    def test_min_capacity_floor(self):
        c = LoadController(alpha=1.0, min_capacity=16)
        c.observe(1.0, stats(1, 0))
        assert c.recommended_capacity(service_time=0.001) >= 16

    def test_invalid_service_time(self):
        with pytest.raises(ValueError):
            LoadController().recommended_capacity(0.0)

    def test_invalid_staleness(self):
        with pytest.raises(ValueError):
            LoadController(max_staleness=0.0)
