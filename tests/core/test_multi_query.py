"""Tests for shared triage across multiple continuous queries."""

import random

import pytest

from repro.core import (
    PipelineConfig,
    ShedStrategy,
    SharedTriageRuntime,
)
from repro.engine import WindowSpec
from repro.quality import run_rms
from repro.rewrite import RewriteError
from repro.sources import SteadyArrival, generate_stream, paper_row_generators

Q_THREE_WAY = (
    "SELECT a, COUNT(*) AS n FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)
Q_TWO_WAY = (
    "SELECT c, COUNT(*) AS n FROM S, T WHERE S.c = T.d GROUP BY c;"
)
Q_SINGLE = "SELECT d, COUNT(*) AS n FROM T GROUP BY d;"


def build_streams(rate_per_stream, n, seed=7):
    rng = random.Random(seed)
    gens = paper_row_generators()
    return {
        name: generate_stream(
            n, SteadyArrival(rate_per_stream), gens[name], None, rng
        )
        for name in ("R", "S", "T")
    }


def make_runtime(paper_catalog, queries, service_time=1 / 300.0, capacity=30):
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=WindowSpec(width=1.0),
        queue_capacity=capacity,
        service_time=service_time,
        seed=2,
    )
    return SharedTriageRuntime(paper_catalog, queries, config)


class TestConstruction:
    def test_union_dimensions(self, paper_catalog):
        rt = make_runtime(
            paper_catalog, {"q1": Q_THREE_WAY, "q2": Q_TWO_WAY, "q3": Q_SINGLE}
        )
        assert rt.streams_used == ["R", "S", "T"]
        assert {d.name for d in rt._dims["S"]} == {"S.b", "S.c"}
        assert {d.name for d in rt._dims["T"]} == {"T.d"}

    def test_aliased_stream_rejected(self, paper_catalog):
        with pytest.raises(RewriteError, match="aliases"):
            make_runtime(
                paper_catalog,
                {"bad": "SELECT x.a, COUNT(*) AS n FROM R x GROUP BY x.a"},
            )

    def test_requires_data_triage_strategy(self, paper_catalog):
        config = PipelineConfig(
            strategy=ShedStrategy.DROP_ONLY, window=WindowSpec(width=1.0)
        )
        with pytest.raises(ValueError, match="Data Triage"):
            SharedTriageRuntime(paper_catalog, {"q": Q_SINGLE}, config)


class TestSharedRun:
    def test_underload_all_queries_exact(self, paper_catalog):
        rt = make_runtime(paper_catalog, {"q1": Q_THREE_WAY, "q2": Q_TWO_WAY})
        streams = build_streams(rate_per_stream=20, n=60)
        result = rt.run(streams)
        assert result.total_dropped == 0
        for qid, run in result.per_query.items():
            assert run_rms(run) == pytest.approx(0.0), qid

    def test_overload_every_query_compensated(self, paper_catalog):
        # 3 queries x 3 streams: engine work is per (tuple, query), so this
        # overloads quickly.
        rt = make_runtime(
            paper_catalog,
            {"q1": Q_THREE_WAY, "q2": Q_TWO_WAY, "q3": Q_SINGLE},
            service_time=1 / 300.0,
        )
        streams = build_streams(rate_per_stream=250, n=400)
        result = rt.run(streams)
        assert result.total_dropped > 0
        for qid, run in result.per_query.items():
            # Merged totals track ideal totals despite heavy shedding.
            for w in run.windows:
                ideal_total = sum(v["n"] or 0 for v in w.ideal.values())
                merged_total = sum(v["n"] or 0 for v in w.merged.values())
                if ideal_total > 20:
                    assert merged_total == pytest.approx(
                        ideal_total, rel=0.4
                    ), qid

    def test_sharing_ratio_reflects_query_count(self, paper_catalog):
        rt = make_runtime(
            paper_catalog,
            {"q1": Q_THREE_WAY, "q2": Q_TWO_WAY, "q3": Q_SINGLE},
        )
        streams = build_streams(rate_per_stream=250, n=300)
        result = rt.run(streams)
        # q1 uses R,S,T; q2 uses S,T; q3 uses T: per-query copies would
        # store strictly more synopsis cells than the shared set.
        assert result.shared_synopsis_cells > 0
        assert result.sharing_ratio > 1.0

    def test_single_query_matches_sharing_ratio_one_ish(self, paper_catalog):
        rt = make_runtime(paper_catalog, {"q1": Q_THREE_WAY})
        streams = build_streams(rate_per_stream=250, n=300)
        result = rt.run(streams)
        assert result.sharing_ratio == pytest.approx(1.0)

    def test_missing_stream_rejected(self, paper_catalog):
        rt = make_runtime(paper_catalog, {"q1": Q_THREE_WAY})
        with pytest.raises(ValueError, match="no arrivals"):
            rt.run({"R": []})

    def test_queue_stats_shared_across_queries(self, paper_catalog):
        rt = make_runtime(paper_catalog, {"q1": Q_THREE_WAY, "q2": Q_TWO_WAY})
        streams = build_streams(rate_per_stream=250, n=300)
        result = rt.run(streams)
        s1 = result.per_query["q1"].queue_stats["S"]
        s2 = result.per_query["q2"].queue_stats["S"]
        assert s1 is s2  # literally the same queue
