"""The triage queue: a bounded buffer that synopsizes its overflow.

Paper Figure 1 / Section 1: *"Data Triage places a triage queue between each
data source and the query processor ...  When a triage queue runs out of
space, the system uses a drop policy to remove less-critical tuples from the
queue, and uses synopses to capture the approximate properties of the
deleted set of tuples.  At the end of each time window ... the triage
subsystem passes these synopses to the query engine."*

Dropped tuples are folded into a per-window synopsis (windows are assigned
by arrival timestamp, so a burst that straddles a boundary is attributed
correctly).  With ``summarize=False`` the same queue implements the
drop-only baseline — the single-codebase comparison of Section 5.2.1.

Concurrency contract
--------------------

A ``TriageQueue`` is **single-owner by default**: the virtual-clock
pipeline, the gateway, and the benchmarks all mutate a queue from exactly
one thread, so no synchronization is paid.  The network service
(:mod:`repro.service.server`) shares queues between connection readers and
the window ticker; although asyncio keeps those on one thread, publisher
code may legitimately call :meth:`offer` from worker threads (e.g. via
``loop.run_in_executor``).  Constructing the queue with ``thread_safe=True``
wraps every state-mutating entry point (``offer``/``poll``/
``release_window``/``drain``/capacity resize) in an ``RLock`` so concurrent
publishers cannot corrupt the buffer or the per-window synopses.  Reads of
``stats`` remain unlocked — counters are monotonic ints and may be a step
stale, which every consumer here tolerates.
"""

from __future__ import annotations

import random
import sys
import threading
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

from repro.core.policies import DROP_INCOMING, DropPolicy, PolicyContext
from repro.engine.columns import ColumnBatch
from repro.engine.types import StreamTuple
from repro.engine.window import WindowSpec
from repro.obs.metrics import record_hook_error
from repro.synopses.base import Dimension, Synopsis, SynopsisFactory

#: Observer callback signature: ``observer(queue_name, event, value)``.
#: Events emitted: ``"offer"`` (every arrival), ``"drop"`` (a victim was
#: shed), ``"summarize"`` (the victim was folded into a synopsis),
#: ``"poll"`` (the engine consumed a tuple), ``"shed_bytes"`` (approximate
#: in-memory size of a shed row), and the drop-policy's victim decision —
#: ``"drop_incoming"`` or ``"evict_buffered"``.  Consumers must ignore
#: events they do not know; an observer that raises is counted
#: (``obs_hook_errors_total{site="queue_observer"}``) and never aborts the
#: queue.  ``None`` costs nothing.
QueueObserver = Callable[[str, str, float], None]


@dataclass
class WindowSynopsis:
    """One window's dropped-tuple summary, as shipped to the shadow query.

    Mirrors the paper's ``R_dropped_syn(syn, earliest, latest)`` stream
    schema, plus the exact drop count for accounting.
    """

    window_id: int
    synopsis: Synopsis | None
    dropped_count: int
    earliest: float | None
    latest: float | None


@dataclass
class QueueStats:
    """Counters the load controller and experiments read."""

    offered: int = 0
    dropped: int = 0
    polled: int = 0
    overflows: int = 0
    high_watermark: int = 0

    @property
    def drop_fraction(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


class TriageQueue:
    """Bounded tuple queue with drop-to-synopsis overflow behaviour."""

    def __init__(
        self,
        name: str,
        dimensions: list[Dimension],
        dim_positions: list[int],
        capacity: int,
        policy: DropPolicy,
        synopsis_factory: SynopsisFactory,
        window: WindowSpec,
        *,
        summarize: bool = True,
        seed: int = 0,
        observer: QueueObserver | None = None,
        thread_safe: bool = False,
        audit=None,
    ) -> None:
        """``dimensions[i]`` describes row position ``dim_positions[i]``.

        ``summarize=False`` turns the queue into the drop-only baseline:
        victims are counted but not synopsized.  ``observer`` receives
        ``(queue_name, event, value)`` callbacks on the enqueue/drop/
        summarize/poll paths; ``thread_safe=True`` serializes mutations
        behind an RLock (see the module docstring's concurrency contract).
        ``audit`` is an optional :class:`~repro.obs.audit.DropLedger`; when
        set, every shed decision is recorded with its kind, window ids,
        queue depth, and the policy's score (``PolicyContext.last_score``).
        The ledger never touches the queue's RNG, so drop decisions are
        identical with audit on or off.
        """
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if len(dimensions) != len(dim_positions):
            raise ValueError("dimensions and dim_positions must align")
        self.name = name
        self.dimensions = list(dimensions)
        self.dim_positions = tuple(dim_positions)
        self.capacity = capacity
        self.policy = policy
        self.synopsis_factory = synopsis_factory
        self.window = window
        self.summarize = summarize
        self.observer = observer
        #: Optional DropLedger (assignable post-construction; the service
        #: data plane enables auditing on already-built queues).
        self.audit = audit
        self._lock = threading.RLock() if thread_safe else nullcontext()
        self._rng = random.Random(seed)
        self._buffer: deque[StreamTuple] = deque()
        self._window_synopses: dict[int, Synopsis] = {}
        self._window_counts: dict[int, int] = {}
        self._window_bounds: dict[int, tuple[float, float]] = {}
        # Buffered-tuple counts per primary window, maintained incrementally
        # on the offer/poll paths — but only when the policy asks for them
        # (``DropPolicy.wants_window_counts``), so the default policies pay
        # nothing.  Decided once here: swapping in an occupancy-hungry
        # policy after construction is not supported.
        self._track_occupancy = bool(getattr(policy, "wants_window_counts", False))
        self._occupancy: dict[int, int] = {}
        # One reusable context per queue: every field but ``synopsis`` is
        # fixed for the queue's lifetime (``window_counts`` aliases the
        # occupancy dict, which is mutated in place, never replaced), so
        # the overflow path stops paying a dataclass construction per
        # victim decision.  Policies must not retain the context across
        # calls — none do; it is a per-decision view by contract.
        self._policy_context = PolicyContext(
            rng=self._rng,
            synopsis=None,
            dim_positions=self.dim_positions,
            queue_name=name,
            window=window,
            window_counts=self._occupancy if self._track_occupancy else None,
        )
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def is_full(self) -> bool:
        return len(self._buffer) >= self.capacity

    def peek_timestamp(self) -> float | None:
        """Arrival time of the head tuple (None when empty)."""
        return self._buffer[0].timestamp if self._buffer else None

    # ------------------------------------------------------------------
    def offer(self, tup: StreamTuple) -> None:
        """A tuple arrives from the source; shed a victim if full."""
        with self._lock:
            self.stats.offered += 1
            self._notify("offer")
            if len(self._buffer) < self.capacity:
                self._buffer.append(tup)
                if self._track_occupancy:
                    self._occ_add(tup)
                self.stats.high_watermark = max(
                    self.stats.high_watermark, len(self._buffer)
                )
                return
            self.stats.overflows += 1
            ctx = self._context(tup)
            auditing = self.audit is not None
            if auditing:
                ctx.last_score = None
            victim_idx = self.policy.select_victim(self._buffer, tup, ctx)
            if victim_idx == DROP_INCOMING:
                victim = tup
                self._notify("drop_incoming")
            else:
                victim = self._buffer[victim_idx]
                del self._buffer[victim_idx]
                self._buffer.append(tup)
                if self._track_occupancy:
                    self._occ_remove(victim)
                    self._occ_add(tup)
                self._notify("evict_buffered")
            if auditing:
                self.audit.record(
                    "drop_incoming" if victim_idx == DROP_INCOMING
                    else "evict_buffered",
                    policy=self.policy.name,
                    stream=self.name,
                    windows=self.window.ids(victim.timestamp),
                    timestamp=victim.timestamp,
                    depth=len(self._buffer),
                    score=ctx.last_score,
                    row=victim.row,
                )
            self._shed(victim)

    def offer_bulk(self, batch) -> int:
        """Offer a whole batch under one lock acquisition; returns drops.

        ``batch`` is either a sequence of :class:`StreamTuple` or a
        :class:`~repro.engine.columns.ColumnBatch`; column batches are
        consumed natively — the only per-row Python objects materialized
        are the StreamTuples the buffer actually stores.

        Semantically identical to calling :meth:`offer` once per tuple —
        the same drop decisions (same RNG draw sequence), the same synopsis
        contents, the same :class:`QueueStats` totals — but the batch shape
        is exploited three ways:

        * **free-prefix admit** — ``offer()`` never consults the policy
          while free space remains, so everything that fits goes in with
          one ``extend`` and zero RNG draws or per-tuple dispatch;
        * **grouped synopsis flush** — once the buffer is full every
          remaining tuple sheds exactly one victim; for policies that never
          read ``PolicyContext.synopsis`` (``reads_synopsis=False``) the
          per-victim synopsis inserts are deferred and flushed once per
          window via :meth:`Synopsis.insert_bulk`, preserving per-window
          insert order (reservoir samples are order/RNG-sensitive);
        * **aggregated observer events** — emitted once per *event type*
          with summed values instead of once per tuple, and skipped
          entirely (no byte-size accounting either) when no observer is
          registered.  On the network publish path that aggregation is
          most of the win: a shed-heavy 500-row batch otherwise costs
          ~2000 observer dispatches before a single tuple reaches the
          engine.
        """
        n = len(batch)
        if n == 0:
            return 0
        columnar = isinstance(batch, ColumnBatch)
        if not columnar and not isinstance(batch, (list, tuple)):
            batch = list(batch)
        with self._lock:
            stats = self.stats
            stats.offered += n
            buffer = self._buffer
            observing = self.observer is not None
            track = self._track_occupancy
            dropped = 0
            drop_incoming = 0
            shed_bytes = 0.0
            free = self.capacity - len(buffer)
            k = n if free >= n else (free if free > 0 else 0)
            if k:
                if columnar:
                    admit = batch.stream_tuples(0, k)
                else:
                    admit = batch if k == n else batch[:k]
                buffer.extend(admit)
                if track:
                    occ = self._occupancy
                    pw = self.window.primary_window
                    for tup in admit:
                        wid = pw(tup.timestamp)
                        occ[wid] = occ.get(wid, 0) + 1
            if k < n:
                # The buffer is full for this entire tail: every arrival
                # overflows and sheds exactly one victim.
                tail = batch.stream_tuples(k) if columnar else (
                    batch[k:] if k else batch
                )
                stats.overflows += n - k
                window = self.window
                ids = window.ids
                primary = window.primary_window
                policy = self.policy
                select = policy.select_victim
                needs_syn = policy.reads_synopsis
                ctx = self._policy_context
                if not needs_syn:
                    ctx.synopsis = None
                synopses = self._window_synopses
                syn_get = synopses.get
                counts = self._window_counts
                counts_get = counts.get
                bounds = self._window_bounds
                bounds_get = bounds.get
                summarize = self.summarize
                dpos = self.dim_positions
                pending: dict[int, list] | None = (
                    {} if summarize and not needs_syn else None
                )
                audit = self.audit
                audit_record = audit.record if audit is not None else None
                policy_name = policy.name if audit is not None else ""
                for tup in tail:
                    if needs_syn:
                        ctx.synopsis = syn_get(primary(tup.timestamp))
                    if audit_record is not None:
                        ctx.last_score = None
                    victim_idx = select(buffer, tup, ctx)
                    if victim_idx == DROP_INCOMING:
                        victim = tup
                        drop_incoming += 1
                    else:
                        victim = buffer[victim_idx]
                        del buffer[victim_idx]
                        buffer.append(tup)
                        if track:
                            self._occ_remove(victim)
                            self._occ_add(tup)
                    dropped += 1
                    if observing:
                        shed_bytes += float(sys.getsizeof(victim.row))
                    # Inlined _shed_record: a victim is charged to every
                    # window containing it (one for tumbling specs).
                    vts = victim.timestamp
                    vrow = victim.row
                    vwids = ids(vts)
                    if audit_record is not None:
                        audit_record(
                            "drop_incoming" if victim_idx == DROP_INCOMING
                            else "evict_buffered",
                            policy=policy_name,
                            stream=self.name,
                            windows=vwids,
                            timestamp=vts,
                            depth=len(buffer),
                            score=ctx.last_score,
                            row=vrow,
                        )
                    for wid in vwids:
                        counts[wid] = counts_get(wid, 0) + 1
                        b = bounds_get(wid)
                        if b is None:
                            bounds[wid] = (vts, vts)
                        elif vts < b[0]:
                            bounds[wid] = (vts, b[1])
                        elif vts > b[1]:
                            bounds[wid] = (b[0], vts)
                        if pending is not None:
                            rows = pending.get(wid)
                            if rows is None:
                                rows = pending[wid] = []
                            rows.append(vrow)
                        elif summarize:
                            syn = syn_get(wid)
                            if syn is None:
                                syn = synopses[wid] = (
                                    self.synopsis_factory.create(self.dimensions)
                                )
                            syn.insert([vrow[p] for p in dpos])
                stats.dropped += dropped
                if pending:
                    # Flush in first-victim order: synopsis *creation*
                    # order matches the eager path (factories may vary
                    # seeds per create), and per-window insert order is
                    # the victim order.
                    factory = self.synopsis_factory
                    for wid, rows in pending.items():
                        syn = syn_get(wid)
                        if syn is None:
                            syn = synopses[wid] = factory.create(self.dimensions)
                        syn.insert_bulk(rows, dpos)
            # ``high_watermark >= len(buffer)`` holds at every quiescent
            # point (only offers grow the buffer, and they maintain it), so
            # one max at the end equals the per-append updates of offer().
            if len(buffer) > stats.high_watermark:
                stats.high_watermark = len(buffer)
            if observing:
                self._notify("offer", float(n))
                if dropped:
                    self._notify("drop", float(dropped))
                    self._notify("shed_bytes", shed_bytes)
                    if self.summarize:
                        self._notify("summarize", float(dropped))
                    if drop_incoming:
                        self._notify("drop_incoming", float(drop_incoming))
                    if dropped > drop_incoming:
                        self._notify(
                            "evict_buffered", float(dropped - drop_incoming)
                        )
            return dropped

    def poll(self) -> StreamTuple | None:
        """The engine pulls the next tuple (FIFO order)."""
        with self._lock:
            if not self._buffer:
                return None
            self.stats.polled += 1
            self._notify("poll")
            tup = self._buffer.popleft()
            if self._track_occupancy:
                self._occ_remove(tup)
            return tup

    # ------------------------------------------------------------------
    def _context(self, tup: StreamTuple) -> PolicyContext:
        """The victim-selection context for one overflow decision.

        Returns the queue's shared context with ``synopsis`` refreshed for
        the incoming tuple's primary window (skipped when the policy
        declares it never reads it).
        """
        ctx = self._policy_context
        if self.policy.reads_synopsis:
            wid = self.window.primary_window(tup.timestamp)
            ctx.synopsis = self._window_synopses.get(wid)
        else:
            ctx.synopsis = None
        return ctx

    def _occ_add(self, tup: StreamTuple) -> None:
        wid = self.window.primary_window(tup.timestamp)
        self._occupancy[wid] = self._occupancy.get(wid, 0) + 1

    def _occ_remove(self, tup: StreamTuple) -> None:
        wid = self.window.primary_window(tup.timestamp)
        n = self._occupancy.get(wid, 0) - 1
        if n <= 0:
            self._occupancy.pop(wid, None)
        else:
            self._occupancy[wid] = n

    def _notify(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            try:
                self.observer(self.name, event, value)
            except Exception:
                record_hook_error("queue_observer")

    # ------------------------------------------------------------------
    def _shed(self, victim: StreamTuple) -> None:
        self.stats.dropped += 1
        self._notify("drop")
        if self.observer is not None:
            self._notify("shed_bytes", float(sys.getsizeof(victim.row)))
        if self.summarize:
            self._notify("summarize")
        self._shed_record(victim)

    def _shed_record(self, victim: StreamTuple) -> None:
        """Window accounting + synopsis insert for one victim (no events)."""
        # A victim is charged to every window containing it — one window
        # for tumbling specs, several when windows overlap (hopping).
        for wid in self.window.ids(victim.timestamp):
            self._window_counts[wid] = self._window_counts.get(wid, 0) + 1
            lo, hi = self._window_bounds.get(
                wid, (victim.timestamp, victim.timestamp)
            )
            self._window_bounds[wid] = (
                min(lo, victim.timestamp),
                max(hi, victim.timestamp),
            )
            if not self.summarize:
                continue
            syn = self._window_synopses.get(wid)
            if syn is None:
                syn = self._window_synopses[wid] = self.synopsis_factory.create(
                    self.dimensions
                )
            syn.insert([victim.row[p] for p in self.dim_positions])

    # ------------------------------------------------------------------
    def window_synopsis(self, window_id: int) -> WindowSynopsis:
        """The dropped-tuple summary for one window (empty if no drops)."""
        bounds = self._window_bounds.get(window_id)
        return WindowSynopsis(
            window_id=window_id,
            synopsis=self._window_synopses.get(window_id),
            dropped_count=self._window_counts.get(window_id, 0),
            earliest=bounds[0] if bounds else None,
            latest=bounds[1] if bounds else None,
        )

    def windows_with_drops(self) -> list[int]:
        return sorted(self._window_counts)

    def release_window(self, window_id: int) -> WindowSynopsis:
        """Emit and forget a window's synopsis (the end-of-window hand-off)."""
        with self._lock:
            out = self.window_synopsis(window_id)
            self._window_synopses.pop(window_id, None)
            self._window_counts.pop(window_id, None)
            self._window_bounds.pop(window_id, None)
            return out

    def drain(self) -> list[StreamTuple]:
        """Remove and return everything still buffered (end of run)."""
        with self._lock:
            out = list(self._buffer)
            self._buffer.clear()
            self._occupancy.clear()
            return out
