"""The per-process triage data plane: queues, windows, engine emulation.

This is the state a :class:`~repro.service.server.TriageServer` used to hold
inline — per-stream :class:`~repro.core.triage_queue.TriageQueue` instances,
per-(source, window) kept bags and synopses, arrival counts, the
budgeted heap drain that emulates the engine, and the window-close
bookkeeping — factored out so it can run either in the server process
(``shards=1``, the serial fallback) or once per shard worker process
(:mod:`repro.service.shard`), each worker owning a disjoint subset of the
stream sources.

The split point is exactly the paper's: everything *before* window
evaluation is per-stream and independent (triage, shedding, synopsis
build), so it shards cleanly by source; evaluation wants all sources of a
window together, so the plane stops at :meth:`collect` — a
:class:`~repro.core.merge.WindowPartials` of kept bags + synopses + counts
that the coordinator merges (:func:`repro.core.merge.merge_partials`) and
feeds to :meth:`DataTriagePipeline.evaluate_windows`.

Determinism contract: queue seeds come from
:meth:`DataTriagePipeline.build_queue`, which derives them from each
source's *global* chain position — a worker that owns only stream ``S``
still seeds ``S``'s queue identically to the serial server.  Since drop
decisions depend only on a queue's own offer/poll interleaving and its own
RNG, a window's kept/dropped partition is byte-identical at any shard
count (given the same drain schedule), which is what the shard
determinism tests pin down.
"""

from __future__ import annotations

import heapq

from repro.algebra.multiset import Multiset
from repro.core.merge import WindowPartials
from repro.core.triage_queue import TriageQueue
from repro.engine.types import SchemaError, StreamTuple
from repro.synopses.base import Synopsis

__all__ = ["StreamDataPlane"]


class StreamDataPlane:
    """Triage queues + window accounting for a set of stream sources."""

    def __init__(
        self,
        pipeline,
        *,
        sources: list[str] | None = None,
        observer=None,
        thread_safe: bool = False,
        audit=None,
    ) -> None:
        """``sources=None`` owns every source of the pipeline's query;
        a shard worker passes its assigned subset.  ``observer`` and
        ``thread_safe`` are forwarded to the queues (the in-server plane
        wires its metrics observer and shares queues across publisher
        threads; shard workers are single-threaded and unobserved — their
        stats travel back in tick snapshots instead).  ``audit`` is an
        optional :class:`~repro.obs.audit.DropLedger` shared by every
        owned queue (and the hosted pattern engine); see
        :meth:`enable_audit` for turning it on after construction.
        """
        self.pipeline = pipeline
        self.config = pipeline.config
        self.sources: list[str] = (
            list(pipeline.sources) if sources is None else list(sources)
        )
        self._observer = observer
        self._thread_safe = thread_safe
        self._audit = audit
        self._prof = None
        self._schemas = {
            s: pipeline.bound.source(s).schema for s in self.sources
        }
        self.build_kept_syn: bool = self.config.strategy.summarizes_drops
        self.queues: dict[str, TriageQueue] = {}
        # CEP pattern hosting (attach_pattern): the engine consumes drained
        # tuples of its streams alongside the SPJ window accounting.
        self._pattern_args: tuple | None = None
        self._pattern_engine = None
        self._pattern_sources: frozenset[str] = frozenset()
        self._pattern_matches: list[StreamTuple] = []
        self.reset()

    def reset(self) -> None:
        """Fresh queues and window state (bench reps, worker reuse)."""
        self.queues.clear()
        self.queues.update(
            {
                s: self.pipeline.build_queue(
                    s,
                    observer=self._observer,
                    thread_safe=self._thread_safe,
                    audit=self._audit,
                )
                for s in self.sources
            }
        )
        self._kept_rows: dict[str, dict[int, Multiset]] = {
            s: {} for s in self.sources
        }
        self._kept_syn: dict[str, dict[int, Synopsis]] = {
            s: {} for s in self.sources
        }
        self.arrived: dict[str, dict[int, int]] = {s: {} for s in self.sources}
        self.known_windows: set[int] = set()
        self.last_closed_wid: int | None = None
        self._budget_carry = 0.0
        if self._pattern_args is not None:
            self._build_pattern_engine()

    # ------------------------------------------------------------------
    # CEP pattern hosting
    # ------------------------------------------------------------------
    def attach_pattern(
        self,
        pattern,
        *,
        max_runs: int = 1024,
        observer=None,
        with_utility: bool = True,
        utility_bins: int = 8,
    ):
        """Host a pattern query beside the SPJ windows; returns its engine.

        ``pattern`` is a :class:`~repro.sql.binder.BoundPattern` whose
        streams must all be sources of this plane.  Drained tuples of those
        sources are fed — in the drain's oldest-head-first order — to a
        :class:`~repro.cep.engine.PatternEngine`; matches accumulate until
        :meth:`take_matches`.  At most one pattern per plane; the engine is
        rebuilt (empty) on :meth:`reset`.
        """
        missing = [s for s in pattern.streams if s not in self.sources]
        if missing:
            raise ValueError(
                f"pattern streams {missing} are not sources of this plane "
                f"({self.sources})"
            )
        self._pattern_args = (pattern, max_runs, observer, with_utility, utility_bins)
        return self._build_pattern_engine()

    def _build_pattern_engine(self):
        from repro.cep.engine import PatternEngine
        from repro.cep.utility import UtilityModel

        pattern, max_runs, observer, with_utility, bins = self._pattern_args
        utility = (
            UtilityModel(pattern.within, bins=bins) if with_utility else None
        )
        self._pattern_engine = PatternEngine(
            pattern,
            max_runs=max_runs,
            observer=observer,
            utility=utility,
            audit=self._audit,
        )
        self._pattern_sources = frozenset(pattern.streams)
        self._pattern_matches = []
        return self._pattern_engine

    @property
    def pattern_engine(self):
        """The hosted pattern engine, or None."""
        return self._pattern_engine

    # ------------------------------------------------------------------
    # Shed-provenance auditing
    # ------------------------------------------------------------------
    @property
    def audit(self):
        """The attached :class:`~repro.obs.audit.DropLedger`, or None."""
        return self._audit

    def enable_audit(self, ledger) -> None:
        """Attach ``ledger`` to the live queues (and survive resets).

        Shard workers receive the enable over RPC *after* their plane is
        built, so this rewires already-constructed queues in place; the
        queue's recording hook is one ``is not None`` check, so attaching
        mid-run changes no drop decision (the ledger has its own RNG).
        """
        self._audit = ledger
        for q in self.queues.values():
            q.audit = ledger
        if self._pattern_engine is not None:
            self._pattern_engine.audit = ledger

    def audit_ship(self, wids: list[int] | None = None):
        """Serialize the ledger's new state for the coordinator (or None)."""
        if self._audit is None:
            return None
        return self._audit.ship(wids)

    # ------------------------------------------------------------------
    # Continuous profiling (shard workers sample locally, ship deltas)
    # ------------------------------------------------------------------
    @property
    def prof(self):
        """The attached :class:`~repro.obs.prof.SamplingProfiler`, or None."""
        return self._prof

    def enable_profile(self, prof) -> None:
        """Attach and start a local sampling profiler.

        The profiler runs on its own daemon thread; nothing on the
        ingest/drain paths changes, so enabling profiling cannot alter a
        result or a drop decision.
        """
        self._prof = prof
        prof.start()

    def prof_ship(self):
        """Serialize the profiler's new samples for the coordinator."""
        if self._prof is None:
            return None
        return self._prof.ship()

    def take_matches(self) -> list[StreamTuple]:
        """Pop the pattern matches emitted since the last call."""
        out = self._pattern_matches
        self._pattern_matches = []
        return out

    # ------------------------------------------------------------------
    # Ingest (the publish hot path)
    # ------------------------------------------------------------------
    def ingest(
        self,
        source: str,
        rows,
        timestamps=None,
        now: float = 0.0,
        validate: bool = True,
    ) -> tuple[int, int, int, int]:
        """Validate, window-account, and enqueue one batch.

        Returns ``(accepted, late, queue_depth, queue_dropped_total)`` —
        the ack quad the PUBLISH handler reports as backpressure signals.
        Raises :class:`SchemaError` (prefixed with the row index) if any
        row is invalid; validation runs before anything is enqueued, so a
        bad batch is rejected atomically.  ``validate=False`` skips the
        per-row check for batches already validated column-wise (the
        ``cols`` wire encoding).
        """
        queue = self.queues[source]
        validate_row = self._schemas[source].validate_row if validate else None
        ids = self.config.window.ids
        arrived = self.arrived[source]
        known = self.known_windows
        last_closed = self.last_closed_wid
        batch: list[StreamTuple] = []
        late = 0
        if timestamps is None:
            wids = ids(now)
            if last_closed is not None and (
                not wids or wids[0] <= last_closed
            ):
                late = len(rows)
            else:
                for i, row in enumerate(rows):
                    tup_row = tuple(row)
                    if validate_row is not None:
                        try:
                            validate_row(tup_row)
                        except SchemaError as exc:
                            raise SchemaError(f"row {i}: {exc}") from None
                    batch.append(StreamTuple(now, tup_row))
                n = len(batch)
                for wid in wids:
                    arrived[wid] = arrived.get(wid, 0) + n
                    known.add(wid)
        else:
            # Validate (and coerce timestamps for) the whole batch before
            # any window accounting, so a mid-batch rejection leaves no
            # inflated arrival counts or phantom known windows behind —
            # the same atomicity the timestamps=None path has.
            staged: list[tuple[float, tuple]] = []
            for i, row in enumerate(rows):
                tup_row = tuple(row)
                if validate_row is not None:
                    try:
                        validate_row(tup_row)
                    except SchemaError as exc:
                        raise SchemaError(f"row {i}: {exc}") from None
                staged.append((float(timestamps[i]), tup_row))
            for ts, tup_row in staged:
                wids = ids(ts)
                if last_closed is not None and (
                    not wids or wids[0] <= last_closed
                ):
                    late += 1
                    continue
                for wid in wids:
                    arrived[wid] = arrived.get(wid, 0) + 1
                    known.add(wid)
                batch.append(StreamTuple(ts, tup_row))
        queue.offer_bulk(batch)
        return len(batch), late, len(queue), queue.stats.dropped

    def ingest_columns(
        self,
        source: str,
        cols,
        timestamps=None,
        now: float = 0.0,
        validate: bool = True,
    ) -> tuple[int, int, int, int]:
        """Columnar ingest: same contract as :meth:`ingest`, no row pivot.

        ``cols`` is one value list per schema column (the ``cols`` wire
        encoding).  The batch reaches the queue as a
        :class:`~repro.engine.columns.ColumnBatch` — row tuples are only
        materialized by the queue itself, for exactly the tuples it keeps.
        Validation is column-wise (one homogeneous-type scan per column)
        and, like :meth:`ingest`, runs before any window accounting so a
        bad batch is rejected atomically.
        """
        from repro.engine.columns import ColumnBatch

        queue = self.queues[source]
        schema = self._schemas[source]
        # cols == [] is the columnar spelling of an empty batch (a zero-row
        # pivot has no column structure to arity-check); everything below
        # degenerates correctly for n == 0.
        if validate and cols:
            schema.validate_columns(cols)
        n = len(cols[0]) if cols else 0
        ids = self.config.window.ids
        arrived = self.arrived[source]
        known = self.known_windows
        last_closed = self.last_closed_wid
        late = 0
        if timestamps is None:
            wids = ids(now)
            if last_closed is not None and (not wids or wids[0] <= last_closed):
                late = n
                batch = ColumnBatch((), now, schema)
            else:
                batch = ColumnBatch(cols, now, schema)
                for wid in wids:
                    arrived[wid] = arrived.get(wid, 0) + n
                    known.add(wid)
        else:
            stamps = [float(t) for t in timestamps]
            keep: list[int] = []
            ka = keep.append
            for i, ts in enumerate(stamps):
                wids = ids(ts)
                if last_closed is not None and (
                    not wids or wids[0] <= last_closed
                ):
                    late += 1
                    continue
                for wid in wids:
                    arrived[wid] = arrived.get(wid, 0) + 1
                    known.add(wid)
                ka(i)
            batch = ColumnBatch(cols, stamps, schema)
            if len(keep) != n:
                batch = batch.select(keep)
        queue.offer_bulk(batch)
        return len(batch), late, len(queue), queue.stats.dropped

    # ------------------------------------------------------------------
    # Engine emulation
    # ------------------------------------------------------------------
    def advance(self, elapsed: float) -> int:
        """One engine step: drain within ``elapsed``'s tuple budget.

        The budget is ``elapsed / service_time`` plus the fractional carry
        from the previous step — the same fixed-cost engine model as the
        virtual-clock pipeline.  Returns the whole-tuple budget spent
        (each shard of a sharded plane runs its own engine, so N shards
        model N cores' worth of drain capacity).
        """
        budget = self._budget_carry + elapsed / self.config.service_time
        whole = int(budget)
        self._budget_carry = budget - whole
        self.drain(whole)
        return whole

    def drain(self, budget: int | None) -> None:
        """Poll up to ``budget`` tuples (None = everything), oldest first.

        Queue heads are tracked in a heap instead of a linear peek over
        every source per tuple.  Heads can shift underneath us (a racing
        publisher thread may trigger a head eviction), so entries are
        revalidated against the live head on pop; rows offered to a queue
        *after* its heap entry was consumed are picked up next tick.
        """
        polled = 0
        queues = self.queues
        names = list(queues)
        # Pattern feed: drained tuples of pattern sources accumulate here
        # and hit the engine as one advance_batch at the end of the drain
        # (byte-identical to per-tuple consume; the engine vectorizes its
        # utility updates and local-predicate pre-filter over the batch).
        pattern_feed: list[tuple[str, StreamTuple]] | None = (
            [] if self._pattern_engine is not None else None
        )
        heap = []
        for idx, s in enumerate(names):
            ts = queues[s].peek_timestamp()
            if ts is not None:
                heap.append((ts, idx))
        heapq.heapify(heap)
        window_ids = self.config.window.ids
        last_closed = self.last_closed_wid
        while (budget is None or polled < budget) and heap:
            ts, idx = heapq.heappop(heap)
            source = names[idx]
            q = queues[source]
            cur = q.peek_timestamp()
            if cur != ts:
                if cur is not None:  # pragma: no cover - racing publisher
                    heapq.heappush(heap, (cur, idx))
                continue
            tup = q.poll()
            if tup is None:  # pragma: no cover - racing publisher thread
                continue
            nts = q.peek_timestamp()
            if nts is not None:
                heapq.heappush(heap, (nts, idx))
            polled += 1
            if pattern_feed is not None and source in self._pattern_sources:
                pattern_feed.append((source, tup))
            kept_rows = self._kept_rows[source]
            for wid in window_ids(tup.timestamp):
                if last_closed is not None and wid <= last_closed:
                    # Out-of-order backlog for a window already reported:
                    # too late to contribute; don't leak per-window state.
                    continue
                bag = kept_rows.setdefault(wid, Multiset())
                bag.add(tup.row)
                if self.build_kept_syn:
                    syn = self._kept_syn[source].get(wid)
                    if syn is None:
                        syn = self._kept_syn[source][wid] = (
                            self.pipeline.make_kept_synopsis(source)
                        )
                    self.pipeline.insert_into_synopsis(source, syn, tup.row)
        if pattern_feed:
            self._pattern_matches.extend(
                self._pattern_engine.advance_batch(pattern_feed)
            )

    # ------------------------------------------------------------------
    # Window closing
    # ------------------------------------------------------------------
    def due_windows(self, now: float, grace: float = 0.0) -> list[int]:
        """Windows whose end (+grace) has passed and whose tuples drained.

        A window stays open while any queue's head still precedes its end —
        backlogged-but-kept tuples must land in their window first.  Windows
        are ordered, so the scan stops at the first not-due window.
        """
        due: list[int] = []
        heads = [
            q.peek_timestamp()
            for q in self.queues.values()
            if q.peek_timestamp() is not None
        ]
        for wid in sorted(self.known_windows):
            _, end = self.config.window.bounds(wid)
            if end + grace > now:
                break
            if any(h < end for h in heads):
                break
            due.append(wid)
        return due

    def collect(self, wids: list[int]) -> WindowPartials:
        """Pop the evaluation inputs for a batch of closing windows."""
        use_shadow = self.build_kept_syn
        sources = self.sources
        released = {
            s: {w: self.queues[s].release_window(w) for w in wids}
            for s in sources
        }
        return WindowPartials(
            window_ids=list(wids),
            kept_rows={
                s: {w: self._kept_rows[s].pop(w, Multiset()) for w in wids}
                for s in sources
            },
            kept_synopses=(
                {
                    s: {w: self._kept_syn[s].pop(w, None) for w in wids}
                    for s in sources
                }
                if use_shadow
                else None
            ),
            dropped_synopses=(
                {
                    s: {w: released[s][w].synopsis for w in wids}
                    for s in sources
                }
                if use_shadow
                else None
            ),
            dropped_counts={
                s: {w: released[s][w].dropped_count for w in wids}
                for s in sources
            },
            arrived={
                s: {w: self.arrived[s].pop(w, 0) for w in wids}
                for s in sources
            },
        )

    def mark_closed(self, wids: list[int]) -> None:
        """Advance the closed-window watermark; later rows for it are late."""
        for wid in wids:
            self.known_windows.discard(wid)
            self.last_closed_wid = (
                wid
                if self.last_closed_wid is None
                else max(self.last_closed_wid, wid)
            )

    # ------------------------------------------------------------------
    # Introspection (metrics, summaries, coordinator snapshots)
    # ------------------------------------------------------------------
    def depths(self) -> dict[str, int]:
        return {s: len(q) for s, q in self.queues.items()}

    def heads(self) -> dict[str, float | None]:
        return {s: q.peek_timestamp() for s, q in self.queues.items()}

    def capacities(self) -> dict[str, int]:
        return {s: q.capacity for s, q in self.queues.items()}

    def stats_snapshot(self) -> dict[str, tuple[int, int, int, int, int]]:
        """Monotonic per-queue counters, pipe-friendly (plain tuples)."""
        return {
            s: (
                q.stats.offered,
                q.stats.dropped,
                q.stats.polled,
                q.stats.overflows,
                q.stats.high_watermark,
            )
            for s, q in self.queues.items()
        }

    def totals(self) -> tuple[int, int]:
        """(offered, dropped) across all owned queues."""
        offered = sum(q.stats.offered for q in self.queues.values())
        dropped = sum(q.stats.dropped for q in self.queues.values())
        return offered, dropped
