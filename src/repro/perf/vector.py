"""Vectorized expression kernels: whole-column evaluation of compiled plans.

:mod:`repro.perf.compile` lowers each expression tree into SSA statements
and runs the generated closure once per row.  This module retargets the
*same* lowering — same CSE, same literal folding, same three-valued-logic
statement bodies — at whole columns: every SSA statement becomes one list
comprehension over its vector-valued inputs, so an N-row batch executes
``#statements`` comprehensions instead of ``N × #statements`` bytecode
passes plus N Python calls.

Two kernel shapes are produced:

* :func:`compile_filter_vector` — ``rows -> [indices where pred is True]``
  (an index vector; the caller gathers survivors with one list
  comprehension, which is how compiled filters select batches);
* :func:`compile_tuple_vector` — ``rows -> [(v0, v1, ...), ...]`` (the
  projection/aggregate-input kernel; the output rows are built by one
  C-speed ``zip`` over the result columns).

Semantics note: the scalar closure evaluates statement 1..K for row 1,
then for row 2, …; the vector kernel evaluates statement 1 for all rows,
then statement 2, ….  Value results are identical — every statement is a
pure expression over its inputs, both operands of every operator are
always evaluated (the compiler emits no short-circuit), and per-row
conditional bodies (``None if x is None else …``) stay per-element inside
the comprehension.  Only the *order* in which two different rows' errors
would surface can differ; the first failing statement still fails.  User
function calls are pinned per-row (``volatile`` statements) so impure
functions observe the same number of calls.

The scalar emitter remains the permanent fallback: any
:class:`~repro.perf.compile.CompileError` here leaves the plan on the
row-at-a-time closures.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from itertools import repeat
from typing import Any

from repro.engine.expressions import ColumnRef, Expression, resolve_column
from repro.engine.types import Schema
from repro.perf.compile import _Emitter


class _VectorEmitter(_Emitter):
    """The scalar emitter with statements re-targeted at column vectors.

    Atom kinds: *vectors* (column loads and any statement with a vector
    input — one list element per row) and *scalars* (inline literals,
    bound constants, and loop-invariant temps computed once per batch).
    A statement with vector deps becomes a comprehension whose loop
    variables deliberately reuse the dep names — the comprehension scope
    shadows the outer vector, so the statement body emitted by the scalar
    lowering is reused verbatim.
    """

    #: Name of the generated function's argument (row-major batches).
    arg = "rows"
    #: Expression for the batch's row count, in terms of ``arg``.
    count_expr = "len(rows)"

    def __init__(self, schema: Schema, functions) -> None:
        super().__init__(schema, functions)
        self.vectors: set[str] = set()
        self._col_names: dict[int, str] = {}

    def _column_expr(self, pos: int) -> str:
        """The expression loading column ``pos`` as one value-per-row list."""
        return f"[_r[{pos}] for _r in rows]"

    def _lower(self, expr: Expression) -> str:
        if isinstance(expr, ColumnRef):
            pos = resolve_column(expr, self.schema)
            name = self._col_names.get(pos)
            if name is None:
                name = f"_col{pos}"
                self._col_names[pos] = name
                self.lines.append(f"{name} = {self._column_expr(pos)}")
                self.vectors.add(name)
            return name
        return super()._lower(expr)

    def _stmt(
        self, target: str, body: str, deps: tuple = (), volatile: bool = False
    ) -> None:
        vdeps = [d for d in dict.fromkeys(deps) if d in self.vectors]
        if not vdeps:
            if volatile:
                # Constant-argument user function: still once per row.
                self.lines.append(
                    f"{target} = [{body} for _ in range({self.count_expr})]"
                )
                self.vectors.add(target)
            else:
                self.lines.append(f"{target} = {body}")
            return
        if len(vdeps) == 1:
            d = vdeps[0]
            self.lines.append(f"{target} = [{body} for {d} in {d}]")
        else:
            lv = ", ".join(vdeps)
            self.lines.append(f"{target} = [{body} for {lv} in zip({lv})]")
        self.vectors.add(target)


class _ColsVectorEmitter(_VectorEmitter):
    """The vector emitter with column loads taken straight from the caller.

    The generated kernel's argument is a parallel-column sequence (the
    :class:`~repro.engine.columns.ColumnBatch` interior representation), so
    a column "load" is the zero-copy ``cols[pos]`` instead of a row pivot —
    the one shape difference between the two vector targets.
    """

    arg = "cols"
    count_expr = "(len(cols[0]) if cols else 0)"

    def _column_expr(self, pos: int) -> str:
        return f"cols[{pos}]"


def _finish_vector(em: _VectorEmitter, return_expr: str, name: str) -> Callable:
    body = "\n    ".join(em.lines) if em.lines else "pass"
    src = f"def {name}({em.arg}):\n    {body}\n    return {return_expr}\n"
    namespace = dict(em.env)
    namespace["_repeat"] = repeat
    exec(compile(src, f"<repro.perf.vector:{name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__repro_source__ = src  # introspection / EXPLAIN / debugging
    return fn


def compile_filter_vector(
    expr: Expression, schema: Schema, functions=None
) -> Callable[[list], list]:
    """Compile a predicate into ``rows -> [i for rows[i] passing]``.

    Matches the compiled filter's acceptance test exactly: a row survives
    iff the predicate value ``is True`` (SQL three-valued logic — NULL and
    False both reject).
    """
    return _filter_kernel(_VectorEmitter(schema, functions), expr)


def compile_filter_vector_cols(
    expr: Expression, schema: Schema, functions=None
) -> Callable[[Sequence], list]:
    """Compile a predicate into ``cols -> [i for row i passing]``.

    The column-native twin of :func:`compile_filter_vector`: the argument
    is a parallel-column sequence (``ColumnBatch.columns``-shaped), read
    zero-copy, so batch consumers that already hold columns never pivot to
    rows just to evaluate a predicate.  Same acceptance test (``is True``),
    same index-vector result.
    """
    return _filter_kernel(_ColsVectorEmitter(schema, functions), expr)


def _filter_kernel(em: _VectorEmitter, expr: Expression) -> Callable:
    atom = em.emit(expr)
    count = em.count_expr
    if atom in em.vectors:
        ret = f"[_i for _i, _v in enumerate({atom}) if _v is True]"
    elif atom in em._lit:
        # Constant predicate, folded at compile time.
        ret = f"list(range({count}))" if em._lit[atom] is True else "[]"
    else:
        ret = f"list(range({count})) if {atom} is True else []"
    return _finish_vector(em, ret, "_vector_filter")


def compile_tuple_vector(
    exprs: list[Expression], schema: Schema, functions=None
) -> Callable[[list], list[tuple]]:
    """Compile expressions into ``rows -> [(v0, v1, ...), ...]``.

    Scalar (loop-invariant) result atoms are broadcast across the batch
    via ``itertools.repeat``, so the final pivot is one ``zip``.
    """
    em = _VectorEmitter(schema, functions)
    atoms = [em.emit(e) for e in exprs]
    if not atoms:
        return _finish_vector(em, "[()] * len(rows)", "_vector_tuple")
    if all(a not in em.vectors for a in atoms):
        tup = "(" + "".join(a + ", " for a in atoms) + ")"
        return _finish_vector(em, f"[{tup}] * len(rows)", "_vector_tuple")
    parts = [a if a in em.vectors else f"_repeat({a})" for a in atoms]
    return _finish_vector(
        em, f"list(zip({', '.join(parts)}))", "_vector_tuple"
    )


def vector_source(fn: Callable) -> str | None:
    """The generated source of a vector kernel (debugging aid)."""
    return getattr(fn, "__repro_source__", None)


__all__ = [
    "compile_filter_vector",
    "compile_filter_vector_cols",
    "compile_tuple_vector",
    "vector_source",
]
