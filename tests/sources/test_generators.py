"""Tests for value/row generators."""

import random

import pytest

from repro.sources import (
    GaussianValues,
    RowGenerator,
    UniformValues,
    ZipfValues,
    paper_row_generators,
)


class TestGaussian:
    def test_values_in_domain(self, rng):
        g = GaussianValues(mean=50, std=15, lo=1, hi=100)
        values = [g.draw(rng) for _ in range(2000)]
        assert all(1 <= v <= 100 for v in values)
        assert all(isinstance(v, int) for v in values)

    def test_mean_roughly_right(self, rng):
        g = GaussianValues(mean=30, std=5)
        values = [g.draw(rng) for _ in range(5000)]
        assert sum(values) / len(values) == pytest.approx(30, abs=1.0)

    def test_shifted(self, rng):
        g = GaussianValues(mean=50, std=5)
        s = g.shifted(25)
        assert s.mean == 75
        values = [s.draw(rng) for _ in range(3000)]
        assert sum(values) / len(values) == pytest.approx(75, abs=1.5)

    def test_clamping_at_edges(self, rng):
        g = GaussianValues(mean=0, std=5, lo=1, hi=100)
        values = [g.draw(rng) for _ in range(200)]
        assert min(values) == 1  # heavy clamping at the low edge


class TestUniformAndZipf:
    def test_uniform_covers_domain(self, rng):
        g = UniformValues(1, 10)
        values = {g.draw(rng) for _ in range(2000)}
        assert values == set(range(1, 11))

    def test_zipf_is_skewed(self, rng):
        g = ZipfValues(s=1.5, lo=1, hi=50)
        from collections import Counter

        counts = Counter(g.draw(rng) for _ in range(5000))
        assert counts[1] > counts.get(25, 0) * 3  # rank 1 dominates

    def test_zipf_in_domain(self, rng):
        g = ZipfValues(lo=5, hi=10)
        assert all(5 <= g.draw(rng) <= 10 for _ in range(500))


class TestRowGenerator:
    def test_arity(self, rng):
        g = RowGenerator([UniformValues(1, 5), UniformValues(6, 9)])
        row = g.draw(rng)
        assert len(row) == 2
        assert 1 <= row[0] <= 5 and 6 <= row[1] <= 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RowGenerator([])

    def test_shifted_only_affects_gaussians(self, rng):
        g = RowGenerator([GaussianValues(mean=20, std=1), UniformValues(1, 5)])
        s = g.shifted(30)
        assert s.columns[0].mean == 50
        assert isinstance(s.columns[1], UniformValues)

    def test_paper_generators_shape(self):
        gens = paper_row_generators()
        assert set(gens) == {"R", "S", "T"}
        assert len(gens["S"].columns) == 2
        assert len(gens["R"].columns) == 1
