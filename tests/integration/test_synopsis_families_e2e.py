"""Integration: every synopsis family drives the full pipeline end-to-end.

The Data Triage architecture must be synopsis-agnostic (paper §8.1 plans to
swap synopsis types); this sweep runs the complete overloaded Figure 8
scenario once per family and checks the architecture-level guarantees hold
regardless of estimator.
"""

import random

import pytest

from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import WindowSpec
from repro.quality import run_metric, run_rms, total_relative_error
from repro.sources import SteadyArrival, generate_stream, paper_row_generators
from repro.synopses import (
    CountMinFactory,
    DenseGridFactory,
    EndBiasedFactory,
    MHistFactory,
    ReservoirSampleFactory,
    SparseHistogramFactory,
    WaveletFactory,
)

QUERY = (
    "SELECT a, COUNT(*) AS n FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)

FAMILIES = [
    pytest.param(SparseHistogramFactory(bucket_width=5), id="sparse_hist"),
    pytest.param(MHistFactory(max_buckets=40, grid=5), id="mhist_aligned"),
    pytest.param(DenseGridFactory(bin_width=5), id="dense_grid"),
    pytest.param(ReservoirSampleFactory(capacity=150), id="reservoir"),
    pytest.param(CountMinFactory(width=128), id="cms"),
    pytest.param(WaveletFactory(budget=64), id="wavelet"),
    pytest.param(EndBiasedFactory(k=12), id="end_biased"),
]


def build_streams(seed=7):
    rng = random.Random(seed)
    gens = paper_row_generators()
    return {
        name: generate_stream(400, SteadyArrival(400.0), gens[name], None, rng)
        for name in ("R", "S", "T")
    }


def run_with(paper_catalog, factory, strategy=ShedStrategy.DATA_TRIAGE):
    config = PipelineConfig(
        strategy=strategy,
        window=WindowSpec(width=0.375),  # 150 tuples/window at 400/s
        queue_capacity=40,
        service_time=1 / 400.0,  # 1200/s arrivals vs 400/s: ~2/3 shed
        synopsis_factory=factory,
        seed=1,
    )
    return DataTriagePipeline(paper_catalog, QUERY, config).run(build_streams())


@pytest.mark.parametrize("factory", FAMILIES)
class TestFamilyEndToEnd:
    def test_run_completes_and_sheds(self, paper_catalog, factory):
        result = run_with(paper_catalog, factory)
        assert result.total_dropped > 0
        assert result.windows

    def test_beats_or_matches_drop_only(self, paper_catalog, factory):
        triage = run_rms(run_with(paper_catalog, factory))
        drop = run_rms(
            run_with(paper_catalog, factory, strategy=ShedStrategy.DROP_ONLY)
        )
        # Architecture guarantee: adding estimates on top of the identical
        # kept results must not make things meaningfully worse — and for
        # the data-aware families it must strictly help.
        assert triage <= drop * 1.2

    def test_mass_conservation_of_estimates(self, paper_catalog, factory):
        """The composite answer tracks total result mass far better than
        the kept-only answer does — the estimates conserve the dropped
        mass rather than inventing or losing it."""
        result = run_with(paper_catalog, factory)
        merged_err = run_metric(result, total_relative_error)
        kept_only = sum(
            total_relative_error(w.ideal, w.exact, "n") for w in result.windows
        ) / len(result.windows)
        assert merged_err < kept_only
