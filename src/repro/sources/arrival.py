"""Arrival processes: steady rates and two-state Markov bursts.

Paper Section 6.2.2: *"We used a simple two-state Markov model to determine
which tuples were 'burst' tuples and which were 'non-burst' tuples.
Overall, 60 percent of stream tuples were from a burst, and the expected
burst length was 200 tuples.  Data in bursts arrived 100 times as quickly as
non-burst data."*

The Markov chain runs per tuple: exit probability ``1/E[len]`` from the
burst state, and the entry probability chosen so the stationary burst
fraction matches the target.  Interarrival gaps are the reciprocal of the
state's rate; burst tuples are drawn from a shifted distribution by the
workload builder.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.engine.types import StreamTuple
from repro.sources.generators import RowGenerator


@dataclass(frozen=True)
class Arrival:
    """One scheduled arrival: when, and whether it is burst-mode."""

    timestamp: float
    is_burst: bool


class ArrivalProcess(abc.ABC):
    """Produces the timestamp sequence for one stream."""

    @abc.abstractmethod
    def schedule(self, n: int, rng: random.Random) -> list[Arrival]:
        """Timestamps (ascending from 0) for ``n`` tuples."""

    @property
    @abc.abstractmethod
    def peak_rate(self) -> float:
        """The highest instantaneous rate the process reaches (tuples/sec)."""


@dataclass(frozen=True)
class SteadyArrival(ArrivalProcess):
    """Constant-rate arrivals (Figure 8's workload).

    ``jitter`` perturbs each gap by up to ±jitter fraction, keeping the
    long-run rate exact while avoiding phase-locking artifacts; the paper's
    replay tool used deterministic delays, which ``jitter=0`` reproduces.
    """

    rate: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def schedule(self, n: int, rng: random.Random) -> list[Arrival]:
        gap = 1.0 / self.rate
        out = []
        t = 0.0
        for _ in range(n):
            g = gap
            if self.jitter:
                g *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            t += g
            out.append(Arrival(t, is_burst=False))
        return out

    @property
    def peak_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class MarkovBurstArrival(ArrivalProcess):
    """Two-state (burst / non-burst) Markov arrivals (Figure 9's workload)."""

    base_rate: float
    burst_speedup: float = 100.0
    burst_fraction: float = 0.6
    expected_burst_length: float = 200.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.burst_speedup < 1:
            raise ValueError("burst_speedup must be >= 1")
        if not 0 < self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.expected_burst_length < 1:
            raise ValueError("expected_burst_length must be >= 1")

    @property
    def exit_probability(self) -> float:
        """P(leave burst per tuple) — geometric length with the right mean."""
        return 1.0 / self.expected_burst_length

    @property
    def entry_probability(self) -> float:
        """P(enter burst per tuple), set so the stationary burst share matches.

        For the two-state chain, π_burst = p_enter / (p_enter + p_exit).
        """
        f = self.burst_fraction
        return self.exit_probability * f / (1.0 - f)

    def schedule(self, n: int, rng: random.Random) -> list[Arrival]:
        p_exit, p_enter = self.exit_probability, self.entry_probability
        # Start the chain in its stationary distribution.
        in_burst = rng.random() < self.burst_fraction
        base_gap = 1.0 / self.base_rate
        burst_gap = base_gap / self.burst_speedup
        out = []
        t = 0.0
        for _ in range(n):
            t += burst_gap if in_burst else base_gap
            out.append(Arrival(t, is_burst=in_burst))
            if in_burst:
                if rng.random() < p_exit:
                    in_burst = False
            elif rng.random() < p_enter:
                in_burst = True
        return out

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.burst_speedup

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        f = self.burst_fraction
        mean_gap = f / (self.base_rate * self.burst_speedup) + (1 - f) / self.base_rate
        return 1.0 / mean_gap


@dataclass(frozen=True)
class ParetoBurstArrival(ArrivalProcess):
    """Heavy-tailed on/off arrivals (self-similar traffic).

    The paper motivates bursts with the self-similarity literature (Leland
    et al. [21]; Paxson & Floyd [30]), whose hallmark is *Pareto-distributed*
    on/off period lengths: superpositions of such sources produce burstiness
    at every time scale, unlike the geometrically-bounded bursts of the
    two-state Markov model.  Burst/idle period lengths (in tuples) draw from
    a Pareto distribution with shape ``alpha``; ``alpha <= 2`` gives the
    infinite-variance regime the references describe.
    """

    base_rate: float
    burst_speedup: float = 100.0
    alpha: float = 1.5
    min_burst_length: float = 20.0
    min_idle_length: float = 20.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.burst_speedup < 1:
            raise ValueError("burst_speedup must be >= 1")
        if self.alpha <= 1:
            raise ValueError("alpha must exceed 1 (finite mean periods)")
        if self.min_burst_length < 1 or self.min_idle_length < 1:
            raise ValueError("minimum period lengths must be >= 1")

    def _pareto_length(self, rng: random.Random, minimum: float) -> int:
        # Inverse-CDF: X = x_m / U^(1/alpha).
        u = rng.random() or 1e-12
        return max(1, int(minimum / (u ** (1.0 / self.alpha))))

    def schedule(self, n: int, rng: random.Random) -> list[Arrival]:
        base_gap = 1.0 / self.base_rate
        burst_gap = base_gap / self.burst_speedup
        out: list[Arrival] = []
        t = 0.0
        in_burst = rng.random() < 0.5
        remaining = self._pareto_length(
            rng, self.min_burst_length if in_burst else self.min_idle_length
        )
        while len(out) < n:
            t += burst_gap if in_burst else base_gap
            out.append(Arrival(t, is_burst=in_burst))
            remaining -= 1
            if remaining <= 0:
                in_burst = not in_burst
                remaining = self._pareto_length(
                    rng,
                    self.min_burst_length if in_burst else self.min_idle_length,
                )
        return out

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.burst_speedup

    @property
    def mean_period_lengths(self) -> tuple[float, float]:
        """Expected (burst, idle) lengths in tuples: x_m · α / (α − 1)."""
        factor = self.alpha / (self.alpha - 1.0)
        return (self.min_burst_length * factor, self.min_idle_length * factor)


def generate_stream(
    n: int,
    arrival: ArrivalProcess,
    normal_rows: RowGenerator,
    burst_rows: RowGenerator | None,
    rng: random.Random,
) -> list[StreamTuple]:
    """Materialize one stream: schedule arrivals, draw each tuple's values.

    Burst arrivals draw from ``burst_rows`` (Section 6.2.2's independent
    distribution); pass ``None`` to use the normal distribution throughout.
    """
    out = []
    for a in arrival.schedule(n, rng):
        gen = burst_rows if (a.is_burst and burst_rows is not None) else normal_rows
        out.append(StreamTuple(a.timestamp, gen.draw(rng)))
    return out
