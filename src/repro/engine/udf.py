"""Object-relational extensibility: user-defined types and functions.

Paper Section 5.1: *"we first use the object-relational facilities of our
query processor to define datatypes for our synopsis data structures ... We
also create user-defined functions to perform various kinds of relational
algebra operations on these synopsis data structures."*

This registry is that facility.  The synopsis subpackage registers a
``Synopsis`` UDT plus ``project`` / ``union_all`` / ``equijoin`` / ``total``
UDFs (see :func:`repro.synopses.register_synopsis_udfs`), after which shadow
queries referencing those functions run inside the ordinary query engine —
Data Triage never touches the engine core.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


class UDFError(KeyError):
    """Raised when resolving an unregistered function or type."""


@dataclass(frozen=True)
class FunctionSignature:
    """Declared signature of a UDF (informational, used by EXPLAIN/sqlgen)."""

    name: str
    arg_types: tuple[str, ...]
    return_type: str

    def to_sql(self) -> str:
        """Render as a ``CREATE FUNCTION`` statement (PostgreSQL style)."""
        args = ", ".join(self.arg_types)
        return (
            f"CREATE FUNCTION {self.name}({args}) RETURNS {self.return_type} AS ...;"
        )


@dataclass
class UDFRegistry:
    """Mutable registry of user-defined functions and types.

    Function names are case-insensitive.  The registry doubles as the
    ``functions`` mapping consumed by
    :meth:`repro.engine.expressions.Expression.bind`.
    """

    _functions: dict[str, Callable] = field(default_factory=dict)
    _signatures: dict[str, FunctionSignature] = field(default_factory=dict)
    _types: dict[str, type] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def register_function(
        self,
        name: str,
        fn: Callable,
        arg_types: tuple[str, ...] = (),
        return_type: str = "synopsis",
        replace: bool = False,
    ) -> None:
        key = name.lower()
        if key in self._functions and not replace:
            raise UDFError(f"function {name!r} already registered")
        self._functions[key] = fn
        self._signatures[key] = FunctionSignature(key, arg_types, return_type)

    def function(self, name: str) -> Callable:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise UDFError(f"no function {name!r} registered") from None

    def signature(self, name: str) -> FunctionSignature:
        try:
            return self._signatures[name.lower()]
        except KeyError:
            raise UDFError(f"no function {name!r} registered") from None

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    # The expression binder expects a plain mapping.
    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def __getitem__(self, name: str) -> Callable:
        return self.function(name)

    def as_mapping(self) -> dict[str, Callable]:
        return dict(self._functions)

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def register_type(self, name: str, cls: type, replace: bool = False) -> None:
        key = name.lower()
        if key in self._types and not replace:
            raise UDFError(f"type {name!r} already registered")
        self._types[key] = cls

    def type(self, name: str) -> type:
        try:
            return self._types[name.lower()]
        except KeyError:
            raise UDFError(f"no type {name!r} registered") from None

    def has_type(self, name: str) -> bool:
        return name.lower() in self._types

    def ddl(self) -> list[str]:
        """CREATE FUNCTION statements for everything registered (for docs/tests)."""
        return [sig.to_sql() for sig in self._signatures.values()]
