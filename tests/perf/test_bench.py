"""The bench harness: stable schema, sane math, real suites runnable."""

from __future__ import annotations

import io
import json

import pytest

from repro.perf import bench

REQUIRED_SUITE_FIELDS = {
    "ops_per_sec",
    "p50_ms",
    "p95_ms",
    "reps",
    "units_per_rep",
    "unit",
}


class TestTimeSuite:
    def test_fields_and_math(self):
        r = bench._time_suite(lambda: None, reps=5, units_per_rep=100, unit="ops")
        assert set(r) == REQUIRED_SUITE_FIELDS
        assert r["reps"] == 5
        assert r["units_per_rep"] == 100
        assert r["unit"] == "ops"
        assert r["p50_ms"] <= r["p95_ms"]
        assert r["ops_per_sec"] is None or r["ops_per_sec"] > 0


class TestRunBenchSuites:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suites"):
            bench.run_bench_suites(suites=["no-such-suite"])

    def test_document_schema(self, monkeypatch, tmp_path):
        monkeypatch.setitem(
            bench.SUITES,
            "fake",
            lambda quick: bench._time_suite(lambda: None, 3, 10, "ops"),
        )
        doc = bench.run_bench_suites(quick=True, suites=["fake"])
        assert doc["schema"] == bench.BENCH_SCHEMA == "repro-bench/v1"
        assert doc["quick"] is True
        assert isinstance(doc["git_rev"], str) and doc["git_rev"]
        assert set(doc["suites"]) == {"fake"}
        assert set(doc["suites"]["fake"]) == REQUIRED_SUITE_FIELDS

        path = bench.write_results(doc, tmp_path / "BENCH_pipeline.json")
        assert json.loads(path.read_text()) == doc
        text = bench.render_text(doc)
        assert "repro-bench/v1" in text
        assert "fake" in text

    def test_real_suite_quick(self):
        # The cheapest real suite end to end, to keep the harness honest.
        doc = bench.run_bench_suites(quick=True, suites=["synopsis_join"])
        r = doc["suites"]["synopsis_join"]
        assert set(r) == REQUIRED_SUITE_FIELDS
        assert r["ops_per_sec"] > 0
        assert r["unit"] == "evaluations"

    def test_traced_suite_registered_alongside_plain(self):
        # The overhead comparison needs both suites under their stable names.
        assert "pipeline_fig9_bursty" in bench.SUITES
        assert "pipeline_fig9_traced" in bench.SUITES

    def test_sharded_and_union_suites_registered(self):
        assert "service_ingest_shards2" in bench.SUITES
        assert "service_ingest_shards4" in bench.SUITES
        assert "synopsis_union" in bench.SUITES

    def test_synopsis_union_quick(self):
        doc = bench.run_bench_suites(quick=True, suites=["synopsis_union"])
        r = doc["suites"]["synopsis_union"]
        assert r["ops_per_sec"] > 0
        assert r["unit"] == "unions"


def _doc(**ops):
    return {
        "schema": bench.BENCH_SCHEMA,
        "suites": {
            name: {"ops_per_sec": value} for name, value in ops.items()
        },
    }


class TestCompareResults:
    def test_within_threshold_passes(self):
        violations = bench.compare_results(
            _doc(a=95.0, b=200.0), _doc(a=100.0, b=100.0), 10.0
        )
        assert violations == []

    def test_regression_reported(self):
        violations = bench.compare_results(
            _doc(a=80.0), _doc(a=100.0), 10.0
        )
        assert len(violations) == 1
        assert "a" in violations[0]

    def test_only_shared_suites_compared(self):
        violations = bench.compare_results(
            _doc(a=100.0), _doc(b=100.0), 10.0
        )
        assert violations == []


class TestBaselineMismatch:
    def test_matching_baseline_passes(self):
        assert bench.baseline_mismatch(_doc(a=1.0), _doc(a=2.0)) is None

    def test_schema_mismatch_reported(self):
        stale = dict(_doc(a=1.0), schema="repro-bench/v0")
        problem = bench.baseline_mismatch(_doc(a=1.0), stale)
        assert problem is not None and "repro-bench/v0" in problem
        assert "\n" not in problem

    def test_missing_schema_reported(self):
        baseline = _doc(a=1.0)
        del baseline["schema"]
        assert bench.baseline_mismatch(_doc(a=1.0), baseline) is not None

    def test_added_suite_tolerated(self):
        # A baseline predating a newly added suite still gates the shared
        # ones; the new suite is merely reported as skipped.
        doc = _doc(a=1.0, b=1.0)
        assert bench.baseline_mismatch(doc, _doc(b=2.0)) is None
        assert bench.baseline_skipped(doc, _doc(b=2.0)) == ["a"]

    def test_no_shared_suites_reported(self):
        problem = bench.baseline_mismatch(_doc(a=1.0), _doc(z=1.0))
        assert problem is not None and "no suites" in problem
        assert "\n" not in problem

    def test_empty_baseline_reported(self):
        assert bench.baseline_mismatch(_doc(a=1.0), _doc()) is not None

    def test_skipped_empty_when_baseline_covers_all(self):
        assert bench.baseline_skipped(_doc(a=1.0), _doc(a=2.0, b=1.0)) == []


class TestShardMetricsSnapshot:
    def test_snapshot_renders_shard_gauges(self):
        text = bench.shard_metrics_snapshot()
        assert "shard_queue_depth" in text
        assert "shard_windows_merged_total" in text
        assert "shard_merge_seconds" in text
        # The cycle runs audited, so the audit counter family rides along.
        assert "audit_events_total" in text
        assert "audit_windows_attributed_total" in text


class TestLazyExports:
    def test_perf_package_reexports(self):
        import repro.perf as perf

        assert perf.BENCH_SCHEMA == "repro-bench/v1"
        assert perf.run_bench_suites is bench.run_bench_suites
        with pytest.raises(AttributeError):
            perf.does_not_exist


class TestCli:
    def test_bench_quick_writes_results(self, monkeypatch, tmp_path):
        from repro import cli

        monkeypatch.setitem(
            bench.SUITES,
            "fake",
            lambda quick: bench._time_suite(lambda: None, 3, 10, "ops"),
        )
        out_path = tmp_path / "BENCH_pipeline.json"
        out = io.StringIO()
        rc = cli.main(
            ["bench", "--quick", "--suite", "fake", "--out", str(out_path)],
            out=out,
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro-bench/v1"
        assert set(doc["suites"]) == {"fake"}
        assert "results written to" in out.getvalue()

    def test_bench_compare_gate_fails_on_regression(self, monkeypatch, tmp_path):
        from repro import cli

        monkeypatch.setitem(
            bench.SUITES,
            "fake",
            lambda quick: dict(
                bench._time_suite(lambda: None, 3, 10, "ops"),
                ops_per_sec=50.0,
            ),
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(fake=100.0)))
        out = io.StringIO()
        rc = cli.main(
            [
                "bench", "--quick", "--suite", "fake",
                "--out", str(tmp_path / "new.json"),
                "--compare", str(baseline),
            ],
            out=out,
        )
        assert rc == 1
        assert "regression gate FAILED" in out.getvalue()

    def _run_compare(self, monkeypatch, tmp_path, baseline_path):
        from repro import cli

        monkeypatch.setitem(
            bench.SUITES,
            "fake",
            lambda quick: bench._time_suite(lambda: None, 3, 10, "ops"),
        )
        out = io.StringIO()
        rc = cli.main(
            [
                "bench", "--quick", "--suite", "fake",
                "--out", str(tmp_path / "new.json"),
                "--compare", str(baseline_path),
            ],
            out=out,
        )
        return rc, out.getvalue()

    def test_bench_compare_missing_baseline(self, monkeypatch, tmp_path):
        rc, text = self._run_compare(
            monkeypatch, tmp_path, tmp_path / "no-such-baseline.json"
        )
        assert rc == 2
        (line,) = [
            ln for ln in text.splitlines() if ln.startswith("bench compare error:")
        ]
        assert "cannot read baseline" in line

    def test_bench_compare_invalid_json(self, monkeypatch, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        rc, text = self._run_compare(monkeypatch, tmp_path, baseline)
        assert rc == 2
        assert "bench compare error:" in text
        assert "not valid JSON" in text

    def test_bench_compare_schema_mismatch(self, monkeypatch, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(dict(_doc(fake=100.0), schema="repro-bench/v0"))
        )
        rc, text = self._run_compare(monkeypatch, tmp_path, baseline)
        assert rc == 2
        assert "bench compare error:" in text
        assert "repro bench" in text  # tells the user how to regenerate

    def test_bench_compare_baseline_no_overlap(self, monkeypatch, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(other=100.0)))
        rc, text = self._run_compare(monkeypatch, tmp_path, baseline)
        assert rc == 2
        assert "bench compare error:" in text
        assert "no suites" in text

    def test_bench_compare_added_suite_noted_not_fatal(
        self, monkeypatch, tmp_path
    ):
        # The baseline covers "fake" but predates "fresh": the gate still
        # passes, and the skipped suite is called out as a note.
        monkeypatch.setitem(
            bench.SUITES,
            "fresh",
            lambda quick: bench._time_suite(lambda: None, 3, 10, "ops"),
        )
        monkeypatch.setitem(
            bench.SUITES,
            "fake",
            lambda quick: bench._time_suite(lambda: None, 3, 10, "ops"),
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(fake=0.000001)))
        from repro import cli

        out = io.StringIO()
        rc = cli.main(
            [
                "bench", "--quick", "--suite", "fake", "--suite", "fresh",
                "--out", str(tmp_path / "new.json"),
                "--compare", str(baseline),
            ],
            out=out,
        )
        text = out.getvalue()
        assert rc == 0
        assert "bench compare note:" in text and "fresh" in text
        assert "regression gate passed" in text

    def test_new_columnar_suites_registered(self):
        assert "columnar_ingest" in bench.SUITES
        assert "executor_vectorized" in bench.SUITES

    def test_audited_suite_registered(self):
        assert "pipeline_fig9_audited" in bench.SUITES
