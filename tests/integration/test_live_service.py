"""Acceptance test: a bursty publisher drives the real, live service.

This is the ISSUE's end-to-end criterion run against a genuinely live
server — background ticker on, wall-clock windows, real TCP sockets:

* the server never buffers unboundedly (queue high-watermark stays at the
  configured capacity),
* evicted tuples land in synopses (drops == summarized, and the estimated
  part of each composite answer carries their mass),
* every closed window delivers a merged exact+approximate result to
  subscribers, and
* the Prometheus export reports nonzero ``triage_drops_total`` along with
  queue-depth and window-latency histograms.
"""

import asyncio

from repro.core.strategies import PipelineConfig
from repro.engine.window import WindowSpec
from repro.experiments import paper_catalog
from repro.service import ServiceConfig, TriageClient, TriageServer

QUERY = "SELECT a, COUNT(*) AS n FROM R GROUP BY a;"

WINDOW = 0.25  # seconds, wall clock
CAPACITY = 20
SERVICE_TIME = 0.005  # engine keeps up with 200 tuples/s; we send far more


def test_bursty_publisher_past_capacity_live():
    async def scenario():
        config = PipelineConfig(
            window=WindowSpec(width=WINDOW),
            queue_capacity=CAPACITY,
            service_time=SERVICE_TIME,
            compute_ideal=False,
        )
        service = ServiceConfig(tick_interval=0.02)
        server = TriageServer(paper_catalog(), QUERY, config, service)
        await server.start()
        results = []
        try:
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="burst"
            )
            await client.declare("R")
            await client.subscribe()

            # Burst far past capacity for ~3 windows: 300-row batches
            # (values 1..5) every ~25 ms, arrival-stamped by the server.
            published = 0
            for _ in range(30):
                ack = await client.publish(
                    "R", [[1 + (i % 5)] for i in range(300)]
                )
                published += ack["accepted"]
                # Application-level backpressure signal: depth is bounded.
                assert ack["queue_depth"] <= CAPACITY
                await asyncio.sleep(0.025)

            # Collect every window the burst produced.
            deadline = asyncio.get_running_loop().time() + 10.0
            while asyncio.get_running_loop().time() < deadline:
                try:
                    result = await client.next_result(timeout=1.0)
                except asyncio.TimeoutError:
                    break
                if result is None:
                    break
                results.append(result)
                if sum(r["arrived"]["R"] for r in results) >= published:
                    break

            # Every closed window came back as a merged composite result.
            assert len(results) >= 2
            windows = [r["window"] for r in results]
            assert windows == sorted(windows)
            assert sum(r["arrived"]["R"] for r in results) == published
            overloaded = [r for r in results if r["dropped"]["R"] > 0]
            assert overloaded, "burst never exceeded capacity?"
            for r in results:
                assert r["kept"]["R"] + r["dropped"]["R"] == r["arrived"]["R"]
                assert r["groups"], "a window result with no groups"
                merged = sum(g["aggs"]["n"] for g in r["groups"])
                assert abs(merged - r["arrived"]["R"]) / r["arrived"]["R"] < 0.25
            for r in overloaded:
                est = sum(
                    g["estimated"]["n"] for g in r["groups"] if g["estimated"]
                )
                assert est > 0, "shed tuples left no estimated mass"

            # Bounded buffering, shed-to-synopsis accounting.
            stats = server.queues["R"].stats
            assert stats.high_watermark <= CAPACITY
            assert stats.dropped > 0
            drops = server.metrics.get("triage_drops_total")
            summarized = server.metrics.get("triage_summarized_total")
            assert drops.value(stream="R") == stats.dropped
            assert summarized.value(stream="R") == stats.dropped

            # Telemetry: Prometheus export with the required series.
            reply = await client.stats(format="prometheus")
            text = reply["prometheus"]
            assert "# TYPE triage_drops_total counter" in text
            drop_lines = [
                line
                for line in text.splitlines()
                if line.startswith('triage_drops_total{stream="R"}')
            ]
            assert drop_lines and float(drop_lines[0].split()[-1]) > 0
            assert "# TYPE triage_queue_depth histogram" in text
            assert 'triage_queue_depth_bucket{stream="R",le="+Inf"}' in text
            assert "# TYPE window_latency_seconds histogram" in text
            assert 'window_latency_seconds_bucket{le="+Inf"}' in text

            await client.close()
        finally:
            await server.shutdown()

    asyncio.run(scenario())
