"""Tests for trace record/replay."""

import io

import pytest

from repro.engine import StreamTuple
from repro.sources import (
    TraceError,
    dump_trace,
    load_trace,
    load_trace_file,
    rescale_trace,
    save_trace_file,
)

TUPLES = [
    StreamTuple(0.5, (1, 2)),
    StreamTuple(1.25, (3, 4)),
    StreamTuple(2.0, (5, 6)),
]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buf = io.StringIO()
        n = dump_trace(TUPLES, buf)
        assert n == 3
        buf.seek(0)
        assert load_trace(buf) == TUPLES

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "r.trace"
        save_trace_file(TUPLES, path)
        assert load_trace_file(path) == TUPLES

    def test_string_values(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, ("hello", 2))], buf)
        buf.seek(0)
        (out,) = load_trace(buf)
        assert out.row == ("hello", 2)

    def test_float_values(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, (2.5,))], buf)
        buf.seek(0)
        assert load_trace(buf)[0].row == (2.5,)

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0.5\t1,2\n"
        out = load_trace(io.StringIO(text))
        assert out == [StreamTuple(0.5, (1, 2))]

    def test_malformed_line(self):
        with pytest.raises(TraceError, match="malformed"):
            load_trace(io.StringIO("not a trace line\n"))


class TestRescale:
    def test_compresses_timeline(self):
        fast = rescale_trace(TUPLES, 2.0)
        assert fast[0].timestamp == pytest.approx(0.25)
        assert fast[-1].timestamp == pytest.approx(1.0)
        assert [t.row for t in fast] == [t.row for t in TUPLES]

    def test_slows_timeline(self):
        slow = rescale_trace(TUPLES, 0.5)
        assert slow[-1].timestamp == pytest.approx(4.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            rescale_trace(TUPLES, 0)
