"""Dashboard rendering: sparklines, telemetry/stats ingestion, ANSI control."""

import json

from repro.obs.top import SPARK_CHARS, Dashboard, render_payloads, sparkline


def telemetry_payload(seq=1, now=2.0, **overrides):
    payload = {
        "type": "TELEMETRY",
        "seq": seq,
        "now": now,
        "interval": 1.0,
        "metrics": {'triage_drops_total{stream="R"}': 5.0},
        "reports": [
            {
                "window": 0,
                "result_latency": 0.5,
                "rms_error": 0.25,
                "arrived": 100,
                "dropped": 40,
            }
        ],
        "alerts": [],
        "firing": [],
        "slo": {
            "shed_ratio": {
                "burn_fast": 0.0,
                "burn_slow": 0.0,
                "budget_remaining": 1.0,
                "firing": False,
            }
        },
        "summary": {
            "queue_depth": 3,
            "queue_capacity": 10,
            "sessions": 1,
            "windows_closed": 1,
            "tuples_arrived": 100,
            "tuples_shed": 40,
        },
    }
    payload.update(overrides)
    return payload


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_min_and_max_hit_the_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert len(line) == 4

    def test_only_the_last_width_values_render(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_monotone_series_is_nondecreasing(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        ranks = [SPARK_CHARS.index(c) for c in line]
        assert ranks == sorted(ranks)


class TestDashboardFeed:
    def test_telemetry_payload_populates_state(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload())
        assert dash.frames == 1
        assert dash.now == 2.0
        assert dash.summary["queue_depth"] == 3
        assert list(dash.depth) == [3.0]
        assert list(dash.latency) == [0.5]
        assert list(dash.error) == [0.25]
        assert list(dash.shed) == [0.4]
        assert dash.firing == []
        assert "shed_ratio" in dash.slo

    def test_metric_deltas_accumulate(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload(seq=1))
        dash.feed(telemetry_payload(seq=2))
        assert dash.counters['triage_drops_total{stream="R"}'] == 10.0

    def test_alerts_append_to_log_and_firing_set(self):
        dash = Dashboard(color=False)
        alert = {"slo": "shed_ratio", "state": "firing", "at": 2.0}
        dash.feed(
            telemetry_payload(alerts=[alert], firing=["shed_ratio"])
        )
        assert list(dash.alerts_log) == [alert]
        assert dash.firing == ["shed_ratio"]
        # A later frame with no firing alerts clears the set.
        dash.feed(telemetry_payload(seq=2))
        assert dash.firing == []

    def test_history_is_bounded(self):
        dash = Dashboard(history=4, color=False)
        for seq in range(10):
            dash.feed(telemetry_payload(seq=seq))
        assert len(dash.latency) == 4
        assert len(dash.depth) == 4

    def test_feed_stats_uses_summary_and_reports(self):
        dash = Dashboard(color=False)
        dash.feed_stats(
            {
                "summary": {
                    "queue_depth": 7,
                    "queue_capacity": 10,
                    "slo": {
                        "window_staleness": {"firing": True},
                        "shed_ratio": {"firing": False},
                    },
                },
                "window_reports": [
                    {"result_latency": 1.5, "arrived": 10, "dropped": 0}
                ],
            }
        )
        assert list(dash.depth) == [7.0]
        assert list(dash.latency) == [1.5]
        assert dash.firing == ["window_staleness"]


def pattern_summary(**extra):
    summary = {
        "queue_depth": 3,
        "queue_capacity": 10,
        "pattern": {
            "streams": ["A", "B", "C"],
            "active_runs": 4,
            "runs_started": 9,
            "runs_expired": 2,
            "runs_shed": 1,
            "events": 120,
            "matches": 5,
        },
    }
    summary["pattern"].update(extra)
    return summary


class TestCepPanel:
    def test_pattern_block_populates_series(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload(summary=pattern_summary()))
        dash.feed(
            telemetry_payload(
                seq=2, summary=pattern_summary(active_runs=6, matches=9)
            )
        )
        assert list(dash.cep_runs) == [4.0, 6.0]
        # Match rate is a per-frame delta; the first frame has no baseline.
        assert list(dash.cep_rate) == [4.0]

    def test_match_rate_never_negative_after_restart(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload(summary=pattern_summary(matches=50)))
        dash.feed(telemetry_payload(seq=2, summary=pattern_summary(matches=3)))
        assert list(dash.cep_rate) == [0.0]

    def test_panel_renders_when_pattern_attached(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload(summary=pattern_summary()))
        screen = dash.render()
        assert "cep  SEQ(A,B,C)" in screen
        assert "active runs=4" in screen
        assert "evicted=1" in screen
        assert "matches=5" in screen

    def test_panel_absent_without_pattern(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload())
        assert "cep" not in dash.render()

    def test_feed_stats_also_feeds_pattern(self):
        dash = Dashboard(color=False)
        dash.feed_stats({"summary": pattern_summary()})
        assert list(dash.cep_runs) == [4.0]
        assert "cep  SEQ(A,B,C)" in dash.render()


class TestRender:
    def test_render_without_color_has_no_escape_codes(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload())
        screen = dash.render()
        assert "\x1b" not in screen
        assert "repro top" in screen
        assert "queue 3/10" in screen
        assert "no alerts firing" in screen
        assert "shed_ratio" in screen

    def test_render_with_color_uses_and_resets_ansi(self):
        dash = Dashboard(color=True)
        dash.feed(telemetry_payload(firing=["shed_ratio"]))
        screen = dash.render()
        assert "\x1b[" in screen
        # Every opened attribute run is closed before the line ends.
        for line in screen.splitlines():
            if "\x1b[" in line:
                assert line.rstrip().endswith("\x1b[0m") or "\x1b[0m" in line

    def test_firing_alert_is_called_out(self):
        dash = Dashboard(color=False)
        dash.feed(telemetry_payload(firing=["shed_ratio"]))
        assert "ALERTS FIRING: shed_ratio" in dash.render()

    def test_empty_dashboard_renders_placeholder(self):
        screen = Dashboard(color=False).render()
        assert "waiting for telemetry" in screen

    def test_render_payloads_accepts_json_strings(self):
        screen = render_payloads(
            [json.dumps(telemetry_payload()), telemetry_payload(seq=2)]
        )
        assert "\x1b" not in screen
        assert "frames=2" in screen
