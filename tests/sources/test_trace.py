"""Tests for trace record/replay."""

import io
import random

import pytest

from repro.engine import StreamTuple
from repro.sources import (
    TraceError,
    dump_trace,
    load_trace,
    load_trace_file,
    rescale_trace,
    save_trace_file,
)

TUPLES = [
    StreamTuple(0.5, (1, 2)),
    StreamTuple(1.25, (3, 4)),
    StreamTuple(2.0, (5, 6)),
]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        buf = io.StringIO()
        n = dump_trace(TUPLES, buf)
        assert n == 3
        buf.seek(0)
        assert load_trace(buf) == TUPLES

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "r.trace"
        save_trace_file(TUPLES, path)
        assert load_trace_file(path) == TUPLES

    def test_string_values(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, ("hello", 2))], buf)
        buf.seek(0)
        (out,) = load_trace(buf)
        assert out.row == ("hello", 2)

    def test_float_values(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, (2.5,))], buf)
        buf.seek(0)
        assert load_trace(buf)[0].row == (2.5,)

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0.5\t1,2\n"
        out = load_trace(io.StringIO(text))
        assert out == [StreamTuple(0.5, (1, 2))]

    def test_malformed_line(self):
        with pytest.raises(TraceError, match="malformed"):
            load_trace(io.StringIO("not a trace line\n"))

    def test_null_roundtrip(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, (None, 1, None))], buf)
        buf.seek(0)
        assert load_trace(buf)[0].row == (None, 1, None)

    def test_bool_roundtrip(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, (True, False))], buf)
        buf.seek(0)
        assert load_trace(buf)[0].row == (True, False)

    def test_empty_stream_roundtrip(self):
        buf = io.StringIO()
        assert dump_trace([], buf) == 0
        buf.seek(0)
        assert load_trace(buf) == []

    def test_empty_row_roundtrip(self):
        buf = io.StringIO()
        dump_trace([StreamTuple(0.1, ())], buf)
        buf.seek(0)
        assert load_trace(buf)[0].row == ()

    def test_awkward_strings_roundtrip(self):
        rows = [
            ("",),
            ("it's",),
            ("a,b",),
            ("line\nbreak", "tab\there"),
            ("quote'comma',mix",),
            ("back\\slash", "NULL"),  # the *string* NULL stays a string
        ]
        for row in rows:
            buf = io.StringIO()
            dump_trace([StreamTuple(0.1, row)], buf)
            buf.seek(0)
            assert load_trace(buf)[0].row == row

    def test_legacy_double_quoted_string(self):
        # Old traces wrote strings via repr(); one with an apostrophe came
        # out double-quoted.  Loading must keep accepting that spelling.
        out = load_trace(io.StringIO('0.5\t"it\'s",7\n'))
        assert out[0].row == ("it's", 7)

    def test_unterminated_quote_is_malformed(self):
        with pytest.raises(TraceError, match="malformed"):
            load_trace(io.StringIO("1.0\t'unterminated\n"))

    def test_bare_garbage_is_malformed(self):
        with pytest.raises(TraceError, match="malformed"):
            load_trace(io.StringIO("1.0\tnot_a_literal\n"))

    def test_unsupported_value_type(self):
        with pytest.raises(TraceError, match="unsupported"):
            dump_trace([StreamTuple(0.1, ((1, 2),))], io.StringIO())

    def test_fuzz_roundtrip(self):
        rng = random.Random(1234)
        charset = "ab',\"\\\n\t\r xyzNULL0"

        def value():
            kind = rng.randrange(6)
            if kind == 0:
                return None
            if kind == 1:
                return rng.choice([True, False])
            if kind == 2:
                return rng.randint(-10**9, 10**9)
            if kind == 3:
                return rng.random() * 1e6 - 5e5
            return "".join(
                rng.choice(charset) for _ in range(rng.randrange(10))
            )

        for _ in range(200):
            tuples = [
                StreamTuple(
                    rng.random() * 100,
                    tuple(value() for _ in range(rng.randrange(5))),
                )
                for _ in range(rng.randrange(6))
            ]
            buf = io.StringIO()
            dump_trace(tuples, buf)
            buf.seek(0)
            assert load_trace(buf) == tuples


class TestRescale:
    def test_compresses_timeline(self):
        fast = rescale_trace(TUPLES, 2.0)
        assert fast[0].timestamp == pytest.approx(0.25)
        assert fast[-1].timestamp == pytest.approx(1.0)
        assert [t.row for t in fast] == [t.row for t in TUPLES]

    def test_slows_timeline(self):
        slow = rescale_trace(TUPLES, 0.5)
        assert slow[-1].timestamp == pytest.approx(4.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            rescale_trace(TUPLES, 0)
