"""Unit tests for the Multiset bag-relation type."""

import pytest

from repro.algebra import Multiset


class TestConstruction:
    def test_empty(self):
        m = Multiset()
        assert len(m) == 0
        assert not m
        assert m.support() == set()

    def test_from_iterable_counts_duplicates(self):
        m = Multiset([(1,), (2,), (1,)])
        assert len(m) == 3
        assert m.multiplicity((1,)) == 2
        assert m.multiplicity((2,)) == 1

    def test_from_counts(self):
        m = Multiset.from_counts({(1,): 3, (2,): 0})
        assert m.multiplicity((1,)) == 3
        assert (2,) not in m  # zero entries elided

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError, match="negative multiplicity"):
            Multiset.from_counts({(1,): -1})

    def test_copy_is_independent(self):
        a = Multiset([(1,)])
        b = a.copy()
        b.add((2,))
        assert (2,) not in a
        assert (2,) in b


class TestMutation:
    def test_add_multiple(self):
        m = Multiset()
        m.add((1,), 5)
        assert m.multiplicity((1,)) == 5

    def test_add_zero_is_noop(self):
        m = Multiset()
        m.add((1,), 0)
        assert (1,) not in m

    def test_add_negative_rejected(self):
        m = Multiset()
        with pytest.raises(ValueError):
            m.add((1,), -2)

    def test_discard_partial(self):
        m = Multiset([(1,), (1,), (1,)])
        removed = m.discard((1,), 2)
        assert removed == 2
        assert m.multiplicity((1,)) == 1

    def test_discard_more_than_present(self):
        m = Multiset([(1,)])
        removed = m.discard((1,), 5)
        assert removed == 1
        assert (1,) not in m

    def test_discard_absent(self):
        m = Multiset()
        assert m.discard((9,)) == 0


class TestBagAlgebra:
    def test_union_adds_multiplicities(self):
        a = Multiset([(1,), (1,)])
        b = Multiset([(1,), (2,)])
        c = a + b
        assert c.multiplicity((1,)) == 3
        assert c.multiplicity((2,)) == 1

    def test_difference_is_monus(self):
        a = Multiset([(1,), (1,), (2,)])
        b = Multiset([(1,), (1,), (1,), (3,)])
        c = a - b
        assert c.multiplicity((1,)) == 0
        assert c.multiplicity((2,)) == 1
        assert (3,) not in c  # never negative

    def test_intersection_takes_min(self):
        a = Multiset([(1,)] * 3 + [(2,)])
        b = Multiset([(1,)] * 2 + [(3,)])
        c = a & b
        assert c.multiplicity((1,)) == 2
        assert (2,) not in c and (3,) not in c

    def test_union_difference_inverse_when_disjoint_excess(self):
        a = Multiset([(1,), (2,)])
        b = Multiset([(3,)])
        assert (a + b) - b == a

    def test_operands_unchanged(self):
        a = Multiset([(1,)])
        b = Multiset([(1,)])
        _ = a + b
        _ = a - b
        _ = a & b
        assert len(a) == 1 and len(b) == 1


class TestInspection:
    def test_iteration_yields_each_copy(self):
        m = Multiset([(1,), (1,), (2,)])
        assert sorted(m) == [(1,), (1,), (2,)]

    def test_items_pairs(self):
        m = Multiset([(1,), (1,)])
        assert dict(m.items()) == {(1,): 2}

    def test_counts_is_a_copy(self):
        m = Multiset([(1,)])
        c = m.counts()
        c[(1,)] = 99
        assert m.multiplicity((1,)) == 1

    def test_equality_canonical(self):
        a = Multiset([(1,), (2,)])
        b = Multiset([(2,), (1,)])
        assert a == b

    def test_equality_respects_multiplicity(self):
        assert Multiset([(1,)]) != Multiset([(1,), (1,)])

    def test_eq_other_type(self):
        assert Multiset() != 42

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Multiset())

    def test_repr_mentions_sizes(self):
        m = Multiset([(1,), (1,)])
        assert "2" in repr(m) and "1" in repr(m)
