"""Tests for the end-to-end virtual-clock pipeline."""

import random

import pytest

from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import StreamTuple, WindowSpec
from repro.quality import run_rms
from repro.sources import SteadyArrival, generate_stream, paper_row_generators

QUERY = (
    "SELECT a, COUNT(*) AS n FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)


def build_streams(rate_per_stream, n, seed=7):
    rng = random.Random(seed)
    gens = paper_row_generators()
    return {
        name: generate_stream(
            n, SteadyArrival(rate_per_stream), gens[name], None, rng
        )
        for name in ("R", "S", "T")
    }


def make_pipeline(catalog, strategy, service_time=1 / 300.0, capacity=30, seed=1,
                  window_width=1.0):
    config = PipelineConfig(
        strategy=strategy,
        window=WindowSpec(width=window_width),
        queue_capacity=capacity,
        service_time=service_time,
        seed=seed,
    )
    return DataTriagePipeline(catalog, QUERY, config)


class TestUnderload:
    """Below engine capacity nothing is shed and results are exact."""

    @pytest.mark.parametrize(
        "strategy", [ShedStrategy.DATA_TRIAGE, ShedStrategy.DROP_ONLY]
    )
    def test_no_drops_and_zero_error(self, paper_catalog, strategy):
        streams = build_streams(rate_per_stream=30, n=90)  # 90/s << 300/s
        pipe = make_pipeline(paper_catalog, strategy)
        result = pipe.run(streams)
        assert result.total_dropped == 0
        assert run_rms(result) == pytest.approx(0.0)
        for w in result.windows:
            assert w.merged == w.ideal

    def test_summarize_only_sheds_everything(self, paper_catalog):
        streams = build_streams(rate_per_stream=30, n=90)
        result = make_pipeline(
            paper_catalog, ShedStrategy.SUMMARIZE_ONLY
        ).run(streams)
        assert result.total_kept == 0
        assert result.drop_fraction == 1.0
        assert run_rms(result) > 0  # synopses are lossy even at low rate


class TestOverload:
    def test_conservation_kept_plus_dropped(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=400)  # 1200/s >> 300/s
        result = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        assert result.total_kept + result.total_dropped == result.total_arrived
        assert result.total_dropped > 0
        for w in result.windows:
            for s in ("R", "S", "T"):
                # Per-window accounting can shift at boundaries (backlogged
                # tuples process late but stay in their window), so compare
                # totals per stream instead.
                pass
        per_stream_arrived = {s: 0 for s in ("R", "S", "T")}
        per_stream_kept = {s: 0 for s in ("R", "S", "T")}
        per_stream_dropped = {s: 0 for s in ("R", "S", "T")}
        for w in result.windows:
            for s in ("R", "S", "T"):
                per_stream_arrived[s] += w.arrived[s]
                per_stream_kept[s] += w.kept[s]
                per_stream_dropped[s] += w.dropped[s]
        for s in ("R", "S", "T"):
            assert per_stream_kept[s] + per_stream_dropped[s] == per_stream_arrived[s]

    def test_triage_beats_drop_only_under_overload(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=400)
        triage = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        drop = make_pipeline(paper_catalog, ShedStrategy.DROP_ONLY).run(streams)
        assert run_rms(triage) < run_rms(drop)

    def test_same_drops_across_triage_and_drop_only(self, paper_catalog):
        """Single code path (paper Section 5.2.1): both strategies shed the
        identical tuples under the same seed."""
        streams = build_streams(rate_per_stream=400, n=400)
        a = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        b = make_pipeline(paper_catalog, ShedStrategy.DROP_ONLY).run(streams)
        assert a.total_dropped == b.total_dropped
        for wa, wb in zip(a.windows, b.windows):
            assert wa.kept == wb.kept
            assert wa.exact == wb.exact

    def test_triage_estimate_compensates(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=400)
        result = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        # Total estimated mass roughly fills the gap between kept and ideal.
        for w in result.windows:
            ideal_total = sum(v["n"] or 0 for v in w.ideal.values())
            exact_total = sum(v["n"] or 0 for v in w.exact.values())
            merged_total = sum(v["n"] or 0 for v in w.merged.values())
            if ideal_total == 0:
                continue
            assert exact_total <= merged_total
            assert merged_total == pytest.approx(ideal_total, rel=0.35)


class TestPlumbing:
    def test_missing_stream_rejected(self, paper_catalog):
        pipe = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE)
        with pytest.raises(ValueError, match="no arrivals"):
            pipe.run({"R": []})

    def test_union_query_rejected(self, paper_catalog):
        from repro.rewrite import RewriteError

        config = PipelineConfig(window=WindowSpec(width=1.0))
        with pytest.raises(RewriteError, match="single SPJ"):
            DataTriagePipeline(
                paper_catalog,
                "(SELECT a, COUNT(*) AS n FROM R GROUP BY a) UNION ALL "
                "(SELECT d, COUNT(*) AS n FROM T GROUP BY d)",
                config,
            )

    def test_non_aggregate_query_runs_in_raw_mode(self, paper_catalog):
        """Future Work §8.1: queries without aggregates carry raw rows plus
        the lost-results synopsis instead of merged numbers."""
        streams = build_streams(rate_per_stream=400, n=400)
        config = PipelineConfig(
            strategy=ShedStrategy.DATA_TRIAGE,
            window=WindowSpec(width=1.0),
            queue_capacity=30,
            service_time=1 / 300.0,
            seed=1,
            compute_ideal=False,
        )
        pipe = DataTriagePipeline(
            paper_catalog,
            "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d;",
            config,
        )
        assert pipe.merge_spec is None
        result = pipe.run(streams)
        assert result.total_dropped > 0
        overloaded = [w for w in result.windows if sum(w.dropped.values())]
        assert overloaded
        for w in overloaded:
            assert w.raw_rows is not None  # exact result tuples
            assert w.lost_synopsis is not None
            assert w.lost_synopsis.total() > 0
            assert w.merged == {} and w.exact == {}
        # The synopsis is scene-ready (Figure 3): it has bucket geometry
        # over the result's join attributes.
        syn = overloaded[0].lost_synopsis
        assert "R.a" in syn.dim_names and "S.c" in syn.dim_names

    def test_accepts_query_text_and_bound(self, paper_catalog):
        from repro.sql import Binder, parse_statement

        bound = Binder(paper_catalog).bind(parse_statement(QUERY))
        config = PipelineConfig(window=WindowSpec(width=1.0))
        pipe = DataTriagePipeline(paper_catalog, bound, config)
        assert pipe.plan.names == ["R", "S", "T"]

    def test_synopsis_dimensions_only_referenced_columns(self, paper_catalog):
        from repro.engine import ColumnType, Schema

        paper_catalog.create_stream(
            "W",
            Schema.of(
                ("x", ColumnType.INTEGER),
                ("unused", ColumnType.INTEGER),
            ),
        )
        config = PipelineConfig(window=WindowSpec(width=1.0))
        pipe = DataTriagePipeline(
            paper_catalog,
            "SELECT x, COUNT(*) AS n FROM W GROUP BY x",
            config,
        )
        assert [d.name for d in pipe._dims["W"]] == ["W.x"]

    def test_domains_override(self, paper_catalog):
        config = PipelineConfig(window=WindowSpec(width=1.0))
        pipe = DataTriagePipeline(
            paper_catalog, QUERY, config, domains={"R.a": (1, 50)}
        )
        (dim,) = pipe._dims["R"]
        assert (dim.lo, dim.hi) == (1, 50)

    def test_compute_ideal_off(self, paper_catalog):
        streams = build_streams(rate_per_stream=30, n=30)
        config = PipelineConfig(
            window=WindowSpec(width=1.0), compute_ideal=False
        )
        result = DataTriagePipeline(paper_catalog, QUERY, config).run(streams)
        assert all(w.ideal is None for w in result.windows)
        with pytest.raises(ValueError, match="compute_ideal"):
            run_rms(result)

    def test_queue_stats_exposed(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=200)
        result = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        assert set(result.queue_stats) == {"R", "S", "T"}
        assert result.queue_stats["R"].offered == 200

    def test_result_latency_zero_when_underloaded(self, paper_catalog):
        streams = build_streams(rate_per_stream=30, n=90)
        result = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE).run(streams)
        # With a near-empty queue the engine finishes each window within a
        # few service times of its close (tuples from the three streams can
        # arrive back-to-back right at the boundary).
        for w in result.windows:
            assert w.result_latency is not None
            assert w.result_latency <= 4 / 300.0 + 1e-9

    def test_result_latency_grows_with_backlog(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=400)
        small = make_pipeline(
            paper_catalog, ShedStrategy.DATA_TRIAGE, capacity=10
        ).run(streams)
        big = make_pipeline(
            paper_catalog, ShedStrategy.DATA_TRIAGE, capacity=600
        ).run(streams)
        worst = lambda r: max(w.result_latency for w in r.windows)
        # A deep queue holds a long backlog: results arrive later.
        assert worst(big) > worst(small)

    def test_deterministic_under_seed(self, paper_catalog):
        streams = build_streams(rate_per_stream=400, n=200)
        a = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE, seed=5).run(streams)
        b = make_pipeline(paper_catalog, ShedStrategy.DATA_TRIAGE, seed=5).run(streams)
        assert run_rms(a) == run_rms(b)
        assert a.total_dropped == b.total_dropped
