"""CEP pattern-query tier: SEQ patterns with state-aware load shedding.

The first non-SPJ query class in the repo.  ``PATTERN SEQ(A a, B+ b, C c)
WITHIN n`` statements (parsed and bound by :mod:`repro.sql`) execute on an
NFA-style :class:`~repro.cep.engine.PatternEngine`; load shedding becomes
*state-aware* through :class:`~repro.cep.policy.PatternUtilityPolicy`,
which protects tuples that extend active partial matches and sheds events
with low learned match-contribution probability
(:class:`~repro.cep.utility.UtilityModel`, eSPICE-style), while the engine
bounds its own memory pSPICE-style by retiring low-utility runs.  See
PAPERS.md for the eSPICE/pSPICE/hSPICE lineage.
"""

from repro.cep.engine import (
    EngineStats,
    PatternEngine,
    PatternProtection,
    canonical_match_bytes,
    match_identity,
)
from repro.cep.pipeline import (
    DEMO_PATTERN,
    PatternConfig,
    PatternPipeline,
    PatternRunResult,
    bursty_pattern_workload,
    demo_catalog,
    merge_streams,
)
from repro.cep.policy import PatternUtilityPolicy
from repro.cep.utility import UtilityModel

__all__ = [
    "EngineStats",
    "PatternEngine",
    "PatternProtection",
    "canonical_match_bytes",
    "match_identity",
    "DEMO_PATTERN",
    "PatternConfig",
    "PatternPipeline",
    "PatternRunResult",
    "bursty_pattern_workload",
    "demo_catalog",
    "merge_streams",
    "PatternUtilityPolicy",
    "UtilityModel",
]
