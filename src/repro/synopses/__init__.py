"""Synopsis data structures and their object-relational registration.

Implementations of the paper's ``Synopsis`` datatype (Section 5.1):

* :class:`SparseCubicHistogram` — the paper's production synopsis (fast);
* :class:`MHist` — MAXDIFF multidimensional histogram (accurate but its
  unaligned joins blow up quadratically — the Figure 6 "slow synopsis");
  the ``grid`` parameter builds the Future-Work aligned variant;
* :class:`DenseGridHistogram` — dense numpy grid (tensor-contraction joins);
* :class:`ReservoirSampleSynopsis` — sampling estimator (related work);
* :class:`CountMinSynopsis` — sketch family under attribute independence;
* :class:`WaveletSynopsis` — thresholded-Haar family (related work).

:func:`register_synopsis_udfs` installs the paper's user-defined functions
(``project``, ``union_all``/``union``, ``equijoin``, ``syn_total``) into a
UDF registry so shadow queries run inside the plain query engine.
"""

from __future__ import annotations

from repro.engine.udf import UDFRegistry
from repro.synopses.base import (
    Dimension,
    Synopsis,
    SynopsisError,
    SynopsisFactory,
)
from repro.synopses.cms import CountMinFactory, CountMinSynopsis
from repro.synopses.endbiased import EndBiasedFactory, EndBiasedHistogram
from repro.synopses.equiwidth import DenseGridFactory, DenseGridHistogram
from repro.synopses.join_order import (
    JoinInput,
    aligned_result_size,
    best_order,
    plan_cost,
    unaligned_result_size,
)
from repro.synopses.mhist import MHist, MHistFactory
from repro.synopses.sample import ReservoirSampleFactory, ReservoirSampleSynopsis
from repro.synopses.sparse_hist import SparseCubicHistogram, SparseHistogramFactory
from repro.synopses.wavelet import WaveletFactory, WaveletSynopsis

__all__ = [
    "Dimension",
    "Synopsis",
    "SynopsisError",
    "SynopsisFactory",
    "SparseCubicHistogram",
    "SparseHistogramFactory",
    "MHist",
    "MHistFactory",
    "DenseGridHistogram",
    "DenseGridFactory",
    "ReservoirSampleSynopsis",
    "ReservoirSampleFactory",
    "CountMinSynopsis",
    "CountMinFactory",
    "EndBiasedHistogram",
    "EndBiasedFactory",
    "WaveletSynopsis",
    "WaveletFactory",
    "JoinInput",
    "best_order",
    "plan_cost",
    "aligned_result_size",
    "unaligned_result_size",
    "register_synopsis_udfs",
    "FACTORIES",
]

#: Name -> zero-argument factory constructor, for CLI/benchmark selection.
FACTORIES = {
    "sparse_hist": SparseHistogramFactory,
    "mhist": MHistFactory,
    "dense_grid": DenseGridFactory,
    "reservoir": ReservoirSampleFactory,
    "cms": CountMinFactory,
    "wavelet": WaveletFactory,
    "end_biased": EndBiasedFactory,
}


def register_synopsis_udfs(registry: UDFRegistry) -> None:
    """Install the paper's synopsis UDT and UDFs into ``registry``.

    All functions are NULL-tolerant: a missing synopsis (empty window)
    behaves as an empty bag, so ``union_all(NULL, s) == s`` and
    ``equijoin(NULL, ..) IS NULL`` — mirroring how outer UNION arms behave
    when a triage queue produced no synopsis for a window.
    """

    def _project(syn: Synopsis | None, colnames: str) -> Synopsis | None:
        if syn is None:
            return None
        names = [c.strip() for c in colnames.split(",") if c.strip()]
        return syn.project(names)

    def _union_all(a: Synopsis | None, b: Synopsis | None) -> Synopsis | None:
        if a is None:
            return b
        if b is None:
            return a
        return a.union_all(b)

    def _equijoin(
        a: Synopsis | None, a_col: str, b: Synopsis | None, b_col: str
    ) -> Synopsis | None:
        if a is None or b is None:
            return None
        return a.equijoin(b, a_col, b_col)

    def _equijoin_multi(
        a: Synopsis | None, a_cols: str, b: Synopsis | None, b_cols: str
    ) -> Synopsis | None:
        """Composite-key join; column lists are comma-separated strings."""
        if a is None or b is None:
            return None
        lefts = [c.strip() for c in a_cols.split(",") if c.strip()]
        rights = [c.strip() for c in b_cols.split(",") if c.strip()]
        if len(lefts) != len(rights):
            raise ValueError(
                f"equijoin_multi key lists differ in length: {a_cols!r} vs {b_cols!r}"
            )
        return a.equijoin_multi(b, list(zip(lefts, rights)))

    def _total(syn: Synopsis | None) -> float:
        return 0.0 if syn is None else syn.total()

    def _scale(syn: Synopsis | None, factor: float) -> Synopsis | None:
        return None if syn is None else syn.scale(factor)

    registry.register_type("Synopsis", Synopsis, replace=True)
    registry.register_function(
        "project", _project, ("Synopsis", "CSTRING"), "Synopsis", replace=True
    )
    registry.register_function(
        "union_all", _union_all, ("Synopsis", "Synopsis"), "Synopsis", replace=True
    )
    # Figure 5 of the paper abbreviates union_all as "union".
    registry.register_function(
        "union", _union_all, ("Synopsis", "Synopsis"), "Synopsis", replace=True
    )
    registry.register_function(
        "equijoin",
        _equijoin,
        ("Synopsis", "CSTRING", "Synopsis", "CSTRING"),
        "Synopsis",
        replace=True,
    )
    registry.register_function(
        "equijoin_multi",
        _equijoin_multi,
        ("Synopsis", "CSTRING", "Synopsis", "CSTRING"),
        "Synopsis",
        replace=True,
    )
    registry.register_function(
        "syn_total", _total, ("Synopsis",), "FLOAT", replace=True
    )
    registry.register_function(
        "syn_scale", _scale, ("Synopsis", "FLOAT"), "Synopsis", replace=True
    )
