"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_fig6_small(self):
        code, text = run_cli(["fig6", "--rows", "150"])
        assert code == 0
        assert "original query" in text
        assert "fast/original ratio" in text

    def test_fig8_small(self):
        code, text = run_cli(["fig8", "--rates", "200,1500", "--runs", "2"])
        assert code == 0
        assert "Figure 8" in text
        assert "legend:" in text  # ascii chart present
        assert "data_triage_mean" in text  # csv present

    def test_fig9_small(self):
        code, text = run_cli(["fig9", "--peaks", "2000", "--runs", "2"])
        assert code == 0
        assert "Figure 9" in text

    def test_explain(self):
        code, text = run_cli(
            ["explain", "SELECT a, COUNT(*) AS n FROM R, S, T "
             "WHERE R.a = S.b AND S.c = T.d GROUP BY a"]
        )
        assert code == 0
        assert "ENGINE PLAN" in text
        assert "Data Triage rewrite" in text

    def test_explain_non_spj(self):
        code, text = run_cli(["explain", "SELECT * FROM R, S, T WHERE R.a = S.b"])
        assert code == 0
        assert "rewrite not applicable" in text

    def test_rewrite(self):
        code, text = run_cli(
            ["rewrite", "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d"]
        )
        assert code == 0
        assert "CREATE VIEW Q_dropped_syn" in text

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_drop_policy_flag_parses(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--drop-policy", "head"]
        )
        assert args.drop_policy == "head"
        args = build_parser().parse_args(
            ["serve", "--drop-policy", "pattern-utility", "--pattern",
             "PATTERN SEQ(R a, S b) WITHIN 2"]
        )
        assert args.drop_policy == "pattern-utility"
        assert args.pattern.startswith("PATTERN")

    def test_drop_policy_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--drop-policy", "nope"])

    def test_bench_cep_pattern_suite(self, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        code, text = run_cli(
            ["bench", "--quick", "--suite", "cep_pattern",
             "--out", str(out_path)]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        suite = doc["suites"]["cep_pattern"]
        recall = suite["recall"]
        assert recall["pattern-utility"] > recall["random"]
        assert suite["drop_fraction"]["pattern-utility"] == pytest.approx(
            suite["drop_fraction"]["random"]
        )

    def test_fig8_svg_output(self, tmp_path):
        svg_path = tmp_path / "fig8.svg"
        code, text = run_cli(
            ["fig8", "--rates", "200,1500", "--runs", "1", "--svg", str(svg_path)]
        )
        assert code == 0
        assert "SVG chart written" in text
        assert svg_path.read_text().startswith("<svg")

    def test_trace_writes_valid_chrome_trace(self, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        code, text = run_cli(
            ["trace", "--quick", "--peak", "4500", "--out", str(trace_path),
             "--metrics-out", str(prom_path)]
        )
        assert code == 0
        assert "traced Figure 9 run" in text
        assert "mean RMS error" in text
        events = validate_chrome_trace(json.loads(trace_path.read_text()))
        names = {e["name"] for e in events}
        assert {"drain", "exact", "shadow", "merge", "window_close", "emit"} <= names
        assert {"ingest", "enqueue", "shed", "poll"} <= names  # 4500 sheds
        prom = prom_path.read_text()
        assert "pipeline_phase_seconds_bucket" in prom
        assert "triage_drops_total" in prom

    def test_trace_jsonl_format(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        code, text = run_cli(
            ["trace", "--quick", "--format", "jsonl", "--out", str(path),
             "--no-tuple-events"]
        )
        assert code == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines, "jsonl trace should have events"
        assert all("ph" in e for e in lines)
        # Lifecycle instants silenced: spans/instants only.
        assert not any(e.get("cat") == "tuple" for e in lines)

    def test_trace_profile_out_and_prof_table(self, tmp_path):
        from repro.obs.prof import validate_collapsed

        collapsed = tmp_path / "fig9.collapsed"
        code, text = run_cli(
            ["trace", "--quick", "--out", str(tmp_path / "t.json"),
             "--profile-out", str(collapsed), "--profile-hz", "250"]
        )
        assert code == 0
        assert "profile:" in text
        header = validate_collapsed(collapsed.read_text())
        assert header["schema"] == "repro-prof/v1"

        svg = tmp_path / "flame.svg"
        code, text = run_cli(
            ["prof", str(collapsed), "--top", "3", "--svg", str(svg)]
        )
        assert code == 0
        assert "hot functions" in text
        assert "<svg" in svg.read_text()

    def test_prof_diff_exit_codes(self, tmp_path):
        base = tmp_path / "base.collapsed"
        slow = tmp_path / "slow.collapsed"
        base.write_text(
            "# repro-prof/v1 hz=97 samples=100 truncated=0 label=x\n"
            "m:f:1 80\nm:g:2 20\n"
        )
        slow.write_text(
            "# repro-prof/v1 hz=97 samples=100 truncated=0 label=x\n"
            "m:f:1 50\nm:g:2 50\n"
        )
        code, text = run_cli(["prof", "--diff", str(base), str(base)])
        assert code == 0
        assert "no per-function self-time regressions" in text
        code, text = run_cli(["prof", "--diff", str(base), str(slow)])
        assert code == 1
        assert "REGRESSION" in text and "m:g" in text

    def test_prof_bad_file_exits_2(self, tmp_path):
        missing = tmp_path / "nope.collapsed"
        code, text = run_cli(["prof", str(missing)])
        assert code == 2
        assert "prof error" in text
        bad = tmp_path / "bad.collapsed"
        bad.write_text("not a profile\n")
        code, text = run_cli(["prof", str(bad)])
        assert code == 2
        assert "invalid profile" in text

    def test_bench_profile_writes_per_suite_collapsed(self, tmp_path):
        from repro.obs.prof import validate_collapsed

        prof_dir = tmp_path / "profiles"
        code, text = run_cli(
            ["bench", "--quick", "--suite", "service_ingest",
             "--out", str(tmp_path / "bench.json"),
             "--profile", str(prof_dir)]
        )
        assert code == 0
        assert "per-suite profiles" in text
        header = validate_collapsed(
            (prof_dir / "service_ingest.collapsed").read_text()
        )
        assert header["label"] == "service_ingest"
