"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows each figure's regenerated data table.  Scale notes: the paper
drove a C engine on a 1.4 GHz Pentium 3; these benches run the Python
reproduction at reduced tuple counts (see EXPERIMENTS.md for the mapping).
Shapes — who wins, by what factor, where the crossover lands — are asserted,
absolute numbers are reported.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentParams

#: Figure tables and CSVs are also written here, so they survive pytest's
#: output capture when the suite runs without ``-s``.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Persist a figure's regenerated data under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text, encoding="utf-8")
    return path

#: Load-experiment scale used by every figure bench (per stream).
BENCH_PARAMS = ExperimentParams(
    tuples_per_window=150,
    n_windows=6,
    engine_capacity=500.0,
    queue_capacity=50,
)

#: Paper: "points represent the mean of nine runs of the experiment".
N_RUNS = 9


@pytest.fixture(scope="session")
def bench_params() -> ExperimentParams:
    return BENCH_PARAMS
