"""Window-at-a-time query execution over bound queries.

:class:`QueryExecutor` takes a :class:`~repro.sql.binder.BoundQuery` plus the
current window's contents for every stream and produces the window's result
bag.  Join planning is the textbook greedy heuristic: build a left-deep tree,
always attaching a source that shares an equijoin predicate with what has
been joined so far (falling back to a cross product only when the query graph
is genuinely disconnected).

The continuous-query layer (:class:`ContinuousQuery`) drives this executor
once per window, which is the paper's execution model for the experiment
query of Figure 7.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.algebra.multiset import Multiset
from repro.engine.catalog import Catalog
from repro.engine.expressions import ColumnRef, Expression, conjoin
from repro.engine.operators import (
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Scan,
    UnionAll,
)
from repro.engine.types import Column, Schema, StreamTuple
from repro.engine.window import WindowSpec, assign_windows


class ExecutionError(RuntimeError):
    """Raised when a query cannot be planned or executed."""


@dataclass(frozen=True)
class JoinStep:
    """One step of the greedy left-deep join schedule.

    ``keys_left``/``keys_right`` are qualified column names; empty key lists
    mean a cross product (disconnected query graph).  The schedule depends
    only on the bound query — not on window contents — so the interpreted
    executor and the compiled planner (:mod:`repro.perf.compile`) share it
    and are guaranteed to build identical join trees.
    """

    source: str
    keys_left: tuple[str, ...] = ()
    keys_right: tuple[str, ...] = ()

    @property
    def is_cross(self) -> bool:
        return not self.keys_left


def join_schedule(bound) -> list[JoinStep]:
    """Greedy left-deep join order for ``bound`` (paper's textbook heuristic).

    Always attaches a source that shares an equijoin predicate with what has
    been joined so far, gathering every available key at once (multi-key
    joins), and falls back to a FROM-order cross product only when the query
    graph is genuinely disconnected.
    """
    order = [src.name for src in bound.sources]
    joined_names = {order[0]}
    remaining = set(order[1:])
    pending = list(bound.join_predicates)
    steps: list[JoinStep] = []
    while remaining:
        chosen = None
        for pred in pending:
            if pred.left_source in joined_names and pred.right_source in remaining:
                chosen = pred.right_source
                break
            if pred.right_source in joined_names and pred.left_source in remaining:
                chosen = pred.left_source
                break
        if chosen is None:
            nxt = next(n for n in order if n in remaining)
            steps.append(JoinStep(source=nxt))
            remaining.discard(nxt)
            joined_names.add(nxt)
            continue
        new_name = chosen
        # Gather every pending predicate between the joined set ∪ {new}
        # so multi-key joins use all keys at once.
        keys_left, keys_right, used = [], [], []
        for p in pending:
            cand = None
            if p.left_source in joined_names and p.right_source == new_name:
                cand = p
            elif p.right_source in joined_names and p.left_source == new_name:
                cand = p.reversed()
            if cand is not None:
                keys_left.append(f"{cand.left_source}.{cand.left_column}")
                keys_right.append(f"{cand.right_source}.{cand.right_column}")
                used.append(p)
        pending = [p for p in pending if p not in used]
        steps.append(
            JoinStep(
                source=new_name,
                keys_left=tuple(keys_left),
                keys_right=tuple(keys_right),
            )
        )
        remaining.discard(new_name)
        joined_names.add(new_name)
    return steps


@dataclass
class QueryResult:
    """A window's result: the output bag plus its schema.

    ``ordered_rows`` is populated (a list, duplicates included) when the
    query has an ORDER BY and/or LIMIT — bags are unordered, so ordering
    travels separately.
    """

    rows: Multiset
    schema: Schema
    ordered_rows: list[tuple] | None = None


class QueryExecutor:
    """Executes bound queries over per-window input bags.

    Two execution modes share one planner:

    * **compiled** (default) — on first execution of a bound query, the
      physical plan is built *once* and its expressions are code-generated
      into flat Python closures (:mod:`repro.perf.compile`).  Subsequent
      windows re-bind only the leaf scans to the new input bags, skipping
      per-window plan construction and per-row ``Evaluator`` dispatch.
      Compiled plans are cached per executor, keyed on (query identity,
      source-schema fingerprint).
    * **interpreted** — the original per-window plan instantiation.  It is
      the reference semantics; any query the compiler cannot handle falls
      back here transparently (and the failure is remembered, so the
      compile is not retried every window).
    """

    #: Compiled-plan cache entries kept per executor before eviction.
    PLAN_CACHE_SIZE = 64

    def __init__(self, catalog: Catalog, *, compiled: bool = True) -> None:
        self.catalog = catalog
        self.compiled = compiled
        self._functions = catalog.functions
        # key -> (bound, CompiledQuery | None); the bound reference keeps
        # id(bound) stable for the lifetime of the entry, None marks a
        # query that failed to compile (permanent interpreted fallback).
        self._plan_cache: dict[tuple, tuple[object, object | None]] = {}

    # ------------------------------------------------------------------
    # Compiled mode
    # ------------------------------------------------------------------
    @staticmethod
    def _plan_key(bound) -> tuple:
        """Cache key: query identity + a fingerprint of its source schemas."""
        from repro.sql.binder import BoundUnion

        if isinstance(bound, BoundUnion):
            return (id(bound), tuple(QueryExecutor._plan_key(q)[1] for q in bound.queries))
        fingerprint = tuple(
            (src.name.lower(),)
            + tuple((c.name.lower(), c.type.value) for c in src.schema.columns)
            for src in bound.sources
        )
        return (id(bound), fingerprint)

    def _compiled_plan(self, bound):
        """The cached compiled plan for ``bound`` (None: interpreted fallback)."""
        key = self._plan_key(bound)
        entry = self._plan_cache.get(key)
        if entry is not None:
            return entry[1]
        try:
            from repro.perf.compile import compile_query

            plan = compile_query(bound, self._functions)
        except Exception:
            # Anything the compiler cannot express runs interpreted; a
            # genuinely invalid query will raise its real error there.
            plan = None
        if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
            self._plan_cache.clear()
        self._plan_cache[key] = (bound, plan)
        return plan

    # ------------------------------------------------------------------
    def execute(self, bound, inputs: dict[str, Multiset]) -> QueryResult:
        """Run ``bound`` (BoundQuery or BoundUnion) over ``inputs``.

        ``inputs`` maps *stream names* (not aliases) to the window's rows.
        Streams missing from ``inputs`` are treated as empty.
        """
        if self.compiled:
            plan = self._compiled_plan(bound)
            if plan is not None:
                return plan.execute(inputs)
        return self.execute_interpreted(bound, inputs)

    def execute_interpreted(
        self, bound, inputs: dict[str, Multiset]
    ) -> QueryResult:
        """The reference per-window interpreted path (always available)."""
        from repro.sql.binder import BoundQuery, BoundUnion

        if isinstance(bound, BoundUnion):
            results = [self.execute_interpreted(q, inputs) for q in bound.queries]
            rows = Multiset()
            for r in results:
                rows = rows + r.rows
            return QueryResult(rows=rows, schema=results[0].schema)
        if not isinstance(bound, BoundQuery):
            raise ExecutionError(f"cannot execute {type(bound).__name__}")
        plan = self._plan(bound, inputs)
        if not bound.order_by and bound.limit is None:
            return QueryResult(rows=plan.to_multiset(), schema=plan.schema)
        rows = list(plan)
        if bound.order_by:
            rows = _order_rows(rows, plan.schema, bound.order_by, self._functions)
        if bound.limit is not None:
            rows = rows[: bound.limit]
        return QueryResult(
            rows=Multiset(rows), schema=plan.schema, ordered_rows=rows
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _plan(self, bound, inputs: dict[str, Multiset]) -> PhysicalOperator:
        per_source = {
            src.name: self._plan_source(src, inputs) for src in bound.sources
        }
        # Local selections first (predicate pushdown).
        for name, preds in bound.local_predicates.items():
            pred = conjoin(preds)
            if pred is not None:
                per_source[name] = Filter(
                    per_source[name], pred, self._functions
                )

        joined, joined_names = self._join_sources(bound, per_source)

        residual = conjoin(bound.residual_predicates)
        if residual is not None:
            joined = Filter(joined, residual, self._functions)

        if bound.is_aggregate:
            op: PhysicalOperator = HashAggregate(
                joined, bound.group_by, bound.aggregates, self._functions
            )
            if bound.having is not None:
                # HAVING sees the aggregate's output row (group keys +
                # aggregate values addressed by their output names).
                op = Filter(op, bound.having, self._functions)
        elif bound.select_star:
            op = joined
        else:
            op = Project(joined, bound.outputs, self._functions)

        if bound.distinct:
            op = _Distinct(op)
        return op

    def _plan_source(self, src, inputs: dict[str, Multiset]) -> PhysicalOperator:
        """Scan a base stream (qualifying its columns) or execute a subquery."""
        if src.subquery is not None:
            result = self.execute_interpreted(src.subquery, inputs)
            # A derived table's output columns are bare names in SQL: strip
            # the inner qualifiers (when unambiguous) before re-qualifying
            # with this source's alias.
            schema = _qualify(_dequalify(result.schema), src.name)
            return Scan(result.rows, schema)
        rows = inputs.get(src.stream_name.lower(), None)
        if rows is None:
            rows = inputs.get(src.stream_name, Multiset())
        return Scan(rows, _qualify(src.schema, src.name))

    def _join_sources(self, bound, per_source: dict[str, PhysicalOperator]):
        """Left-deep join tree following the shared greedy schedule."""
        order = [src.name for src in bound.sources]
        current = per_source[order[0]]
        joined_names = {order[0]}
        for step in join_schedule(bound):
            if step.is_cross:
                current = NestedLoopJoin(
                    current, per_source[step.source], None, self._functions
                )
            else:
                current = HashJoin(
                    current,
                    per_source[step.source],
                    list(step.keys_left),
                    list(step.keys_right),
                )
            joined_names.add(step.source)
        return current, joined_names


class _Distinct(PhysicalOperator):
    """Duplicate elimination (SELECT DISTINCT)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self.child = child
        self.schema = child.schema

    def __iter__(self):
        seen: set[tuple] = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row


def _order_rows(rows, schema: Schema, order_by, functions) -> list[tuple]:
    """Stable multi-key sort with SQL NULL placement (NULLs sort last)."""
    evals = [(expr.bind(schema, functions), asc) for expr, asc in order_by]
    out = list(rows)
    # Apply keys from the least significant to the most (stable sort).
    for ev, ascending in reversed(evals):
        out.sort(
            key=lambda row: ((ev(row) is None), ev(row) if ev(row) is not None else 0),
            reverse=not ascending,
        )
        if not ascending:
            # reverse=True puts NULLs first; move them to the end.
            nulls = [r for r in out if ev(r) is None]
            out = [r for r in out if ev(r) is not None] + nulls
    return out


def _dequalify(schema: Schema) -> Schema:
    """Strip ``x.`` qualifiers when the bare names stay unique."""
    bare = [c.name.rsplit(".", 1)[-1] for c in schema.columns]
    if len({b.lower() for b in bare}) != len(bare):
        return schema  # collisions: keep qualified names
    return Schema([Column(b, c.type) for b, c in zip(bare, schema.columns)])


def _qualify(schema: Schema, name: str) -> Schema:
    """Prefix every unqualified column with ``name.`` for join disambiguation."""
    cols = []
    for c in schema.columns:
        cols.append(c if "." in c.name else Column(f"{name}.{c.name}", c.type))
    return Schema(cols)


@dataclass
class WindowResult:
    """Result of one window of a continuous query."""

    window_id: int
    start: float
    end: float
    rows: Multiset
    schema: Schema


class ContinuousQuery:
    """Drives a bound query window-by-window over timestamped streams.

    This is the per-window execution loop the Data Triage pipeline sits in
    front of: the pipeline decides *which* tuples reach each window (triage),
    and this class computes the per-window relational answer.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        bound,
        window: WindowSpec,
    ) -> None:
        self.executor = executor
        self.bound = bound
        self.window = window

    def run(
        self, streams: dict[str, Iterable[StreamTuple]]
    ) -> list[WindowResult]:
        """Execute over full stream histories, producing one result per window."""
        per_stream_windows: dict[str, dict[int, list[StreamTuple]]] = {
            name.lower(): assign_windows(tuples, self.window)
            for name, tuples in streams.items()
        }
        window_ids = sorted(
            {w for wins in per_stream_windows.values() for w in wins}
        )
        out: list[WindowResult] = []
        for wid in window_ids:
            inputs = {
                name: Multiset(t.row for t in wins.get(wid, []))
                for name, wins in per_stream_windows.items()
            }
            result = self.executor.execute(self.bound, inputs)
            start, end = self.window.bounds(wid)
            out.append(
                WindowResult(
                    window_id=wid,
                    start=start,
                    end=end,
                    rows=result.rows,
                    schema=result.schema,
                )
            )
        return out
