"""Tests for synopsis-plan join ordering (paper Section 5.2)."""

import pytest

from repro.synopses import (
    JoinInput,
    aligned_result_size,
    best_order,
    plan_cost,
    unaligned_result_size,
)


class TestCostModel:
    def test_unaligned_is_multiplicative(self):
        assert unaligned_result_size(10, 20) == 200

    def test_aligned_capped_by_grid(self):
        assert aligned_result_size(100, 100, grid_cells=400) == 400
        assert aligned_result_size(3, 5, grid_cells=400) == 15

    def test_plan_cost_left_deep(self):
        order = [JoinInput("a", 10), JoinInput("b", 10), JoinInput("c", 10)]
        # joins: 10*10 pairs, intermediate 100; then 100*10 pairs.
        assert plan_cost(order, unaligned_result_size) == 100 + 1000

    def test_plan_cost_empty_and_single(self):
        assert plan_cost([], unaligned_result_size) == 0
        assert plan_cost([JoinInput("a", 5)], unaligned_result_size) == 0


class TestBestOrder:
    def test_small_first_wins_unaligned(self):
        inputs = [JoinInput("big", 100), JoinInput("small", 2), JoinInput("mid", 10)]
        order = best_order(inputs, result_size=unaligned_result_size)
        # Optimal left-deep order starts with the two smallest inputs.
        assert {order[0].name, order[1].name} == {"small", "mid"}

    def test_respects_join_graph_connectivity(self):
        # Chain a - b - c: starting with (a, c) would need a cross product.
        inputs = [JoinInput("a", 1), JoinInput("b", 100), JoinInput("c", 1)]
        edges = [("a", "b"), ("b", "c")]
        order = best_order(inputs, edges, unaligned_result_size)
        names = [i.name for i in order]
        # b must be adjacent to whichever of a/c comes first.
        assert names.index("b") <= 1

    def test_single_input(self):
        assert best_order([JoinInput("x", 3)]) == [JoinInput("x", 3)]

    def test_best_order_is_cheapest_exhaustively(self):
        import itertools

        inputs = [JoinInput(n, s) for n, s in [("a", 7), ("b", 3), ("c", 11), ("d", 2)]]
        chosen = best_order(inputs, result_size=unaligned_result_size)
        best_cost = plan_cost(chosen, unaligned_result_size)
        for perm in itertools.permutations(inputs):
            assert best_cost <= plan_cost(perm, unaligned_result_size)

    def test_greedy_path_for_large_inputs(self):
        inputs = [JoinInput(f"r{i}", i + 1) for i in range(12)]
        order = best_order(inputs, result_size=unaligned_result_size)
        assert len(order) == 12
        assert order[0].size == 1  # greedy starts from the smallest

    def test_disconnected_graph_falls_back(self):
        inputs = [JoinInput("a", 2), JoinInput("b", 3)]
        order = best_order(inputs, edges=[("a", "zzz")], result_size=unaligned_result_size)
        assert len(order) == 2
