"""Haar wavelet synopsis (extension; related-work family).

The paper's related work (Chakrabarti et al., Matias/Vitter/Wang) processes
queries over wavelet-compressed data.  This synopsis keeps a value-resolution
joint histogram, compresses it to the ``budget`` largest Haar coefficients
(standard separable multidimensional Haar, coefficients by absolute
magnitude), and performs relational operations on the reconstructed array —
re-compressing afterwards so every handed-around synopsis really is a
``budget``-coefficient object.

This reconstruct–operate–recompress formulation trades the in-wavelet-domain
algebra of Chakrabarti et al. for simplicity; the *estimation* behaviour (a
thresholded-wavelet approximation of the data distribution) is the same,
which is what the synopsis-type ablation compares.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.synopses.base import (
    Dimension,
    Synopsis,
    SynopsisError,
    SynopsisFactory,
    require_same_dimensions,
)


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _haar_forward(a: np.ndarray) -> np.ndarray:
    """Full separable Haar decomposition (orthonormal) along every axis."""
    out = a.astype(np.float64, copy=True)
    for axis in range(out.ndim):
        n = out.shape[axis]
        out = np.moveaxis(out, axis, 0)
        length = n
        while length > 1:
            half = length // 2
            segment = out[:length].copy()
            even, odd = segment[0::2], segment[1::2]
            out[:half] = (even + odd) / np.sqrt(2.0)
            out[half:length] = (even - odd) / np.sqrt(2.0)
            length = half
        out = np.moveaxis(out, 0, axis)
    return out


def _haar_inverse(a: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_haar_forward`."""
    out = a.astype(np.float64, copy=True)
    for axis in range(out.ndim - 1, -1, -1):
        n = out.shape[axis]
        out = np.moveaxis(out, axis, 0)
        length = 2
        while length <= n:
            half = length // 2
            approx = out[:half].copy()
            detail = out[half:length].copy()
            segment = np.empty_like(out[:length])
            segment[0::2] = (approx + detail) / np.sqrt(2.0)
            segment[1::2] = (approx - detail) / np.sqrt(2.0)
            out[:length] = segment
            length *= 2
        out = np.moveaxis(out, 0, axis)
    return out


def _threshold(coeffs: np.ndarray, budget: int) -> np.ndarray:
    """Zero all but the ``budget`` largest-magnitude coefficients."""
    flat = coeffs.ravel()
    if budget >= flat.size:
        return coeffs
    keep = np.argpartition(np.abs(flat), -budget)[-budget:]
    out = np.zeros_like(flat)
    out[keep] = flat[keep]
    return out.reshape(coeffs.shape)


class WaveletSynopsis(Synopsis):
    """Thresholded-Haar approximation of the value-resolution joint."""

    def __init__(self, dimensions: Sequence[Dimension], budget: int = 32) -> None:
        if budget < 1:
            raise SynopsisError(f"budget must be >= 1, got {budget}")
        self.dimensions = tuple(dimensions)
        self.budget = budget
        self._shape = tuple(_next_pow2(d.n_values) for d in self.dimensions)
        self._data = np.zeros(self._shape, dtype=np.float64)
        self._dirty = False  # raw inserts pending compression

    # ------------------------------------------------------------------
    def _compressed(self) -> np.ndarray:
        """The array as the budget allows it to be remembered."""
        if self._dirty:
            coeffs = _threshold(_haar_forward(self._data), self.budget)
            self._data = _haar_inverse(coeffs)
            self._dirty = False
        return self._data

    def _wrap(
        self, dimensions: Sequence[Dimension], data: np.ndarray
    ) -> "WaveletSynopsis":
        out = WaveletSynopsis(dimensions, self.budget)
        out._data[tuple(slice(0, s) for s in data.shape)] = data
        out._dirty = True
        out._compressed()
        return out

    def _index(self, values: Sequence[float]) -> tuple[int, ...]:
        return tuple(int(v) - d.lo for v, d in zip(values, self.dimensions))

    # ------------------------------------------------------------------
    # Synopsis interface
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[float], weight: float = 1.0) -> None:
        self._check_value(values)
        self._data[self._index(values)] += weight
        self._dirty = True

    def total(self) -> float:
        return float(self._compressed().sum())

    def project(self, dims: Sequence[str]) -> "WaveletSynopsis":
        keep = [self.dim_index(d) for d in dims]
        drop = tuple(i for i in range(len(self.dimensions)) if i not in keep)
        reduced = self._compressed().sum(axis=drop) if drop else self._compressed()
        kept_sorted = [i for i in range(len(self.dimensions)) if i in keep]
        perm = [kept_sorted.index(i) for i in keep]
        reduced = np.transpose(reduced, perm)
        new_dims = [self.dimensions[i] for i in keep]
        trimmed = reduced[tuple(slice(0, d.n_values) for d in new_dims)]
        return self._wrap(new_dims, trimmed)

    def union_all(self, other: Synopsis) -> "WaveletSynopsis":
        if not isinstance(other, WaveletSynopsis):
            raise SynopsisError(
                f"cannot union WaveletSynopsis with {type(other).__name__}"
            )
        require_same_dimensions(self, other)
        return self._wrap(self.dimensions, self._compressed() + other._compressed())

    def equijoin(
        self, other: Synopsis, self_dim: str, other_dim: str
    ) -> "WaveletSynopsis":
        """Value-resolution join on the reconstructed joints.

        Negative reconstructed cells (a wavelet-thresholding artifact) are
        clipped to zero before joining, since a bag cannot hold negative
        mass.
        """
        if not isinstance(other, WaveletSynopsis):
            raise SynopsisError(
                f"cannot join WaveletSynopsis with {type(other).__name__}"
            )
        si = self.dim_index(self_dim)
        oi = other.dim_index(other_dim)
        sd, od = self.dimensions[si], other.dimensions[oi]
        out_dims = list(self.dimensions)
        other_keep = [i for i in range(len(other.dimensions)) if i != oi]
        taken = {d.name.lower() for d in out_dims}
        for i in other_keep:
            d = other.dimensions[i]
            name = d.name
            while name.lower() in taken:
                name += "_r"
            taken.add(name.lower())
            out_dims.append(d.renamed(name))

        a = np.clip(self._compressed(), 0.0, None)
        b = np.clip(other._compressed(), 0.0, None)
        a = a[tuple(slice(0, d.n_values) for d in self.dimensions)]
        b = b[tuple(slice(0, d.n_values) for d in other.dimensions)]
        # Align join axes on the shared value range.
        lo, hi = max(sd.lo, od.lo), min(sd.hi, od.hi)
        if lo > hi:
            return self._wrap(out_dims, np.zeros([d.n_values for d in out_dims]))
        a = np.moveaxis(a, si, -1)[..., lo - sd.lo : hi - sd.lo + 1]
        b = np.moveaxis(b, oi, 0)[lo - od.lo : hi - od.lo + 1, ...]
        nj = hi - lo + 1
        a_shape, b_shape = a.shape[:-1], b.shape[1:]
        joined = np.einsum("aj,jb->ajb", a.reshape(-1, nj), b.reshape(nj, -1))
        joined = joined.reshape(a_shape + (nj,) + b_shape)
        joined = np.moveaxis(joined, len(a_shape), si)
        # Re-embed the join axis into self's full value range.
        full = np.zeros(
            [d.n_values for d in self.dimensions]
            + [other.dimensions[i].n_values for i in other_keep]
        )
        idx = [slice(0, s) for s in full.shape]
        idx[si] = slice(lo - sd.lo, hi - sd.lo + 1)
        full[tuple(idx)] = joined
        return self._wrap(out_dims, full)

    def select_range(self, dim: str, lo: int, hi: int) -> "WaveletSynopsis":
        di = self.dim_index(dim)
        d = self.dimensions[di]
        data = self._compressed().copy()
        mask = np.zeros(data.shape[di], dtype=bool)
        a = max(lo, d.lo) - d.lo
        b = min(hi, d.hi) - d.lo
        if a <= b:
            mask[a : b + 1] = True
        shape = [1] * data.ndim
        shape[di] = data.shape[di]
        data *= mask.reshape(shape)
        return self._wrap(self.dimensions, data[tuple(slice(0, s) for s in data.shape)])

    def group_counts(self, dim: str) -> dict[int, float]:
        di = self.dim_index(dim)
        d = self.dimensions[di]
        data = np.clip(self._compressed(), 0.0, None)
        axes = tuple(i for i in range(data.ndim) if i != di)
        marginal = data.sum(axis=axes) if axes else data
        return {
            d.lo + i: float(m)
            for i, m in enumerate(marginal[: d.n_values])
            if m > 0
        }

    def scale(self, factor: float) -> "WaveletSynopsis":
        return self._wrap(self.dimensions, self._compressed() * factor)

    def storage_size(self) -> int:
        return self.budget

    def empty_like(self) -> "WaveletSynopsis":
        return WaveletSynopsis(self.dimensions, self.budget)


class WaveletFactory(SynopsisFactory):
    """Factory for :class:`WaveletSynopsis`."""

    def __init__(self, budget: int = 32) -> None:
        self.budget = budget

    def create(self, dimensions: Sequence[Dimension]) -> WaveletSynopsis:
        return WaveletSynopsis(dimensions, self.budget)

    @property
    def name(self) -> str:
        return f"wavelet(B={self.budget})"
