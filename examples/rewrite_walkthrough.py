#!/usr/bin/env python
"""Walk through the Data Triage query rewrite (paper Sections 4 & 5.1).

Starting from the example query of Section 4.3 (the 3-way equijoin of R, S,
T), this script prints every artifact the rewrite produces — the substream
DDL, the ``Q_kept`` and ``Q_dropped`` views of Figure 4, and the
object-relational shadow view of Figure 5 — then *proves* the rewrite on a
concrete dataset: kept results + dropped results exactly equal the original
query's results, and the differential-algebra evaluation agrees with the
expansion.

Run:  python examples/rewrite_walkthrough.py
"""

from __future__ import annotations

import random

from repro.algebra import DifferentialRelation, Multiset
from repro.experiments import paper_catalog
from repro.rewrite import (
    SPJPlan,
    dropped_view,
    evaluate_differential,
    evaluate_exact,
    evaluate_expansion,
    kept_view,
    shadow_view,
    substream_ddl,
)
from repro.sql import Binder, parse_statement, render_statement

QUERY = "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d;"


def main() -> None:
    catalog = paper_catalog()
    stmt = parse_statement(QUERY)
    plan = SPJPlan.from_bound(Binder(catalog).bind(stmt))

    print("=" * 72)
    print("Step 1 - substream DDL (Section 4.3):")
    print("=" * 72)
    for ddl in substream_ddl(plan):
        print(render_statement(ddl))

    print()
    print("=" * 72)
    print("Step 2 - the kept and dropped views (Figure 4):")
    print("=" * 72)
    print(render_statement(kept_view(plan)))
    print()
    print(render_statement(dropped_view(plan)))

    print()
    print("=" * 72)
    print("Step 3 - the synopsis shadow view (Figure 5):")
    print("=" * 72)
    print(render_statement(shadow_view(plan)))

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("Step 4 - proving the rewrite on data:")
    print("=" * 72)
    rng = random.Random(3)

    def draw(arity):
        return tuple(rng.randint(1, 15) for _ in range(arity))

    full = {
        "R": Multiset(draw(1) for _ in range(80)),
        "S": Multiset(draw(2) for _ in range(80)),
        "T": Multiset(draw(1) for _ in range(80)),
    }
    kept, dropped = {}, {}
    for name, rel in full.items():
        k, d = Multiset(), Multiset()
        for row in rel:
            (k if rng.random() < 0.65 else d).add(row)
        kept[name], dropped[name] = k, d

    exact = evaluate_exact(plan, full)
    kept_result = evaluate_exact(plan, kept)
    lost = evaluate_expansion(plan, kept, dropped)
    print(f"|Q(full)|        = {len(exact)}")
    print(f"|Q_kept|         = {len(kept_result)}")
    print(f"|Q_dropped|      = {len(lost)}")
    assert kept_result + lost == exact
    print("identity Q_kept + Q_dropped == Q(full): HOLDS (bag equality)")

    triples = {
        name: DifferentialRelation.from_kept_and_dropped(kept[name], dropped[name])
        for name in full
    }
    diff, _ = evaluate_differential(plan, triples)
    assert diff.dropped == lost and not diff.added
    print("differential operators agree with the expansion: HOLDS")
    print(
        f"(and Q+ is empty for SPJ queries, as equation 13 promises: "
        f"|Q+| = {len(diff.added)})"
    )


if __name__ == "__main__":
    main()
