"""Time windows for continuous queries.

TelegraphCQ queries declare per-stream windows (``WINDOW R ['1 second']``).
The Data Triage experiments use windows whose *width is scaled with the data
rate* so the expected number of tuples per window stays constant (paper
Section 6.2.1); results are produced once per window.  That behaviour is
tumbling-window semantics, which is the default here; hopping (overlapping)
windows are supported for completeness.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.engine.types import StreamTuple


@dataclass(frozen=True)
class WindowSpec:
    """A time window: ``width`` seconds, advancing by ``slide`` seconds.

    ``slide == width`` (the default) gives tumbling windows; ``slide < width``
    gives overlapping (hopping) windows, in which case a tuple belongs to
    several windows.
    """

    width: float
    slide: float | None = None

    #: Memoized ``ids()`` entries kept before the cache is reset.
    IDS_CACHE_SIZE = 65536

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"window width must be positive, got {self.width}")
        if self.slide is not None and self.slide <= 0:
            raise ValueError(f"window slide must be positive, got {self.slide}")
        # Frozen dataclass: the memo dict must be installed via object.
        object.__setattr__(self, "_ids_cache", {})

    def __getstate__(self):
        # Don't ship the memo to pickles (process-pool workers rebuild it).
        state = dict(self.__dict__)
        state["_ids_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_ids_cache", {})

    @property
    def hop(self) -> float:
        return self.slide if self.slide is not None else self.width

    # ------------------------------------------------------------------
    def window_ids(self, timestamp: float) -> Iterator[int]:
        """All window ids containing ``timestamp``.

        Window ``i`` covers ``[i * hop, i * hop + width)``.
        """
        last = math.floor(timestamp / self.hop)
        first = math.floor((timestamp - self.width) / self.hop) + 1
        for i in range(max(first, 0) if timestamp >= 0 else first, last + 1):
            if i * self.hop <= timestamp < i * self.hop + self.width:
                yield i

    def ids(self, timestamp: float) -> tuple[int, ...]:
        """Memoized :meth:`window_ids` as a tuple.

        The pipeline event loops ask for a tuple's windows 3–4 times on its
        way through triage (offer, shed, drain, completion accounting); the
        answer depends only on ``timestamp``, so the hot paths use this
        cached form.  Delegates to ``window_ids`` for the arithmetic so the
        two can never disagree.
        """
        cache = self._ids_cache
        out = cache.get(timestamp)
        if out is None:
            if len(cache) >= self.IDS_CACHE_SIZE:
                cache.clear()
            out = cache[timestamp] = tuple(self.window_ids(timestamp))
        return out

    def primary_window(self, timestamp: float) -> int:
        """The most recent window containing ``timestamp`` (tumbling: *the* window)."""
        return math.floor(timestamp / self.hop)

    def bounds(self, window_id: int) -> tuple[float, float]:
        """``[start, end)`` of a window."""
        start = window_id * self.hop
        return (start, start + self.width)

    def __str__(self) -> str:
        if self.slide is None or self.slide == self.width:
            return f"[{self.width} seconds]"
        return f"[{self.width} seconds, slide {self.slide}]"


def assign_windows(
    tuples: Iterable[StreamTuple], spec: WindowSpec
) -> dict[int, list[StreamTuple]]:
    """Partition a tuple sequence into windows (tuples may repeat when hopping)."""
    out: dict[int, list[StreamTuple]] = {}
    for t in tuples:
        for wid in spec.window_ids(t.timestamp):
            out.setdefault(wid, []).append(t)
    return out


def parse_window_clause(text: str) -> WindowSpec:
    """Parse TelegraphCQ-style interval strings like ``'1 second'`` / ``'500 ms'``."""
    parts = text.strip().strip("'").split()
    if len(parts) == 1:
        return WindowSpec(width=float(parts[0]))
    if len(parts) != 2:
        raise ValueError(f"cannot parse window interval {text!r}")
    value = float(parts[0])
    unit = parts[1].lower().rstrip("s") or "second"
    scale = {
        "m": 1e-3,  # '500 ms' -> rstrip('s') leaves 'm'
        "millisecond": 1e-3,
        "second": 1.0,
        "sec": 1.0,
        "minute": 60.0,
        "min": 60.0,
        "hour": 3600.0,
    }
    try:
        return WindowSpec(width=value * scale[unit])
    except KeyError:
        raise ValueError(f"unknown time unit in window interval {text!r}") from None
