"""Tests for the triage queue."""

import pytest

from repro.core import RandomDropPolicy, TailDropPolicy, TriageQueue
from repro.engine import StreamTuple, WindowSpec
from repro.synopses import Dimension, SparseHistogramFactory


def make_queue(capacity=3, summarize=True, policy=None, width=1):
    return TriageQueue(
        name="R",
        dimensions=[Dimension("R.a", 1, 100)],
        dim_positions=[0],
        capacity=capacity,
        policy=policy or TailDropPolicy(),
        synopsis_factory=SparseHistogramFactory(bucket_width=width),
        window=WindowSpec(width=1.0),
        summarize=summarize,
        seed=1,
    )


def t(ts, v):
    return StreamTuple(ts, (v,))


class TestBuffering:
    def test_fifo_below_capacity(self):
        q = make_queue()
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        assert len(q) == 2
        assert q.poll().row == (1,)
        assert q.poll().row == (2,)
        assert q.poll() is None

    def test_peek_timestamp(self):
        q = make_queue()
        assert q.peek_timestamp() is None
        q.offer(t(0.5, 1))
        assert q.peek_timestamp() == 0.5

    def test_is_full(self):
        q = make_queue(capacity=2)
        q.offer(t(0.1, 1))
        assert not q.is_full
        q.offer(t(0.2, 2))
        assert q.is_full

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_queue(capacity=0)

    def test_dim_alignment_validation(self):
        with pytest.raises(ValueError, match="align"):
            TriageQueue(
                "R",
                [Dimension("a", 1, 10)],
                [0, 1],
                capacity=2,
                policy=TailDropPolicy(),
                synopsis_factory=SparseHistogramFactory(),
                window=WindowSpec(width=1.0),
            )


class TestOverflow:
    def test_tail_drop_sheds_incoming(self):
        q = make_queue(capacity=2)
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        q.offer(t(0.3, 3))  # overflow: tail policy sheds the new tuple
        assert [q.poll().row for _ in range(2)] == [(1,), (2,)]
        assert q.stats.dropped == 1

    def test_random_policy_sheds_someone(self):
        q = make_queue(capacity=2, policy=RandomDropPolicy())
        for i in range(10):
            q.offer(t(i / 10, i + 1))
        assert len(q) == 2
        assert q.stats.dropped == 8

    def test_dropped_tuples_synopsized_per_window(self):
        q = make_queue(capacity=1)
        q.offer(t(0.1, 5))
        q.offer(t(0.2, 6))  # dropped in window 0
        q.offer(t(1.5, 7))  # buffered... full -> dropped in window 1
        ws0 = q.window_synopsis(0)
        ws1 = q.window_synopsis(1)
        assert ws0.dropped_count == 1
        assert ws0.synopsis.group_counts("R.a") == {6: 1.0}
        assert ws1.dropped_count == 1
        assert ws1.synopsis.group_counts("R.a") == {7: 1.0}

    def test_window_attribution_by_victim_timestamp(self):
        # Queue holds an old tuple; a new-window arrival evicts it (head
        # policy): the victim belongs to ITS OWN window's synopsis.
        from repro.core import HeadDropPolicy

        q = make_queue(capacity=1, policy=HeadDropPolicy())
        q.offer(t(0.5, 5))
        q.offer(t(1.5, 6))  # evicts the 0.5s tuple
        assert q.window_synopsis(0).dropped_count == 1
        assert q.window_synopsis(1).dropped_count == 0

    def test_earliest_latest_bounds(self):
        q = make_queue(capacity=1)
        q.offer(t(0.1, 1))
        q.offer(t(0.3, 2))
        q.offer(t(0.7, 3))
        ws = q.window_synopsis(0)
        assert ws.earliest == pytest.approx(0.3)
        assert ws.latest == pytest.approx(0.7)

    def test_drop_only_mode_skips_synopses(self):
        q = make_queue(capacity=1, summarize=False)
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        ws = q.window_synopsis(0)
        assert ws.dropped_count == 1
        assert ws.synopsis is None


class TestStatsAndLifecycle:
    def test_stats_counters(self):
        q = make_queue(capacity=2)
        for i in range(5):
            q.offer(t(i / 10, i))
        q.poll()
        s = q.stats
        assert s.offered == 5
        assert s.dropped == 3
        assert s.polled == 1
        assert s.overflows == 3
        assert s.high_watermark == 2
        assert s.drop_fraction == pytest.approx(0.6)

    def test_drop_fraction_empty(self):
        assert make_queue().stats.drop_fraction == 0.0

    def test_release_window_forgets(self):
        q = make_queue(capacity=1)
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        ws = q.release_window(0)
        assert ws.dropped_count == 1
        assert q.window_synopsis(0).dropped_count == 0
        assert q.windows_with_drops() == []

    def test_windows_with_drops(self):
        q = make_queue(capacity=1)
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        q.offer(t(3.5, 3))
        q.offer(t(3.6, 4))
        assert q.windows_with_drops() == [0, 3]

    def test_drain(self):
        q = make_queue()
        q.offer(t(0.1, 1))
        q.offer(t(0.2, 2))
        rows = q.drain()
        assert [x.row for x in rows] == [(1,), (2,)]
        assert len(q) == 0

    def test_empty_window_synopsis(self):
        ws = make_queue().window_synopsis(42)
        assert ws.synopsis is None
        assert ws.dropped_count == 0
        assert ws.earliest is None and ws.latest is None
