"""End-to-end server tests over real TCP, on a deterministic manual clock.

Every test runs its own server on an OS-assigned port with the background
ticker disabled; the test advances the window clock and calls
``server.tick()`` itself, so engine budgets, window closes, and latencies
are all reproducible.
"""

import asyncio
import contextlib

import pytest

from repro.core.strategies import PipelineConfig
from repro.engine.window import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.service import ServiceConfig, ServiceError, TriageClient, TriageServer
from repro.service.protocol import PROTOCOL_VERSION, encode_frame, read_frame

QUERY_R_ONLY = "SELECT a, COUNT(*) AS n FROM R GROUP BY a;"


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@contextlib.asynccontextmanager
async def serve(
    query=QUERY_R_ONLY,
    *,
    queue_capacity=10,
    service_time=0.01,
    window=1.0,
    **service_kwargs,
):
    clock = ManualClock()
    config = PipelineConfig(
        window=WindowSpec(width=window),
        queue_capacity=queue_capacity,
        service_time=service_time,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=clock, **service_kwargs)
    server = TriageServer(paper_catalog(), query, config, service)
    await server.start()
    server.clock = clock  # test-side handle
    try:
        yield server
    finally:
        await server.shutdown()


async def connect(server, name="test") -> TriageClient:
    return await TriageClient.connect("127.0.0.1", server.port, client_name=name)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
class TestHandshake:
    def test_welcome_carries_schemas_and_window(self):
        async def scenario():
            async with serve(window=2.0) as server:
                client = await connect(server)
                assert client.info["version"] == PROTOCOL_VERSION
                assert client.info["streams"]["R"] == [["a", "integer"]]
                assert client.info["window"]["width"] == 2.0
                await client.close()

        run(scenario())

    def test_version_mismatch_refused(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame({"type": "HELLO", "version": 99}))
                await writer.drain()
                reply = await read_frame(reader)
                assert reply["type"] == "ERROR"
                assert reply["code"] == "version-mismatch"
                assert reply["fatal"]
                writer.close()

        run(scenario())

    def test_first_frame_must_be_hello(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame({"type": "SUBSCRIBE"}))
                await writer.drain()
                reply = await read_frame(reader)
                assert reply["code"] == "hello-required"
                writer.close()

        run(scenario())

    def test_admission_control_max_sessions(self):
        async def scenario():
            async with serve(max_sessions=1) as server:
                first = await connect(server)
                with pytest.raises(ServiceError) as exc:
                    await connect(server)
                assert exc.value.code == "too-many-sessions"
                reject = server.metrics.get("service_admission_rejects_total")
                assert reject.value(reason="too-many-sessions") == 1
                await first.close()
                # Slot freed: a new session is admitted again.
                await asyncio.sleep(0.05)
                second = await connect(server)
                await second.close()

        run(scenario())


# ---------------------------------------------------------------------------
class TestPublishing:
    def test_exact_results_when_under_capacity(self):
        async def scenario():
            async with serve(queue_capacity=100) as server:
                client = await connect(server)
                await client.declare("R")
                await client.subscribe()
                rows = [[1]] * 4 + [[2]] * 3
                ack = await client.publish(
                    "R", rows, timestamps=[0.1 * i for i in range(7)]
                )
                assert ack["accepted"] == 7
                assert ack["queue_dropped_total"] == 0
                server.clock.t = 3.0
                emitted = await server.tick()
                assert len(emitted) == 1
                result = await client.next_result(timeout=2)
                groups = {tuple(g["key"]): g for g in result["groups"]}
                assert groups[(1,)]["aggs"]["n"] == 4
                assert groups[(2,)]["aggs"]["n"] == 3
                est = groups[(1,)]["estimated"]
                assert est is None or est.get("n", 0) == 0
                assert result["dropped"] == {"R": 0}
                await client.close()

        run(scenario())

    def test_declare_required_before_publish(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server)
                with pytest.raises(ServiceError) as exc:
                    await client.publish("R", [[1]])
                assert exc.value.code == "undeclared-stream"
                await client.close()

        run(scenario())

    def test_unknown_stream_refused(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server)
                with pytest.raises(ServiceError) as exc:
                    await client.declare("XYZ")
                assert exc.value.code == "unknown-stream"
                await client.close()

        run(scenario())

    def test_bad_row_refused(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server)
                await client.declare("R")
                with pytest.raises(ServiceError) as exc:
                    await client.publish("R", [[1, 2, 3]])  # wrong arity
                assert exc.value.code == "bad-row"
                with pytest.raises(ServiceError):
                    await client.publish("R", [["not-an-int"]])
                await client.close()

        run(scenario())

    def test_rate_limit_refuses_excess(self):
        async def scenario():
            async with serve(rate_limit=10.0, rate_burst=10.0) as server:
                client = await connect(server)
                await client.declare("R")
                await client.publish("R", [[1]] * 10, timestamps=[0.0] * 10)
                with pytest.raises(ServiceError) as exc:
                    await client.publish("R", [[1]], timestamps=[0.0])
                assert exc.value.code == "rate-limited"
                # The window clock advances; tokens come back.
                server.clock.t = 1.0
                ack = await client.publish("R", [[1]] * 5, timestamps=[0.5] * 5)
                assert ack["accepted"] == 5
                rejects = server.metrics.get("service_admission_rejects_total")
                assert rejects.value(reason="rate-limited") == 1
                await client.close()

        run(scenario())

    def test_late_rows_counted_not_queued(self):
        async def scenario():
            async with serve() as server:
                client = await connect(server)
                await client.declare("R")
                await client.subscribe()
                await client.publish("R", [[1]], timestamps=[0.5])
                server.clock.t = 2.0
                await server.tick()  # closes window 0
                ack = await client.publish("R", [[9]], timestamps=[0.4])
                assert ack["accepted"] == 0
                assert ack["late"] == 1
                late = server.metrics.get("service_late_rows_total")
                assert late.value(stream="R") == 1
                await client.close()

        run(scenario())


# ---------------------------------------------------------------------------
class TestOverload:
    def test_overload_sheds_into_synopses_not_buffers(self):
        async def scenario():
            async with serve(queue_capacity=10, service_time=0.01) as server:
                client = await connect(server)
                await client.declare("R")
                await client.subscribe()
                # 300 tuples into a 1s window: engine capacity is 100/s, the
                # queue holds 10 — most of the burst must be shed.
                ts = [i / 300 for i in range(300)]
                ack = await client.publish(
                    "R", [[1 + (i % 4)] for i in range(300)], timestamps=ts
                )
                assert ack["accepted"] == 300
                assert ack["queue_depth"] <= 10  # bounded buffering
                queue = server.queues["R"]
                assert queue.stats.high_watermark <= 10
                assert queue.stats.dropped > 0

                server.clock.t = 2.0
                emitted = await server.tick()
                assert len(emitted) == 1
                result = await client.next_result(timeout=2)
                # Shed tuples were summarized, not lost: the composite
                # answer carries their estimated mass, and accounting adds up.
                assert result["arrived"]["R"] == 300
                assert result["kept"]["R"] + result["dropped"]["R"] == 300
                assert result["dropped"]["R"] > 0
                estimated_mass = sum(
                    g["estimated"]["n"]
                    for g in result["groups"]
                    if g["estimated"]
                )
                merged_mass = sum(g["aggs"]["n"] for g in result["groups"])
                assert estimated_mass > 0
                assert merged_mass == pytest.approx(300, rel=0.05)

                drops = server.metrics.get("triage_drops_total")
                summarized = server.metrics.get("triage_summarized_total")
                assert drops.value(stream="R") == result["dropped"]["R"]
                assert summarized.value(stream="R") == drops.value(stream="R")
                await client.close()

        run(scenario())

    def test_every_window_of_a_sustained_burst_reports(self):
        async def scenario():
            async with serve(queue_capacity=5, service_time=0.05) as server:
                client = await connect(server)
                await client.declare("R")
                await client.subscribe()
                for w in range(3):
                    ts = [w + i / 60 for i in range(60)]
                    await client.publish(
                        "R", [[1 + (i % 3)] for i in range(60)], timestamps=ts
                    )
                    server.clock.t = w + 1.0
                    await server.tick()
                server.clock.t = 10.0
                await server.tick()
                windows = []
                for _ in range(3):
                    result = await client.next_result(timeout=2)
                    windows.append(result["window"])
                    assert result["arrived"]["R"] == 60
                    assert (
                        result["kept"]["R"] + result["dropped"]["R"] == 60
                    )
                assert windows == [0, 1, 2]
                await client.close()

        run(scenario())

    def test_queue_depth_and_latency_histograms_populated(self):
        async def scenario():
            async with serve(queue_capacity=10, service_time=0.01) as server:
                client = await connect(server)
                await client.declare("R")
                await client.publish(
                    "R", [[1]] * 50, timestamps=[i / 50 for i in range(50)]
                )
                server.clock.t = 1.5
                await server.tick()
                depth = server.metrics.get("triage_queue_depth")
                latency = server.metrics.get("window_latency_seconds")
                assert depth.count(stream="R") > 0
                assert latency.count() == 1
                assert latency.sum() >= 0.5  # closed at 1.5, window ended at 1.0
                await client.close()

        run(scenario())


# ---------------------------------------------------------------------------
class TestStats:
    def test_json_stats_summary(self):
        async def scenario():
            async with serve(queue_capacity=5) as server:
                client = await connect(server)
                await client.declare("R")
                await client.publish(
                    "R", [[1]] * 20, timestamps=[i / 20 for i in range(20)]
                )
                stats = await client.stats()
                assert stats["summary"]["offered"] == 20
                assert stats["summary"]["dropped"] > 0
                assert 0 < stats["summary"]["drop_fraction"] < 1
                assert stats["summary"]["sessions"] == 1
                assert stats["metrics"]["triage_drops_total"]["values"]["R"] > 0
                await client.close()

        run(scenario())

    def test_prometheus_stats(self):
        async def scenario():
            async with serve(queue_capacity=5) as server:
                client = await connect(server)
                await client.declare("R")
                await client.publish(
                    "R", [[1]] * 20, timestamps=[i / 20 for i in range(20)]
                )
                server.clock.t = 2.0
                await server.tick()
                stats = await client.stats(format="prometheus")
                text = stats["prometheus"]
                assert "# TYPE triage_drops_total counter" in text
                assert 'triage_drops_total{stream="R"} 15' in text
                assert "# TYPE triage_queue_depth histogram" in text
                assert "# TYPE window_latency_seconds histogram" in text
                assert "window_latency_seconds_count 1" in text
                await client.close()

        run(scenario())


# ---------------------------------------------------------------------------
class TestProtocolRobustness:
    def test_malformed_frame_gets_error_connection_survives(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_frame({"type": "HELLO", "version": PROTOCOL_VERSION})
                )
                await writer.drain()
                welcome = await read_frame(reader)
                assert welcome["type"] == "WELCOME"
                writer.write(b"this is not json\n")
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "ERROR"
                assert error["code"] == "bad-json"
                assert not error["fatal"]
                # Still alive: a valid frame gets a normal reply.
                writer.write(encode_frame({"type": "DECLARE", "stream": "R"}))
                await writer.drain()
                ok = await read_frame(reader)
                assert ok["type"] == "OK"
                errors = server.metrics.get("service_protocol_errors_total")
                assert errors.value(code="bad-json") == 1
                writer.close()

        run(scenario())

    def test_server_frame_type_from_client_is_refused(self):
        async def scenario():
            async with serve() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    encode_frame({"type": "HELLO", "version": PROTOCOL_VERSION})
                )
                await writer.drain()
                await read_frame(reader)
                writer.write(
                    encode_frame({"type": "RESULT", "window": 0, "groups": []})
                )
                await writer.drain()
                error = await read_frame(reader)
                assert error["code"] == "unexpected-type"
                writer.close()

        run(scenario())


# ---------------------------------------------------------------------------
class TestGracefulShutdown:
    def test_shutdown_drains_queues_and_flushes_windows(self):
        async def scenario():
            async with serve(queue_capacity=10, service_time=0.01) as server:
                client = await connect(server)
                await client.declare("R")
                await client.subscribe()
                await client.publish(
                    "R",
                    [[1 + (i % 2)] for i in range(40)],
                    timestamps=[i / 40 for i in range(40)],
                )
                # No tick: the window is still open and the queue still
                # holds a backlog when shutdown begins.
                await server.shutdown()
                result = await client.next_result(timeout=2)
                assert result["window"] == 0
                # The final drain processed the whole backlog: kept+dropped
                # covers every arrival, queues are empty.
                assert result["kept"]["R"] + result["dropped"]["R"] == 40
                assert all(len(q) == 0 for q in server.queues.values())
                # The results iterator then terminates (server said BYE).
                assert await client.next_result(timeout=2) is None
                await client.close()

        run(scenario())

    def test_shutdown_is_idempotent(self):
        async def scenario():
            async with serve() as server:
                await server.shutdown()
                await server.shutdown()

        run(scenario())


# ---------------------------------------------------------------------------
class TestThreeWayJoinService:
    def test_paper_query_served_end_to_end(self):
        async def scenario():
            async with serve(PAPER_QUERY, queue_capacity=50) as server:
                client = await connect(server)
                for stream in ("R", "S", "T"):
                    await client.declare(stream)
                await client.subscribe()
                ts = [i / 30 for i in range(30)]
                await client.publish(
                    "R", [[1 + (i % 3)] for i in range(30)], timestamps=ts
                )
                await client.publish(
                    "S", [[1 + (i % 3), 5] for i in range(30)], timestamps=ts
                )
                await client.publish("T", [[5]] * 30, timestamps=ts)
                server.clock.t = 3.0
                await server.tick()
                result = await client.next_result(timeout=2)
                assert result["group_names"] == ["a"]
                assert result["arrived"] == {"R": 30, "S": 30, "T": 30}
                total = sum(g["aggs"]["count"] for g in result["groups"])
                # 10 R-tuples per a-value join 10 S (b=a) with c=5, each
                # joining all 30 T tuples: 10*10*30 per group, 3 groups.
                assert total == 10 * 10 * 30 * 3
                await client.close()

        run(scenario())
