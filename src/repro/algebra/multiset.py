"""Multiset (bag) relations.

The differential relational algebra of the Data Triage paper (Section 3) is
defined over *multisets*: the invariant ``S_noisy == S + S_added - S_dropped``
uses multiset union (``+``, bag sum) and multiset difference (``-``, monus:
per-row counts saturate at zero).  This module provides the ``Multiset``
relation type that every algebraic and rewrite-level component is built on.

Rows are plain Python tuples of scalar values; the multiset stores each
distinct row with an integer multiplicity.  The representation is
schema-agnostic — arity checking is the caller's concern (the engine layer
attaches :class:`repro.engine.types.Schema` objects to relations).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Any

Row = tuple[Any, ...]


class Multiset:
    """A multiset of rows with bag-algebra operations.

    Supports the operations the differential algebra needs:

    * ``a + b`` — bag union (multiplicities add),
    * ``a - b`` — bag difference / monus (multiplicities subtract,
      saturating at zero),
    * ``a & b`` — bag intersection (minimum multiplicity),
    * equality, iteration with multiplicity, and cardinality.
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, rows: Iterable[Row] = ()) -> None:
        # Counter(iterable) counts in C; insertion order (first occurrence)
        # matches the incremental loop it replaces.
        counts: Counter[Row] = Counter(rows)
        self._counts = counts
        # Cardinality is maintained incrementally: __len__ runs once per
        # source per window in evaluate_windows, so summing the Counter
        # there is a hot-path cost.
        self._total = sum(counts.values())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, counts: dict[Row, int]) -> "Multiset":
        """Build directly from a ``{row: multiplicity}`` mapping.

        Raises ``ValueError`` on negative multiplicities; zero entries are
        elided so that equality is canonical.
        """
        out = cls()
        for row, n in counts.items():
            if n < 0:
                raise ValueError(f"negative multiplicity {n} for row {row!r}")
            if n:
                out._counts[row] = n
                out._total += n
        return out

    def copy(self) -> "Multiset":
        out = Multiset()
        out._counts = Counter(self._counts)
        out._total = self._total
        return out

    # ------------------------------------------------------------------
    # Mutation (used by operators building results incrementally)
    # ------------------------------------------------------------------
    def add(self, row: Row, count: int = 1) -> None:
        """Add ``count`` copies of ``row`` to the multiset."""
        if count < 0:
            raise ValueError(f"cannot add a negative count ({count})")
        if count:
            self._counts[row] += count
            self._total += count

    def discard(self, row: Row, count: int = 1) -> int:
        """Remove up to ``count`` copies of ``row``; return how many were removed."""
        if count < 0:
            raise ValueError(f"cannot discard a negative count ({count})")
        have = self._counts.get(row, 0)
        removed = min(have, count)
        if removed == have:
            self._counts.pop(row, None)
        else:
            self._counts[row] = have - removed
        self._total -= removed
        return removed

    # ------------------------------------------------------------------
    # Bag algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Multiset") -> "Multiset":
        """Bag union: multiplicities add (SQL ``UNION ALL``)."""
        out = self.copy()
        for row, n in other._counts.items():
            out._counts[row] += n
        out._total = self._total + other._total
        return out

    def __sub__(self, other: "Multiset") -> "Multiset":
        """Bag difference (monus): multiplicities subtract, floor at zero."""
        out = Multiset()
        for row, n in self._counts.items():
            m = n - other._counts.get(row, 0)
            if m > 0:
                out._counts[row] = m
                out._total += m
        return out

    def __and__(self, other: "Multiset") -> "Multiset":
        """Bag intersection: per-row minimum multiplicity."""
        out = Multiset()
        small, large = (
            (self, other) if len(self._counts) <= len(other._counts) else (other, self)
        )
        for row, n in small._counts.items():
            m = min(n, large._counts.get(row, 0))
            if m > 0:
                out._counts[row] = m
                out._total += m
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def multiplicity(self, row: Row) -> int:
        """Number of copies of ``row`` in the multiset (0 if absent)."""
        return self._counts.get(row, 0)

    def support(self) -> set[Row]:
        """The set of distinct rows."""
        return set(self._counts)

    def counts(self) -> dict[Row, int]:
        """A copy of the ``{row: multiplicity}`` mapping."""
        return dict(self._counts)

    def __len__(self) -> int:
        """Total cardinality (maintained incrementally, O(1))."""
        return self._total

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __contains__(self, row: Row) -> bool:
        return row in self._counts

    def __iter__(self) -> Iterator[Row]:
        """Iterate rows with multiplicity (each copy yielded separately)."""
        for row, n in self._counts.items():
            for _ in range(n):
                yield row

    def rows_list(self) -> list[Row]:
        """All rows with multiplicity as one list, same order as ``__iter__``.

        The batch-execution path reads whole inputs at once; building the
        list here (extend for the duplicated rows) avoids the per-copy
        generator resumption of ``list(self)``.
        """
        out: list[Row] = []
        append = out.append
        extend = out.extend
        for row, n in self._counts.items():
            if n == 1:
                append(row)
            else:
                extend([row] * n)
        return out

    def items(self) -> Iterator[tuple[Row, int]]:
        """Iterate ``(row, multiplicity)`` pairs (no copy)."""
        return iter(self._counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("Multiset is mutable and unhashable")

    def __repr__(self) -> str:
        total = len(self)
        distinct = len(self._counts)
        return f"Multiset(|rows|={total}, |support|={distinct})"
