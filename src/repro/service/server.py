"""The asyncio streaming service: triage at the network edge.

Paper Figure 1 places triage queues *between the data sources and the
query processor*; this module is that boundary as a long-running TCP
server.  Each connection's PUBLISH batches feed per-stream
:class:`~repro.core.triage_queue.TriageQueue` instances, so a burst that
outruns the engine sheds into per-window synopses instead of growing an
unbounded socket buffer.  A window ticker emulates the engine (a fixed
``service_time`` per tuple, exactly like the virtual-clock pipeline),
closes windows as the clock passes them, evaluates the exact + shadow
plans via :meth:`DataTriagePipeline.evaluate_window`, and fans the merged
composite result out to every subscriber.

Design notes
------------

* **Bounded everywhere.**  Inbound frames are size-limited, publish
  batches are row-limited and rate-capped per session, the triage queues
  are the *only* tuple buffering (capacity-bounded, overflow synopsized),
  and each subscriber has a bounded outbound queue whose overflow evicts
  the subscriber.  No path buffers without bound.
* **Virtual or wall clock.**  By default window time is
  ``loop.time() - t0`` (seconds since server start) and tuples without
  explicit timestamps are stamped on arrival.  Tests and deterministic
  deployments inject ``ServiceConfig.clock`` and drive :meth:`tick`
  directly (``tick_interval=None`` disables the background ticker).
* **Windows close in order.**  A window is closed once the clock passes
  its end (plus ``grace``) *and* every queue's head has moved past it, so
  backlogged-but-kept tuples still land in their window; the close
  latency this imposes is bounded by ``capacity * service_time`` — the
  staleness bound the paper's queue sizing argues for — and is recorded
  in the ``window_latency_seconds`` histogram.  Rows arriving for an
  already-closed window are counted late and discarded.
* **Serving requires an aggregate query** (GROUP BY + aggregates): that is
  what composite merge produces per window.  Raw-mode queries are a
  compile-time error here.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.controller import LoadController
from repro.core.pipeline import DataTriagePipeline
from repro.core.strategies import PipelineConfig
from repro.core.triage_queue import TriageQueue
from repro.engine.catalog import Catalog
from repro.engine.types import SchemaError
from repro.obs.audit import DropLedger, attribute_reports
from repro.obs.metrics import DeltaSnapshotter
from repro.obs.report import WindowReport, summarize_reports
from repro.obs.slo import SLOEngine, audit_service_slos, default_service_slos
from repro.service import protocol
from repro.service.dataplane import StreamDataPlane
from repro.service.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.service.protocol import ProtocolError, read_frame
from repro.service.session import AdmissionError, Session, SessionRegistry
from repro.sql.ast import PatternStmt, SelectStmt
from repro.sql.binder import Binder, BoundPattern, BoundQuery
from repro.sql.parser import parse_statement

__all__ = ["ServiceConfig", "TriageServer"]

#: Queue-depth histogram buckets (tuples, not seconds).
DEPTH_BUCKETS = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

#: Trace contexts remembered (and echoed on RESULT) per open window.
MAX_WINDOW_TRACES = 64


@dataclass
class ServiceConfig:
    """Network-side knobs (engine-side knobs live in PipelineConfig)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick (the bound port is `server.port`)
    #: Background tick period in *real* seconds; None disables the ticker
    #: (tests then call :meth:`TriageServer.tick` themselves).
    tick_interval: float | None = 0.05
    #: Extra window-clock seconds to wait before closing a window.
    grace: float = 0.0
    max_sessions: int = 64
    #: Per-session publish cap, rows/second (None = uncapped).
    rate_limit: float | None = None
    rate_burst: float | None = None  # default: one second's worth of tokens
    #: Outbound frames buffered per session before it is evicted as slow.
    send_queue_frames: int = 64
    #: Window clock override: a zero-arg callable returning seconds.
    clock: Callable[[], float] | None = None
    #: Window-clock seconds between TELEMETRY pushes (and SLO evaluations).
    #: A SUBSCRIBE may request a shorter interval; None disables telemetry.
    telemetry_interval: float | None = 1.0
    #: SLO objectives to score; None means :func:`default_service_slos`
    #: scaled to the served query's window width.
    slos: list | None = None
    #: Shard worker processes for the triage data plane.  1 (the default)
    #: keeps triage in-process (the serial fallback); N > 1 hash-partitions
    #: the stream sources across N forked workers, each with its own
    #: queues, drop policies, and engine drain budget (see
    #: :mod:`repro.service.shard`).  Results are byte-identical either way.
    shards: int = 1
    #: Shed-provenance audit ledger (see :mod:`repro.obs.audit`).  Off by
    #: default: the ledger is opt-in observability and, when off, the hot
    #: paths carry no audit branches beyond a single ``is not None`` check,
    #: so results and drop decisions are byte-identical either way.
    audit: bool = False
    #: Audit event-ring capacity (sampled exemplars retained), and the
    #: per-``(stream, kind)`` reservoir size for tuple exemplars.
    audit_ring: int = 1024
    audit_exemplars: int = 4
    #: Continuous sampling-profiler rate in Hz; None (default) disables
    #: profiling.  Like audit, profiling is opt-in observability: sampling
    #: runs on a daemon thread (workers sample locally and ship deltas),
    #: so results, drop decisions, and replies are byte-identical either
    #: way.  Enables the STATS/TELEMETRY ``prof`` block and live capture.
    profile_hz: float | None = None

    def __post_init__(self) -> None:
        if self.tick_interval is not None and self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive or None")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.audit_ring < 1:
            raise ValueError("audit_ring must be >= 1")
        if self.audit_exemplars < 0:
            raise ValueError("audit_exemplars must be >= 0")
        if self.profile_hz is not None and not self.profile_hz > 0:
            raise ValueError(f"profile_hz must be > 0: {self.profile_hz}")
        if self.grace < 0:
            raise ValueError("grace must be >= 0")
        if self.telemetry_interval is not None and self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive or None")


class TriageServer:
    """One continuous query served over TCP with edge triage."""

    def __init__(
        self,
        catalog: Catalog,
        query: "str | SelectStmt | BoundQuery",
        config: PipelineConfig | None = None,
        service: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        domains: dict[str, tuple[int, int]] | None = None,
        obs=None,
    ) -> None:
        """``obs`` (a :class:`repro.obs.Observability`) attaches tracing and
        per-window phase timing to window evaluation; when ``metrics`` is not
        given, the server then shares ``obs.registry`` so one STATS snapshot
        carries both layers.
        """
        self.config = config or PipelineConfig()
        self.service = service or ServiceConfig()
        self.obs = obs
        self.pipeline = DataTriagePipeline(
            catalog, query, self.config, domains, obs=obs
        )
        if self.pipeline.merge_spec is None:
            raise ValueError(
                "the service serves grouped aggregate queries; "
                "raw-mode (non-aggregate) queries have no per-window merge"
            )
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = obs.registry if obs is not None else MetricsRegistry()
        self._build_instruments()
        #: Rolling per-window accuracy/latency reports (newest last),
        #: exported in the STATS reply.
        self._window_reports: deque[WindowReport] = deque(maxlen=128)

        #: Shed-provenance audit ledger (None when auditing is off).  The
        #: coordinator ledger is the single source of truth: the serial
        #: plane's queues write to it directly; shard workers keep their
        #: own ledgers and ship state back at window close (see
        #: :meth:`ShardedDataPlane.collect`).
        self.audit: DropLedger | None = None
        if self.service.audit:
            self.audit = DropLedger(
                capacity=self.service.audit_ring,
                exemplars=self.service.audit_exemplars,
                seed=self.config.seed,
                metrics=self.metrics,
            )
        #: Recent attribution records (newest last) for STATS / `repro audit`.
        self._audit_attributions: deque[dict] = deque(maxlen=128)
        #: Attribution records accumulated since the last TELEMETRY push.
        self._pending_audit: list[dict] = []

        #: Continuous sampling profiler (None when profiling is off).  The
        #: coordinator profiler is the merge target: the serial plane runs
        #: under it directly; shard workers sample locally and ship
        #: collapsed deltas that :meth:`ShardedDataPlane.prof_sync` absorbs
        #: here, so its total sample count is the fleet-wide total.
        self.prof = None
        if self.service.profile_hz is not None:
            from repro.obs.prof import SamplingProfiler

            self.prof = SamplingProfiler(
                self.service.profile_hz, metrics=self.metrics
            )
            self.pipeline.prof = self.prof

        # SLO scoring: every closed window feeds measurements; evaluation
        # happens on the telemetry cadence (see tick()).
        slos = (
            self.service.slos
            if self.service.slos is not None
            else default_service_slos(self.config.window.width)
        )
        if self.audit is not None:
            # Only append when auditing so an audit-off server's SLO set
            # (and therefore its STATS/TELEMETRY payloads) is unchanged.
            slos = list(slos) + audit_service_slos(self.config.window.width)
        self.slo = SLOEngine(slos, self.metrics)
        self._snapshotter = DeltaSnapshotter(self.metrics)
        self._telemetry_seq = 0
        self._last_telemetry: float | None = None
        self._telemetry_interval = self.service.telemetry_interval
        #: Window reports accumulated since the last TELEMETRY push.
        self._pending_reports: list[dict] = []
        #: Distributed-trace contexts attributed to still-open windows,
        #: echoed on the window's RESULT frame (bounded per window).
        self._window_traces: dict[int, list[dict]] = {}

        self._sources = self.pipeline.sources
        self._source_by_lower = {s.lower(): s for s in self._sources}
        self.sharded = self.service.shards > 1
        if self.sharded and self.config.adaptive_staleness is not None:
            raise ValueError(
                "adaptive staleness control tunes in-process queue capacities "
                "and cannot steer shard workers; use shards=1 with it"
            )
        if self.sharded:
            from repro.service.shard import ShardedDataPlane

            self.plane = ShardedDataPlane(
                self.pipeline,
                self.service.shards,
                metrics=self.metrics,
                audit=self.audit,
                prof=self.prof,
            )
            #: Sharded queues live inside worker processes; the in-process
            #: map is empty and introspection goes through the plane facade.
            self.queues: dict[str, TriageQueue] = {}
        else:
            self.plane = StreamDataPlane(
                self.pipeline,
                observer=self._queue_event,
                thread_safe=True,
                audit=self.audit,
            )
            self.queues = self.plane.queues
        for s, capacity in self.plane.capacities().items():
            self._g_capacity.set(capacity, stream=s)

        self.registry = SessionRegistry(
            max_sessions=self.service.max_sessions,
            rate_limit=self.service.rate_limit,
            burst=self.service.rate_burst
            if self.service.rate_burst is not None
            else (self.service.rate_limit or 1.0),
            send_queue_frames=self.service.send_queue_frames,
        )
        self._controllers: dict[str, LoadController] | None = None
        if self.config.adaptive_staleness is not None:
            self._controllers = {
                s: LoadController(
                    alpha=0.5,
                    max_staleness=self.config.adaptive_staleness,
                    observer=self._controller_observer(s),
                )
                for s in self._sources
            }

        #: Hosted CEP pattern query (attach_pattern), serial plane only.
        self.pattern: BoundPattern | None = None
        self._cep_counters: dict[str, object] = {}
        self._g_cep_runs = None

        self._server: asyncio.base_events.Server | None = None
        self._ticker_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._t0: float | None = None
        self._last_tick = 0.0
        self._closing = False

    @property
    def _known_windows(self) -> set[int]:
        return self.plane.known_windows

    @property
    def _last_closed_wid(self) -> int | None:
        return self.plane.last_closed_wid

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _build_instruments(self) -> None:
        m = self.metrics
        self._c_offered = m.counter(
            "triage_offered_total", "Tuples offered to triage queues", ("stream",)
        )
        self._c_drops = m.counter(
            "triage_drops_total", "Tuples shed by triage queues", ("stream",)
        )
        self._c_summarized = m.counter(
            "triage_summarized_total",
            "Shed tuples folded into window synopses",
            ("stream",),
        )
        self._c_polled = m.counter(
            "triage_polled_total", "Tuples consumed by the engine", ("stream",)
        )
        self._g_depth = m.gauge(
            "triage_queue_depth_now", "Current triage queue depth", ("stream",)
        )
        self._g_capacity = m.gauge(
            "triage_queue_capacity", "Current triage queue capacity", ("stream",)
        )
        self._h_depth = m.histogram(
            "triage_queue_depth",
            "Queue depth sampled at every engine tick",
            ("stream",),
            buckets=DEPTH_BUCKETS,
        )
        self._h_window_latency = m.histogram(
            "window_latency_seconds",
            "Window close → result emission delay (window-clock seconds)",
            buckets=LATENCY_BUCKETS,
        )
        self._c_shed_bytes = m.counter(
            "triage_shed_bytes_total",
            "Approximate in-memory bytes of shed rows",
            ("stream",),
        )
        self._c_decisions = m.counter(
            "triage_policy_decisions_total",
            "Drop-policy victim decisions",
            ("stream", "decision"),
        )
        self._g_sessions = m.gauge("service_sessions", "Live sessions")
        self._c_sessions = m.counter("service_sessions_total", "Sessions admitted")
        self._c_rejects = m.counter(
            "service_admission_rejects_total",
            "Connections/batches refused by admission control",
            ("reason",),
        )
        self._c_frames = m.counter(
            "service_frames_total", "Frames received by type", ("type",)
        )
        self._c_proto_errors = m.counter(
            "service_protocol_errors_total", "Protocol violations", ("code",)
        )
        self._c_rows = m.counter(
            "service_published_rows_total", "Rows accepted from publishers", ("stream",)
        )
        self._c_late = m.counter(
            "service_late_rows_total",
            "Rows discarded because their window already closed",
            ("stream",),
        )
        self._c_evictions = m.counter(
            "service_slow_consumer_evictions_total", "Subscribers evicted as slow"
        )
        self._c_results = m.counter(
            "service_results_total", "RESULT frames fanned out"
        )
        self._c_windows = m.counter(
            "service_windows_closed_total", "Windows closed and evaluated"
        )
        self._c_telemetry = m.counter(
            "service_telemetry_frames_total", "TELEMETRY frames fanned out"
        )
        self._c_traced = m.counter(
            "service_traced_batches_total",
            "PUBLISH batches that carried a trace context",
            ("stream",),
        )
        self._c_tick_errors = m.counter(
            "service_tick_errors_total",
            "Background ticks that raised (ticker keeps running)",
            ("error",),
        )
        self._g_ctrl: dict[str, object] = {
            name: m.gauge(f"controller_{name}", f"Load controller {name}", ("stream",))
            for name in ("arrival_rate", "drop_fraction", "recommended_capacity")
        }

    def _queue_event(self, stream: str, event: str, value: float) -> None:
        if event == "offer":
            self._c_offered.inc(value, stream=stream)
        elif event == "drop":
            self._c_drops.inc(value, stream=stream)
        elif event == "summarize":
            self._c_summarized.inc(value, stream=stream)
        elif event == "poll":
            self._c_polled.inc(value, stream=stream)
        elif event == "shed_bytes":
            self._c_shed_bytes.inc(value, stream=stream)
        elif event in ("drop_incoming", "evict_buffered"):
            self._c_decisions.inc(value, stream=stream, decision=event)

    # ------------------------------------------------------------------
    # CEP pattern hosting
    # ------------------------------------------------------------------
    def attach_pattern(
        self, pattern: "str | PatternStmt | BoundPattern", *, max_runs: int = 1024
    ):
        """Host a ``PATTERN SEQ(...)`` query beside the served aggregate.

        Every tuple the engine drain consumes from a pattern stream also
        steps the NFA (see :meth:`StreamDataPlane.attach_pattern`); matches
        accumulate in the plane and lifecycle events feed the ``cep_*``
        metrics.  When the configured drop policy is pattern-aware (it has
        a ``bind_engine`` hook, like
        :class:`~repro.cep.policy.PatternUtilityPolicy`), the live engine
        is bound into it so victim selection sees real partial-match state.
        Sharded planes cannot host patterns — a sequence NFA needs one
        totally-ordered consumer — so ``shards > 1`` is an error.
        """
        if self.sharded:
            raise ValueError(
                "pattern queries need the serial data plane (one ordered "
                "NFA consumer); re-run with --shards 1"
            )
        if isinstance(pattern, str):
            pattern = parse_statement(pattern)
        if isinstance(pattern, PatternStmt):
            pattern = Binder(self.pipeline.catalog).bind_pattern(pattern)
        if not isinstance(pattern, BoundPattern):
            raise TypeError(f"not a pattern query: {pattern!r}")
        self._build_cep_instruments()
        engine = self.plane.attach_pattern(
            pattern, max_runs=max_runs, observer=self._pattern_event
        )
        bind = getattr(self.config.policy, "bind_engine", None)
        if bind is not None:
            bind(engine)
        self.pattern = pattern
        return engine

    def _build_cep_instruments(self) -> None:
        m = self.metrics
        self._cep_counters = {
            "run_start": m.counter(
                "cep_runs_started_total", "Pattern runs (partial matches) opened"
            ),
            "run_extend": m.counter(
                "cep_runs_extended_total", "Events absorbed into partial matches"
            ),
            "match": m.counter(
                "cep_matches_total", "Complete pattern matches emitted"
            ),
            "run_expire": m.counter(
                "cep_runs_expired_total", "Partial matches expired at WITHIN"
            ),
            "run_shed": m.counter(
                "cep_runs_shed_total",
                "Partial matches retired by the pSPICE memory bound",
            ),
        }
        self._g_cep_runs = m.gauge(
            "cep_active_runs", "Live partial matches in the pattern engine"
        )

    def _pattern_event(self, event: str, value: float) -> None:
        counter = self._cep_counters.get(event)
        if counter is not None:
            counter.inc(value)

    def take_matches(self):
        """Pop pattern matches emitted since the last call (serial plane)."""
        return self.plane.take_matches()

    def _controller_observer(self, stream: str):
        def observe(name: str, value: float) -> None:
            gauge = self._g_ctrl.get(name)
            if gauge is not None:
                gauge.set(value, stream=stream)

        return observe

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    def now(self) -> float:
        """Current window-clock time (seconds)."""
        if self.service.clock is not None:
            return self.service.clock()
        assert self._t0 is not None, "server not started"
        return asyncio.get_running_loop().time() - self._t0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection,
            self.service.host,
            self.service.port,
            limit=protocol.MAX_FRAME_BYTES + 2,
        )
        self._t0 = asyncio.get_running_loop().time()
        self._last_tick = self.now()
        if self.prof is not None:
            self.prof.start()
        if self.service.tick_interval is not None:
            self._ticker_task = asyncio.get_running_loop().create_task(
                self._ticker()
            )

    async def _ticker(self) -> None:
        assert self.service.tick_interval is not None
        while True:
            await asyncio.sleep(self.service.tick_interval)
            try:
                await self.tick()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - ticker must survive
                # A failed tick (e.g. a shard worker died mid-RPC) must not
                # kill the ticker: windows would silently stop closing for
                # every subscriber.  Count it and try again next interval.
                self._c_tick_errors.inc(error=type(exc).__name__)

    async def shutdown(self) -> None:
        """Graceful shutdown: drain queues, flush final windows, say BYE."""
        if self._closing:
            return
        self._closing = True
        if self._ticker_task is not None:
            self._ticker_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ticker_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # Final drain: the engine "catches up" on everything still queued,
        # then every open window is evaluated and flushed to subscribers.
        now = self.now()
        if self.sharded:
            await asyncio.get_running_loop().run_in_executor(
                None, self._final_drain
            )
        else:
            self.plane.drain(None)
        try:
            await self._close_windows(now, force=True)
            if self.audit is not None and self.sharded:
                # Pull any residual worker ledger state (windowless events
                # such as cep_evict ship only with a collect) so the final
                # coordinator counts reconcile exactly with plane totals.
                await asyncio.get_running_loop().run_in_executor(
                    None, self.plane.audit_sync
                )
            if self.prof is not None and self.sharded:
                # Same for profiles: absorb the workers' final sample
                # deltas so the merged profile's total is the fleet total.
                await asyncio.get_running_loop().run_in_executor(
                    None, self.plane.prof_sync
                )
        except Exception:
            if not self.sharded:
                raise
            # Dead shard workers: the final windows are lost, but the
            # sessions still deserve their BYE and the ports their close.
        await self.registry.close_all(farewell={"type": "BYE"})
        self._g_sessions.set(0)
        if self.prof is not None:
            self.prof.stop()
        if self.sharded:
            self.plane.close()

    def _final_drain(self) -> None:
        from repro.service.shard import ShardError

        # A dead worker must not block shutdown: skip the final drain and
        # close with whatever the coordinator last snapshotted.
        try:
            self.plane.drain(None)
            # A zero-budget tick refreshes the coordinator's known-window
            # and head snapshot so the forced close below sees everything.
            self.plane.advance(0.0)
        except ShardError:
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Session | None = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            while True:
                try:
                    frame = await read_frame(reader, sender="client")
                except ProtocolError as exc:
                    self._c_proto_errors.inc(code=exc.code)
                    with contextlib.suppress(ConnectionError):
                        await session.send_now(exc.to_frame())
                    if exc.fatal:
                        return
                    continue
                if frame is None:
                    return
                self._c_frames.inc(type=frame["type"])
                if not await self._dispatch(session, frame):
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if session is None:
                writer.close()
            elif not self._closing:
                # During shutdown the session stays registered so the final
                # window flush and BYE (registry.close_all) still reach it.
                self.registry.remove(session)
                self._g_sessions.set(len(self.registry.sessions))
                await session.close(flush=True)

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Session | None:
        """HELLO → WELCOME, or a refusal.  Returns None if refused."""

        def refuse(code: str, message: str) -> bytes:
            return protocol.encode_frame(
                ProtocolError(code, message, fatal=True).to_frame()
            )

        try:
            frame = await read_frame(reader, sender="client")
        except ProtocolError as exc:
            self._c_proto_errors.inc(code=exc.code)
            writer.write(protocol.encode_frame(exc.to_frame()))
            await writer.drain()
            return None
        if frame is None:
            return None
        if frame["type"] != "HELLO":
            self._c_proto_errors.inc(code="hello-required")
            writer.write(refuse("hello-required", "first frame must be HELLO"))
            await writer.drain()
            return None
        if frame["version"] > protocol.PROTOCOL_VERSION:
            self._c_proto_errors.inc(code="version-mismatch")
            writer.write(
                refuse(
                    "version-mismatch",
                    f"server speaks protocol {protocol.PROTOCOL_VERSION}, "
                    f"client asked for {frame['version']}",
                )
            )
            await writer.drain()
            return None
        try:
            session = self.registry.admit(writer, frame.get("client") or "")
        except AdmissionError as exc:
            self._c_rejects.inc(reason=exc.code)
            writer.write(refuse(exc.code, exc.message))
            await writer.drain()
            return None
        self._c_sessions.inc()
        self._g_sessions.set(len(self.registry.sessions))
        streams = {}
        for s in self._sources:
            schema = self.pipeline.bound.source(s).schema
            streams[s] = [[c.name, c.type.value] for c in schema.columns]
        await session.send_now(
            {
                "type": "WELCOME",
                "version": protocol.PROTOCOL_VERSION,
                "session": session.id,
                # The server's window clock, so publishers can rebase
                # replayed timestamps instead of landing in closed windows.
                "now": self.now(),
                "streams": streams,
                "window": {
                    "width": self.config.window.width,
                    "slide": self.config.window.hop,
                },
            }
        )
        return session

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, session: Session, frame: dict) -> bool:
        """Handle one frame; False ends the connection."""
        ftype = frame["type"]
        if ftype == "DECLARE":
            return await self._handle_declare(session, frame)
        if ftype == "SUBSCRIBE":
            session.subscribed = True
            reply = {"type": "OK", "subscribed": True}
            if frame.get("telemetry"):
                session.telemetry = True
                requested = frame.get("telemetry_interval")
                if requested is not None and self._telemetry_interval is not None:
                    # The push cadence is server-wide; a subscriber may only
                    # tighten it (the frequent reader sets the pace).
                    self._telemetry_interval = min(
                        self._telemetry_interval, float(requested)
                    )
                reply["telemetry"] = True
                reply["telemetry_interval"] = self._telemetry_interval
            await session.send_now(reply)
            return True
        if ftype == "PUBLISH":
            return await self._handle_publish(session, frame)
        if ftype == "STATS":
            return await self._handle_stats(session, frame)
        if ftype == "BYE":
            await session.send_now({"type": "OK", "bye": True})
            return False
        # A client sent a server-side frame type: legal JSON, wrong role.
        self._c_proto_errors.inc(code="unexpected-type")
        await session.send_now(
            ProtocolError(
                "unexpected-type", f"clients do not send {ftype} frames"
            ).to_frame()
        )
        return True

    def _resolve_stream(self, name: str) -> str | None:
        return self._source_by_lower.get(name.lower())

    async def _handle_declare(self, session: Session, frame: dict) -> bool:
        source = self._resolve_stream(frame["stream"])
        if source is None:
            await session.send_now(
                ProtocolError(
                    "unknown-stream",
                    f"stream {frame['stream']!r} is not part of the served "
                    f"query (streams: {', '.join(self._sources)})",
                ).to_frame()
            )
            return True
        session.declared.add(source)
        schema = self.pipeline.bound.source(source).schema
        await session.send_now(
            {
                "type": "OK",
                "stream": source,
                "columns": [[c.name, c.type.value] for c in schema.columns],
            }
        )
        return True

    async def _handle_publish(self, session: Session, frame: dict) -> bool:
        source = self._resolve_stream(frame["stream"])
        if source is None or source not in session.declared:
            code = "unknown-stream" if source is None else "undeclared-stream"
            await session.send_now(
                ProtocolError(
                    code,
                    f"declare stream {frame['stream']!r} before publishing to it",
                ).to_frame()
            )
            return True
        rows = frame.get("rows")
        cols = frame.get("cols")
        nrows = len(rows) if rows is not None else (len(cols[0]) if cols else 0)
        now = self.now()
        if not session.bucket.try_consume(nrows, now):
            self._c_rejects.inc(reason="rate-limited")
            await session.send_now(
                ProtocolError(
                    "rate-limited",
                    f"batch of {nrows} rows exceeds this session's "
                    f"rate allowance; retry later",
                ).to_frame()
            )
            return True
        try:
            if rows is None and cols:
                # Columnar framing: the batch stays column-major end to
                # end — validated column-wise and offered to the triage
                # queue as a ColumnBatch; no coordinator-side pivot to
                # row tuples (and, sharded, no per-row pickling either).
                accepted, late, depth, dropped_total = await self._ingest_async(
                    source,
                    cols,
                    columnar=True,
                    timestamps=frame.get("timestamps"),
                    now=now,
                    trace=frame.get("trace"),
                )
            else:
                validate = True
                if rows is None:
                    # cols == [] carries no column structure to
                    # arity-check: it is the columnar spelling of an empty
                    # batch (the client's zero-row pivot produces it) and
                    # must ack accepted=0 exactly like rows == [].
                    rows = []
                    validate = False
                accepted, late, depth, dropped_total = await self._ingest_async(
                    source,
                    rows,
                    timestamps=frame.get("timestamps"),
                    now=now,
                    trace=frame.get("trace"),
                    validate=validate,
                )
        except SchemaError as exc:
            await session.send_now(ProtocolError("bad-row", str(exc)).to_frame())
            return True
        session.published_rows += accepted
        self._c_rows.inc(accepted, stream=source)
        self._g_depth.set(depth, stream=source)
        await session.send_now(
            {
                "type": "OK",
                "stream": source,
                "accepted": accepted,
                "late": late,
                "queue_depth": depth,
                "queue_dropped_total": dropped_total,
            }
        )
        return True

    async def _ingest_async(self, source: str, batch, **kwargs):
        """Run an ingest off the event loop when it crosses a shard pipe."""
        if self.sharded:
            return await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.ingest_rows(source, batch, **kwargs)
            )
        return self.ingest_rows(source, batch, **kwargs)

    def ingest_rows(
        self,
        source: str,
        rows,
        timestamps=None,
        now: float | None = None,
        trace: dict | None = None,
        validate: bool = True,
        columnar: bool = False,
    ) -> tuple[int, int, int, int]:
        """Validate, window-account, and enqueue a batch for ``source``.

        Returns ``(accepted, late, queue_depth, queue_dropped_total)`` —
        the ack quad PUBLISH reports as backpressure signals.  Raises
        :class:`SchemaError` (prefixed with the row index) if any row is
        invalid; the batch is rejected atomically.  This is the publish hot
        path, shared by the PUBLISH handler and the bench harness's
        service-ingest suite; the actual work happens in the data plane
        (in-process, or one shard worker over its pipe).

        ``columnar=True`` means ``rows`` is the ``cols`` encoding (one
        value list per schema column); it is routed to the plane's
        :meth:`~repro.service.dataplane.StreamDataPlane.ingest_columns`
        and never pivoted to row tuples coordinator-side.

        ``trace`` is a ``{trace_id, parent}`` context from a traced PUBLISH:
        the batch's queue/window events inherit it (the tracer context is
        installed for the duration of the ingest), the windows it lands in
        remember it for the RESULT echo, and a flow *step* is recorded so
        Perfetto draws the client→server arrow.  Untraced batches
        (``trace=None``, the common case) skip all of it.
        """
        now = self.now() if now is None else now
        tracer = None
        span_cm = None
        traced_wids: set[int] | None = None
        if trace is not None:
            self._c_traced.inc(stream=source)
            # Window attribution happens coordinator-side (the plane may be
            # in another process): the batch's timestamps name its windows.
            traced_wids = set()
            ids = self.config.window.ids
            last_closed = self.plane.last_closed_wid
            stamps = (now,) if timestamps is None else timestamps
            for ts in stamps:
                wids = ids(float(ts))
                if last_closed is not None and (
                    not wids or wids[0] <= last_closed
                ):
                    continue
                traced_wids.update(wids)
            if self.obs is not None and self.obs.tracer.enabled:
                nrows = (len(rows[0]) if rows else 0) if columnar else len(rows)
                tracer = self.obs.tracer
                tracer.set_context(trace["trace_id"], trace.get("parent"))
                tracer.flow(
                    "publish", trace["trace_id"], phase="t", source=source
                )
                span_cm = tracer.span("ingest", cat="service", source=source,
                                      rows=nrows)
                span_cm.__enter__()
            if self.audit is not None:
                # Exemplars sampled during this batch carry the client's
                # trace id (mirrors the tracer context lifecycle above).
                self.audit.set_trace(trace["trace_id"])
        try:
            if columnar:
                accepted, late, depth, dropped_total = self.plane.ingest_columns(
                    source, rows, timestamps, now, validate=validate
                )
            else:
                accepted, late, depth, dropped_total = self.plane.ingest(
                    source, rows, timestamps, now, validate=validate
                )
        finally:
            if tracer is not None:
                span_cm.__exit__(None, None, None)
                tracer.clear_context()
            if trace is not None and self.audit is not None:
                self.audit.set_trace(None)
        if late:
            self._c_late.inc(late, stream=source)
            if self.audit is not None:
                # Edge shedding: rows refused coordinator-side because their
                # window already closed.  No window bucket (the window is
                # gone), so these land in the ledger's unattributed pool.
                self.audit.record(
                    "edge_shed",
                    policy="admission",
                    stream=source,
                    windows=(),
                    timestamp=now,
                    depth=depth,
                    count=late,
                    trace_id=trace["trace_id"] if trace is not None else None,
                )
        if traced_wids:
            ctx = {
                "trace_id": trace["trace_id"],
                "parent": trace.get("parent") or trace["trace_id"],
            }
            for wid in traced_wids:
                contexts = self._window_traces.setdefault(wid, [])
                if len(contexts) < MAX_WINDOW_TRACES and ctx not in contexts:
                    contexts.append(ctx)
        return accepted, late, depth, dropped_total

    async def _handle_stats(self, session: Session, frame: dict) -> bool:
        fmt = frame.get("format") or "json"
        if fmt == "prometheus":
            reply = {"type": "STATS", "prometheus": self.metrics.render_prometheus()}
        else:
            reply = {
                "type": "STATS",
                "metrics": self.metrics.to_dict(),
                "summary": self._summary(),
                "window_reports": [r.to_dict() for r in self._window_reports],
            }
            if self.audit is not None:
                reply["audit"] = {
                    "summary": self.audit.summary(),
                    "attributions": list(self._audit_attributions),
                }
            if self.prof is not None:
                want = frame.get("profile")
                if want and self.sharded:
                    # Live capture wants the fleet-wide view: absorb the
                    # workers' sample deltas before exporting.
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.plane.prof_sync
                    )
                reply["prof"] = self._prof_block(live=want)
        await session.send_now(reply)
        return True

    def _prof_block(self, live=None) -> dict:
        """The ``prof`` block for STATS/TELEMETRY: summary + top frames.

        ``live`` (a STATS request's ``profile`` field) additionally attaches
        a bounded collapsed export — ``True`` uses the default stack-line
        bound, an integer overrides it — which is the on-demand live-capture
        path: the client asks, the server answers from the running sampler.
        """
        from repro.obs.prof import top_functions

        counts = self.prof.snapshot()
        block = {
            "summary": self.prof.summary(),
            "top": [
                {"function": fn, "self_share": round(share, 6)}
                for fn, share in top_functions(counts, 10)
            ],
        }
        if live:
            limit = live if isinstance(live, int) and live is not True else 200
            block["collapsed"] = self.prof.export_collapsed(limit=limit)
        return block

    def _summary(self) -> dict:
        offered, dropped = self.plane.totals()
        summary = self._telemetry_summary()
        summary.update(
            {
                "offered": offered,
                "dropped": dropped,
                "drop_fraction": dropped / offered if offered else 0.0,
                "queue_depths": self.plane.depths(),
                "windows": summarize_reports(list(self._window_reports)),
                "slo": self.slo.status(),
            }
        )
        if self.pattern is not None and not self.sharded:
            engine = self.plane.pattern_engine
            stats = engine.stats
            summary["pattern"] = {
                "streams": list(self.pattern.streams),
                "within": self.pattern.within,
                "active_runs": engine.active_runs,
                "runs_started": stats.runs_started,
                "runs_expired": stats.runs_expired,
                "runs_shed": stats.runs_shed,
                "matches": stats.matches,
            }
        return summary

    # ------------------------------------------------------------------
    # Engine emulation + window closing
    # ------------------------------------------------------------------
    async def tick(self, now: float | None = None) -> list[dict]:
        """One engine step: drain within budget, close due windows.

        Returns the RESULT frames emitted this tick (tests use this).
        """
        now = self.now() if now is None else now
        elapsed = max(0.0, now - self._last_tick)
        self._last_tick = now
        if self.sharded:
            # Shard ticks block on worker pipes; keep the loop responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, self.plane.advance, elapsed
            )
        else:
            self.plane.advance(elapsed)

        for s, depth in self.plane.depths().items():
            self._g_depth.set(depth, stream=s)
            self._h_depth.observe(depth, stream=s)

        if self._g_cep_runs is not None and not self.sharded:
            engine = self.plane.pattern_engine
            if engine is not None:
                self._g_cep_runs.set(engine.active_runs)

        if self._controllers is not None and elapsed > 0:
            for s, controller in self._controllers.items():
                controller.observe(interval_seconds=elapsed, stats=self.queues[s].stats)
                capacity = controller.recommended_capacity(self.config.service_time)
                self.queues[s].capacity = capacity
                self._g_capacity.set(capacity, stream=s)

        emitted = await self._close_windows(now)
        await self._maybe_push_telemetry(now)
        return emitted

    async def _maybe_push_telemetry(self, now: float) -> None:
        """Evaluate SLOs and push one TELEMETRY frame if the interval is up.

        SLO evaluation runs on this cadence even with nobody listening, so
        the ``slo_*`` gauges and the STATS ``slo`` summary stay current; the
        frame itself is only built and fanned out when at least one session
        opted in.  Slow telemetry consumers are evicted exactly like slow
        RESULT subscribers.
        """
        interval = self._telemetry_interval
        if interval is None:
            return
        if (
            self._last_telemetry is not None
            and now - self._last_telemetry < interval
        ):
            return
        self._last_telemetry = now
        alerts = self.slo.evaluate(now)
        subscribers = self.registry.telemetry_subscribers()
        if not subscribers:
            self._pending_reports.clear()
            self._pending_audit.clear()
            return
        self._telemetry_seq += 1
        frame = {
            "type": "TELEMETRY",
            "seq": self._telemetry_seq,
            "now": now,
            "interval": interval,
            "metrics": self._snapshotter.delta(),
            "reports": self._pending_reports,
            "alerts": [a.to_dict() for a in alerts],
            "firing": self.slo.firing,
            "slo": self.slo.status(),
            "summary": self._telemetry_summary(),
        }
        if self.audit is not None:
            frame["audit"] = {
                "summary": self.audit.summary(),
                "attributions": self._pending_audit,
            }
            self._pending_audit = []
        if self.prof is not None:
            frame["prof"] = self._prof_block()
        self._pending_reports = []
        self._c_telemetry.inc(len(subscribers))
        evicted = await self.registry.broadcast(frame, group="telemetry")
        if evicted:
            self._c_evictions.inc(len(evicted))
            self._g_sessions.set(len(self.registry.sessions))

    def _telemetry_summary(self) -> dict:
        """The compact rollup a dashboard needs every interval."""
        offered, dropped = self.plane.totals()
        summary = {
            "queue_depth": sum(self.plane.depths().values()),
            "queue_capacity": sum(self.plane.capacities().values()),
            "sessions": len(self.registry.sessions),
            "windows_closed": int(self._c_windows.value()),
            "tuples_arrived": offered,
            "tuples_shed": dropped,
        }
        if self.sharded:
            summary["shards"] = {
                str(i): d for i, d in self.plane.shard_depths().items()
            }
        if self.pattern is not None and not self.sharded:
            engine = self.plane.pattern_engine
            stats = engine.stats
            summary["pattern"] = {
                "streams": list(self.pattern.streams),
                "active_runs": engine.active_runs,
                "runs_started": stats.runs_started,
                "runs_expired": stats.runs_expired,
                "runs_shed": stats.runs_shed,
                "events": stats.events,
                "matches": stats.matches,
            }
        return summary

    async def _close_windows(self, now: float, *, force: bool = False) -> list[dict]:
        """Evaluate + broadcast every window that is due (all, if forced).

        Due windows are collected first and evaluated as one batch through
        :meth:`DataTriagePipeline.evaluate_windows`, so a backlog of closes
        (e.g. after a stall) benefits from parallel window evaluation.
        """
        if force:
            due = sorted(self.plane.known_windows)
        else:
            due = self.plane.due_windows(now, self.service.grace)
        if not due:
            return []
        emitted = await self._evaluate_windows_frames(due, now)
        self.plane.mark_closed(due)
        for frame in emitted:
            self._c_results.inc(len(self.registry.subscribers()))
            evicted = await self.registry.broadcast(frame)
            if evicted:
                self._c_evictions.inc(len(evicted))
                self._g_sessions.set(len(self.registry.sessions))
        return emitted

    async def _evaluate_windows_frames(
        self, wids: list[int], now: float
    ) -> list[dict]:
        """Collect, evaluate, and frame a batch of closing windows.

        The plane hands back a :class:`~repro.core.merge.WindowPartials`
        (sharded planes merge one per worker first); evaluation then runs
        through the same :meth:`DataTriagePipeline.evaluate_windows` at any
        shard count, which is what keeps results byte-identical.
        """
        if self.sharded:
            partials = await asyncio.get_running_loop().run_in_executor(
                None, self.plane.collect, list(wids)
            )
        else:
            partials = self.plane.collect(list(wids))
        trace_ids = None
        if (
            self._window_traces
            and self.obs is not None
            and self.obs.tracer.enabled
        ):
            trace_ids = {
                w: [c["trace_id"] for c in self._window_traces[w]]
                for w in wids
                if w in self._window_traces
            } or None
        outcomes = self.pipeline.evaluate_windows(
            trace_ids=trace_ids,
            window_ids=list(wids),
            kept_rows=partials.kept_rows,
            kept_synopses=partials.kept_synopses,
            dropped_synopses=partials.dropped_synopses,
            dropped_counts=partials.dropped_counts,
            arrived=partials.arrived,
        )
        frames = [self._frame_outcome(o, now) for o in outcomes]
        if self.audit is not None:
            # Attribution join: sharded planes shipped worker ledger state
            # during collect() above, so by now the coordinator ledger holds
            # every shed decision for these windows at any shard count.
            self._attribute_closed_windows(wids, now)
        return frames

    def _attribute_closed_windows(self, wids: list[int], now: float) -> None:
        """Join the ledger's per-window shed aggregates against the freshly
        built :class:`WindowReport` rows, producing quality-cost records.

        The live service has no ideal reference (``rms_error`` is None), so
        the error basis degrades to the window's shed fraction — still a
        meaningful burn signal for the ``attributed_error_burn`` SLO.
        """
        taken = self.audit.take_windows(wids)
        if not taken:
            return
        recent = list(self._window_reports)[-len(wids):]
        for record in attribute_reports(taken, recent):
            self._audit_attributions.append(record)
            if self._telemetry_interval is not None:
                self._pending_audit.append(record)
                del self._pending_audit[:-256]  # bound a subscriber-less gap
            self.slo.observe("attributed_error_burn", record["error"], now)

    def _frame_outcome(self, outcome, now: float) -> dict:
        wid = outcome.window_id
        start, end = self.config.window.bounds(wid)
        latency = max(0.0, now - end)
        self._h_window_latency.observe(latency)
        self._c_windows.inc()

        spec = self.pipeline.merge_spec
        groups = []
        for key in sorted(outcome.merged, key=lambda k: tuple(map(str, k))):
            groups.append(
                {
                    "key": list(key),
                    "aggs": outcome.merged[key],
                    "exact": outcome.exact.get(key),
                    "estimated": outcome.estimated.get(key),
                }
            )
        arrived_total = sum(outcome.arrived.values())
        dropped_total = sum(outcome.dropped.values())
        shed_ratio = dropped_total / arrived_total if arrived_total else 0.0
        report = WindowReport(
            window_id=wid,
            start=start,
            end=end,
            arrived=arrived_total,
            kept=sum(outcome.kept.values()),
            dropped=dropped_total,
            result_latency=latency,
            rms_error=None,  # the live service has no ideal reference
            phase_seconds=(
                self.obs.phase_seconds.pop(wid, {})
                if self.obs is not None
                else {}
            ),
        )
        self._window_reports.append(report)
        if self._telemetry_interval is not None:
            self._pending_reports.append(report.to_dict())
            del self._pending_reports[:-256]  # bound a subscriber-less gap
        self.slo.observe("window_staleness", latency, now)
        self.slo.observe("result_latency_p99", latency, now)
        self.slo.observe("shed_ratio", shed_ratio, now)
        frame = {
            "type": "RESULT",
            "window": wid,
            "start": start,
            "end": end,
            "group_names": list(spec.group_names),
            "groups": groups,
            "arrived": outcome.arrived,
            "kept": outcome.kept,
            "dropped": outcome.dropped,
            "drop_fraction": shed_ratio,
            "latency": latency,
        }
        traces = self._window_traces.pop(wid, None)
        if traces:
            frame["traces"] = traces
            if self.obs is not None and self.obs.tracer.enabled:
                for ctx in traces:
                    self.obs.tracer.flow(
                        "result", ctx["trace_id"], phase="t", window=wid
                    )
        return frame
