"""Tests for bound-query planning and window-at-a-time execution."""

import pytest

from repro.algebra import Multiset
from repro.engine import (
    Catalog,
    ColumnType,
    ContinuousQuery,
    QueryExecutor,
    Schema,
    StreamTuple,
    WindowSpec,
)
from repro.sql import Binder, parse_statement


@pytest.fixture
def catalog(paper_catalog):
    return paper_catalog


def execute(catalog, sql, inputs):
    bound = Binder(catalog).bind(parse_statement(sql))
    return QueryExecutor(catalog).execute(bound, inputs)


BASE_INPUTS = {
    "r": Multiset([(1,), (1,), (2,)]),
    "s": Multiset([(1, 10), (2, 20), (3, 30)]),
    "t": Multiset([(10,), (20,), (20,)]),
}


class TestExecution:
    def test_three_way_join_select_star(self, catalog):
        res = execute(
            catalog,
            "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d",
            BASE_INPUTS,
        )
        assert res.rows.multiplicity((1, 1, 10, 10)) == 2
        assert res.rows.multiplicity((2, 2, 20, 20)) == 2
        assert len(res.rows) == 4

    def test_group_by_count(self, catalog):
        res = execute(
            catalog,
            "SELECT a, COUNT(*) AS n FROM R, S, T "
            "WHERE R.a = S.b AND S.c = T.d GROUP BY a",
            BASE_INPUTS,
        )
        assert res.rows == Multiset([(1, 2), (2, 2)])
        assert res.schema.names == ("a", "n")

    def test_local_predicate_pushdown(self, catalog):
        res = execute(
            catalog,
            "SELECT * FROM R, S WHERE R.a = S.b AND S.c > 15",
            BASE_INPUTS,
        )
        assert res.rows == Multiset([(2, 2, 20)])

    def test_missing_stream_treated_empty(self, catalog):
        res = execute(catalog, "SELECT * FROM R, S WHERE R.a = S.b", {"r": BASE_INPUTS["r"]})
        assert len(res.rows) == 0

    def test_single_stream_projection(self, catalog):
        res = execute(catalog, "SELECT c FROM S", BASE_INPUTS)
        assert res.rows == Multiset([(10,), (20,), (30,)])

    def test_cross_product_when_no_predicate(self, catalog):
        res = execute(catalog, "SELECT * FROM R, T", BASE_INPUTS)
        assert len(res.rows) == 9

    def test_union_all_query(self, catalog):
        res = execute(
            catalog,
            "(SELECT a FROM R) UNION ALL (SELECT d FROM T)",
            BASE_INPUTS,
        )
        assert len(res.rows) == 6

    def test_subquery_in_from(self, catalog):
        res = execute(
            catalog,
            "SELECT * FROM (SELECT a FROM R) sub, S WHERE sub.a = S.b",
            BASE_INPUTS,
        )
        assert len(res.rows) == 3

    def test_view_expansion(self, catalog):
        stmt = parse_statement(
            "(SELECT * FROM R) UNION ALL (SELECT d FROM T)"
        )
        catalog.create_view("R_all", stmt)
        res = execute(catalog, "SELECT * FROM R_all", BASE_INPUTS)
        assert len(res.rows) == 6

    def test_distinct(self, catalog):
        res = execute(catalog, "SELECT DISTINCT a FROM R", BASE_INPUTS)
        assert res.rows == Multiset([(1,), (2,)])

    def test_scalar_aggregate(self, catalog):
        res = execute(catalog, "SELECT COUNT(*) AS n FROM R", BASE_INPUTS)
        assert res.rows == Multiset([(3,)])

    def test_residual_predicate_after_join(self, catalog):
        res = execute(
            catalog,
            "SELECT * FROM R, S WHERE R.a = S.b AND R.a + S.c > 12",
            BASE_INPUTS,
        )
        # (1,1,10): 1+10=11 no; (1,1,10) x2 no; (2,2,20): 22 yes
        assert res.rows == Multiset([(2, 2, 20)])


class TestAggregateExpressions:
    def test_sum_over_expression(self, catalog):
        res = execute(
            catalog, "SELECT b, SUM(c + 1) AS s FROM S GROUP BY b", BASE_INPUTS
        )
        assert res.rows == Multiset([(1, 11.0), (2, 21.0), (3, 31.0)])

    def test_count_qualified_column(self, catalog):
        res = execute(
            catalog, "SELECT COUNT(S.c) AS n FROM S", BASE_INPUTS
        )
        assert res.rows == Multiset([(3,)])

    def test_group_by_expression(self, catalog):
        res = execute(
            catalog,
            "SELECT c % 20 AS bucket, COUNT(*) AS n FROM S GROUP BY c % 20",
            BASE_INPUTS,
        )
        # c values 10, 20, 30 -> buckets 10, 0, 10
        assert res.rows == Multiset([(10, 2), (0, 1)])


class TestContinuousQuery:
    def test_per_window_results(self, catalog):
        bound = Binder(catalog).bind(
            parse_statement("SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        )
        cq = ContinuousQuery(QueryExecutor(catalog), bound, WindowSpec(width=1.0))
        streams = {
            "R": [
                StreamTuple(0.1, (1,)),
                StreamTuple(0.9, (1,)),
                StreamTuple(1.5, (2,)),
            ]
        }
        results = cq.run(streams)
        assert [r.window_id for r in results] == [0, 1]
        assert results[0].rows == Multiset([(1, 2)])
        assert results[1].rows == Multiset([(2, 1)])
        assert results[0].start == 0.0 and results[0].end == 1.0
