"""Integration tests for the experiment harness module."""

import pytest

from repro.core import ShedStrategy
from repro.experiments import (
    PAPER_QUERY,
    ExperimentParams,
    fast_synopsis_factory,
    figure8_series,
    figure9_series,
    microbench_original,
    microbench_rewritten,
    microbench_setup,
    paper_catalog,
    run_constant_rate,
    slow_synopsis_factory,
)
from repro.sql import Binder, parse_statement


class TestHarnessBasics:
    def test_paper_catalog_streams(self):
        cat = paper_catalog()
        assert cat.stream("S").schema.names == ("b", "c")

    def test_paper_query_binds(self):
        bound = Binder(paper_catalog()).bind(parse_statement(PAPER_QUERY))
        assert len(bound.join_predicates) == 2

    def test_params_derived_values(self):
        p = ExperimentParams(tuples_per_window=10, n_windows=4, engine_capacity=100)
        assert p.tuples_per_stream == 40
        assert p.service_time == pytest.approx(0.01)

    def test_run_constant_rate_returns_result(self):
        p = ExperimentParams(tuples_per_window=50, n_windows=3)
        run = run_constant_rate(ShedStrategy.DATA_TRIAGE, 300, p, seed=0)
        assert run.total_arrived == 3 * p.tuples_per_stream
        assert len(run.windows) >= 3


class TestSeriesBuilders:
    def test_figure8_series_structure(self):
        p = ExperimentParams(tuples_per_window=40, n_windows=3)
        series = figure8_series([300, 1500], n_runs=2, params=p)
        assert len(series.rows) == 2
        for _, summaries in series.rows:
            assert set(summaries) == {"data_triage", "drop_only", "summarize_only"}
            assert all(s.n_runs == 2 for s in summaries.values())
        # Renderable.
        assert "Figure 8" in series.to_text()
        assert series.to_csv().count("\n") == 3

    def test_figure9_series_structure(self):
        p = ExperimentParams(tuples_per_window=40, n_windows=3)
        series = figure9_series([2000], n_runs=2, params=p)
        assert len(series.rows) == 1
        assert "bursty" in series.title


class TestMicrobench:
    def test_setup_builds_split_tables(self):
        setup = microbench_setup(rows_per_table=200)
        for name in ("R", "S", "T"):
            assert len(setup.tables[name]) == 200
            assert len(setup.kept[name]) == 100
            assert len(setup.dropped[name]) == 100

    def test_original_query_runs(self):
        setup = microbench_setup(rows_per_table=200)
        groups = microbench_original(setup)
        assert groups > 0

    def test_rewritten_fast_estimates_dropped_results(self):
        from repro.rewrite import evaluate_expansion

        setup = microbench_setup(rows_per_table=400)
        est = microbench_rewritten(setup, fast_synopsis_factory())
        true_lost = len(evaluate_expansion(setup.plan, setup.kept, setup.dropped))
        assert est == pytest.approx(true_lost, rel=0.35)

    def test_slow_factory_is_mhist(self):
        from repro.synopses import MHist

        syn = slow_synopsis_factory().create(
            [__import__("repro.synopses", fromlist=["Dimension"]).Dimension("a", 1, 100)]
        )
        assert isinstance(syn, MHist)
        assert syn.grid is None  # unaligned: the quadratic regime
