"""PatternUtilityPolicy victim selection against live engine state."""

import random

from repro.cep import PatternEngine, PatternUtilityPolicy, demo_catalog
from repro.core.policies import DROP_INCOMING, PolicyContext
from repro.engine.types import StreamTuple
from repro.engine.window import WindowSpec
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement

FULL = "PATTERN SEQ(A a, B+ b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 2"


def make_engine(events=()):
    pattern = Binder(demo_catalog()).bind_pattern(parse_statement(FULL))
    engine = PatternEngine(pattern)
    for stream, ts, key in events:
        engine.consume(stream, StreamTuple(ts, (key,)))
    return engine


def context(**kwargs):
    defaults = dict(rng=random.Random(0), window=WindowSpec(width=2.0))
    defaults.update(kwargs)
    return PolicyContext(**defaults)


class TestSelectVictim:
    def test_no_engine_degrades_to_head_drop(self):
        policy = PatternUtilityPolicy()
        buffer = [StreamTuple(0.1, (1,)), StreamTuple(0.2, (2,))]
        assert policy.select_victim(buffer, StreamTuple(0.3, (3,)), context()) == 0

    def test_protected_tuple_survives_tagged_queue(self):
        # Engine has an open run on key 7: among tagged rows, the B that
        # would extend it must outrank the Bs that would not.
        engine = make_engine([("A", 0.1, 7)])
        policy = PatternUtilityPolicy(engine, stream_tag=0)
        buffer = [
            StreamTuple(0.2, ("B", 7)),
            StreamTuple(0.3, ("B", 8)),
        ]
        victim = policy.select_victim(
            buffer, StreamTuple(0.4, ("B", 9)), context(queue_name="pattern")
        )
        assert victim == 1  # shed an unprotected B, never the k=7 one

    def test_incoming_protected_evicts_buffered(self):
        engine = make_engine([("A", 0.1, 7)])
        policy = PatternUtilityPolicy(engine, stream_tag=0)
        buffer = [StreamTuple(0.2, ("B", 8))]
        victim = policy.select_victim(
            buffer, StreamTuple(0.3, ("B", 7)), context(queue_name="pattern")
        )
        assert victim == 0

    def test_untagged_queue_uses_queue_name_as_stream(self):
        engine = make_engine([("A", 0.1, 7)])
        policy = PatternUtilityPolicy(engine)
        buffer = [StreamTuple(0.2, (8,)), StreamTuple(0.25, (7,))]
        victim = policy.select_victim(
            buffer, StreamTuple(0.3, (9,)), context(queue_name="B")
        )
        assert victim == 0

    def test_deterministic_tie_breaks_lowest_index(self):
        engine = make_engine()
        policy = PatternUtilityPolicy(engine, stream_tag=0)
        buffer = [StreamTuple(0.1, ("B", 1)), StreamTuple(0.2, ("B", 2))]
        ctx = context(queue_name="pattern")
        incoming = StreamTuple(0.3, ("B", 3))
        picks = {policy.select_victim(buffer, incoming, ctx) for _ in range(5)}
        assert picks == {0}

    def test_drop_incoming_only_when_strictly_worse(self):
        # All-equal scores keep the incoming tuple (evict-buffered bias).
        engine = make_engine()
        policy = PatternUtilityPolicy(engine, stream_tag=0)
        buffer = [StreamTuple(0.1, ("B", 1))]
        victim = policy.select_victim(
            buffer, StreamTuple(0.2, ("B", 2)), context(queue_name="pattern")
        )
        assert victim != DROP_INCOMING

    def test_occupancy_breaks_ties_toward_crowded_windows(self):
        engine = make_engine()
        policy = PatternUtilityPolicy(engine, stream_tag=0)
        window = WindowSpec(width=2.0)
        counts = {0: 5, 1: 1}  # window [0,2) crowded, [2,4) sparse
        buffer = [
            StreamTuple(0.5, ("B", 1)),  # crowded window -> lower bonus
            StreamTuple(2.5, ("B", 2)),  # sparse window  -> higher bonus
        ]
        victim = policy.select_victim(
            buffer,
            StreamTuple(2.6, ("B", 3)),
            context(queue_name="pattern", window=window, window_counts=counts),
        )
        assert victim == 0

    def test_wants_window_counts_flag(self):
        assert PatternUtilityPolicy.wants_window_counts is True
