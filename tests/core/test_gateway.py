"""Tests for triage at distributed gateways."""

import random

import pytest

from repro.core import (
    DataTriagePipeline,
    PipelineConfig,
    ShedStrategy,
    TriageGateway,
    run_gateway_experiment,
)
from repro.engine import StreamTuple, WindowSpec
from repro.quality import run_rms
from repro.sources import SteadyArrival, generate_stream, paper_row_generators
from repro.sources.network import NetworkLink
from repro.synopses import Dimension, SparseHistogramFactory

QUERY = (
    "SELECT a, COUNT(*) AS n FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)


def make_gateway(bandwidth, capacity=5, summarize=True, latency=0.0):
    return TriageGateway(
        name="R",
        dimensions=[Dimension("R.a", 1, 100)],
        dim_positions=[0],
        link=NetworkLink(bandwidth=bandwidth, latency=latency),
        queue_capacity=capacity,
        synopsis_factory=SparseHistogramFactory(bucket_width=1),
        window=WindowSpec(width=1.0),
        summarize=summarize,
        seed=1,
    )


def burst(n, t0=0.0, spacing=0.001, value=5):
    return [StreamTuple(t0 + i * spacing, (value,)) for i in range(n)]


class TestTriageGateway:
    def test_all_delivered_when_link_is_fast(self):
        gw = make_gateway(bandwidth=None)
        out = gw.run(burst(20))
        assert len(out.delivered) == 20
        assert out.dropped == 0

    def test_slow_link_forces_drops(self):
        # 100 tuples in ~0.1s over a 10/s link with a 5-tuple queue.
        gw = make_gateway(bandwidth=10.0)
        out = gw.run(burst(100))
        assert out.dropped > 50
        assert out.offered == 100
        assert len(out.delivered) + out.dropped == 100

    def test_dropped_tuples_synopsized_per_window(self):
        gw = make_gateway(bandwidth=10.0)
        out = gw.run(burst(100, value=42))
        ws = out.synopses[0]
        assert ws.dropped_count == out.dropped
        assert ws.synopsis.group_counts("R.a") == {42: float(out.dropped)}

    def test_synopsis_shipping_charged_to_link(self):
        gw = make_gateway(bandwidth=10.0)
        # Two windows of overload; the second window's first delivery must
        # come after the first window's synopsis crossed the wire.
        tuples = burst(50, t0=0.0) + burst(50, t0=1.0)
        out = gw.run(tuples)
        assert 0 in out.synopsis_delivery
        first_delivery_w1 = min(
            d.delivery_time for d in out.delivered if d.source_time >= 1.0
        )
        assert first_delivery_w1 >= out.synopsis_delivery[0] - 1e-9

    def test_latency_adds_to_delivery(self):
        gw = make_gateway(bandwidth=None, latency=0.25)
        out = gw.run(burst(3))
        for d in out.delivered:
            assert d.delivery_time == pytest.approx(d.source_time + 0.25)
        assert out.max_delivery_lag == pytest.approx(0.25)

    def test_drop_only_mode(self):
        gw = make_gateway(bandwidth=10.0, summarize=False)
        out = gw.run(burst(100))
        assert out.dropped > 0
        assert all(ws.synopsis is None for ws in out.synopses.values())


class TestGatewayExperiment:
    @pytest.fixture
    def setup(self, paper_catalog):
        rng = random.Random(4)
        gens = paper_row_generators()
        # 300 tuples/s per stream against 100/s links: ~2/3 must shed.
        streams = {
            name: generate_stream(600, SteadyArrival(300.0), gens[name], None, rng)
            for name in ("R", "S", "T")
        }
        config = PipelineConfig(
            strategy=ShedStrategy.DATA_TRIAGE,
            window=WindowSpec(width=0.5),
            service_time=1e-6,  # engine is not the bottleneck
        )
        pipeline = DataTriagePipeline(paper_catalog, QUERY, config)
        links = {
            name: NetworkLink(bandwidth=100.0, latency=0.01) for name in ("R", "S", "T")
        }
        return pipeline, streams, links

    def test_gateway_triage_beats_link_tail_drop(self, setup):
        pipeline, streams, links = setup
        triage = run_gateway_experiment(
            pipeline, streams, links, queue_capacity=20, summarize=True
        )
        naive = run_gateway_experiment(
            pipeline, streams, links, queue_capacity=20, summarize=False
        )
        assert triage.run.total_dropped > 0
        assert run_rms(triage.run) < run_rms(naive.run)

    def test_conservation(self, setup):
        pipeline, streams, links = setup
        result = run_gateway_experiment(pipeline, streams, links, queue_capacity=20)
        assert (
            result.run.total_kept + result.run.total_dropped
            == result.run.total_arrived
        )

    def test_lag_reported(self, setup):
        pipeline, streams, links = setup
        result = run_gateway_experiment(pipeline, streams, links, queue_capacity=20)
        assert result.max_delivery_lag > 0

    def test_fat_links_no_drops_exact_results(self, setup):
        pipeline, streams, _ = setup
        fat = {name: NetworkLink(latency=0.001) for name in ("R", "S", "T")}
        result = run_gateway_experiment(pipeline, streams, fat, queue_capacity=20)
        assert result.run.total_dropped == 0
        assert run_rms(result.run) == pytest.approx(0.0, abs=1e-9)
