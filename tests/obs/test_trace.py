"""Tracer ring buffer, event shapes, exports, validation, no-op path."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceError,
    Tracer,
    merge_jsonl_traces,
    new_span_id,
    new_trace_id,
    validate_chrome_trace,
)


class FakeClock:
    """A controllable clock so span durations are exact."""

    def __init__(self):
        self.t = 100.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(capacity=16, clock=clock)


def test_span_records_complete_event(tracer, clock):
    with tracer.span("exact", cat="window", window=3):
        clock.advance(0.002)
    (e,) = tracer.events()
    assert e["ph"] == "X"
    assert e["name"] == "exact"
    assert e["cat"] == "window"
    assert e["ts"] == 0.0  # span opened at tracer start
    assert e["dur"] == pytest.approx(2000.0)  # 2ms in µs
    assert e["args"] == {"window": 3}


def test_complete_pairs_with_now(tracer, clock):
    t0 = tracer.now()
    clock.advance(0.5)
    t1 = tracer.now()
    clock.advance(1.0)  # work after t1 must not leak into the span
    tracer.complete("drain", t0, t1, polled=7)
    (e,) = tracer.events()
    assert e["dur"] == pytest.approx(500_000.0)
    assert e["args"]["polled"] == 7


def test_complete_defaults_end_to_current_clock(tracer, clock):
    t0 = tracer.now()
    clock.advance(0.25)
    tracer.complete("drain", t0)
    assert tracer.events()[0]["dur"] == pytest.approx(250_000.0)


def test_instant_and_counter_shapes(tracer):
    tracer.instant("window_close", cat="window", window=1)
    tracer.counter("queue_depth", 42.0, stream="R")
    close, depth = tracer.events()
    assert close["ph"] == "i" and close["s"] == "t"
    assert depth["ph"] == "C"
    assert depth["args"] == {"stream": "R", "queue_depth": 42.0}


def test_tuple_event_stamps_wall_clock_and_stream_time(tracer, clock):
    clock.advance(3.0)
    tracer.tuple_event("shed", "R", 17.5)
    (e,) = tracer.events()
    assert e["cat"] == "tuple"
    assert e["ts"] == pytest.approx(3e6)  # wall clock, µs since start
    assert e["args"] == {"source": "R", "t": 17.5}


def test_tuple_events_flag_silences_lifecycle_only(clock):
    tracer = Tracer(capacity=16, tuple_events=False, clock=clock)
    tracer.tuple_event("ingest", "R", 0.0)
    tracer.instant("window_close")
    assert [e["name"] for e in tracer.events()] == ["window_close"]


def test_ring_buffer_evicts_oldest_and_counts_dropped(tracer):
    for i in range(20):
        tracer.instant(f"e{i}")
    assert len(tracer) == 16
    assert tracer.emitted == 20
    assert tracer.dropped == 4
    assert tracer.events()[0]["name"] == "e4"  # oldest four evicted


def test_clear_resets_buffer_and_counts(tracer):
    tracer.instant("x")
    tracer.clear()
    assert len(tracer) == 0 and tracer.emitted == 0 and tracer.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_to_chrome_validates_and_roundtrips(tracer, clock):
    with tracer.span("merge"):
        clock.advance(0.001)
    tracer.tuple_event("enqueue", "S", 1.0)
    doc = tracer.to_chrome()
    events = validate_chrome_trace(doc)
    # Two metadata events (process_name + trace_epoch) lead the export.
    assert [e["name"] for e in events] == [
        "process_name",
        "trace_epoch",
        "merge",
        "enqueue",
    ]
    assert doc["otherData"]["generator"] == "repro.obs.trace"
    # The document must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(doc)) == doc


def test_to_jsonl_one_object_per_line(tracer):
    tracer.instant("a")
    tracer.instant("b")
    lines = tracer.to_jsonl().splitlines()
    assert [json.loads(line)["name"] for line in lines] == [
        "process_name",
        "trace_epoch",
        "a",
        "b",
    ]


def test_write_both_formats(tracer, tmp_path):
    tracer.instant("a")
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    tracer.write(chrome, fmt="chrome")
    tracer.write(jsonl, fmt="jsonl")
    validate_chrome_trace(json.loads(chrome.read_text()))
    names = [json.loads(line)["name"] for line in jsonl.read_text().splitlines()]
    assert "a" in names
    with pytest.raises(ValueError):
        tracer.write(tmp_path / "t", fmt="xml")


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    with NULL_TRACER.span("anything"):
        pass
    NULL_TRACER.complete("drain", NULL_TRACER.now())
    NULL_TRACER.instant("x")
    NULL_TRACER.tuple_event("ingest", "R", 0.0)
    NULL_TRACER.counter("depth", 1.0)
    assert len(NULL_TRACER) == 0 and NULL_TRACER.emitted == 0


class TestTraceContext:
    def test_context_rides_every_event_until_cleared(self, tracer, clock):
        tracer.set_context("abc123", "p1")
        tracer.instant("ingest")
        with tracer.span("window"):
            clock.advance(0.001)
        tracer.clear_context()
        tracer.instant("after")
        ingest, window, after = tracer.events()
        assert ingest["args"]["trace_id"] == "abc123"
        assert ingest["args"]["parent"] == "p1"
        assert window["args"]["trace_id"] == "abc123"
        assert "trace_id" not in after.get("args", {})

    def test_latest_context_wins(self, tracer):
        tracer.set_context("first")
        tracer.set_context("second")
        tracer.instant("x")
        (e,) = tracer.events()
        assert e["args"]["trace_id"] == "second"
        assert "parent" not in e["args"]

    def test_flow_event_shape(self, tracer):
        tracer.flow("publish", "abc123", phase="s", stream="R")
        tracer.flow("publish", "abc123", phase="t")
        tracer.flow("publish", "abc123", phase="f")
        start, step, end = tracer.events()
        assert [e["ph"] for e in (start, step, end)] == ["s", "t", "f"]
        assert all(e["id"] == "abc123" for e in (start, step, end))
        assert end["bp"] == "e"  # bind to the enclosing slice
        assert start["args"]["stream"] == "R"

    def test_flow_phase_must_be_valid(self, tracer):
        with pytest.raises(ValueError):
            tracer.flow("x", "id", phase="q")

    def test_id_generators_are_hex_and_distinct(self):
        tid, sid = new_trace_id(), new_span_id()
        assert len(tid) == 16 and len(sid) == 8
        int(tid, 16), int(sid, 16)  # both parse as hex
        assert new_trace_id() != tid

    def test_bound_drop_counter_counts_evictions(self, clock):
        class Spy:
            calls = 0

            def inc(self, amount=1.0, **labels):
                Spy.calls += 1

        tracer = Tracer(capacity=4, clock=clock)
        tracer.bind_drop_counter(Spy())
        for i in range(7):
            tracer.instant(f"e{i}")
        assert tracer.dropped == 3
        assert Spy.calls == 3


class TestMergeJsonl:
    def write_pair(self, tmp_path, skew=0.5):
        """Two tracers, wall clocks ``skew`` seconds apart, one flow."""
        trace_id = "feedbeefcafe0123"
        client = Tracer(clock=lambda: 0.0, label="client", epoch=100.0)
        client.set_context(trace_id, "span01")
        client.instant("publish", cat="client")
        client.flow("publish", trace_id, phase="s")
        server_clock = {"t": 0.0}
        server = Tracer(
            clock=lambda: server_clock["t"], label="server", epoch=100.0 + skew
        )
        server.set_context(trace_id, "span01")
        server_clock["t"] = 0.25
        server.instant("ingest", cat="service")
        server.flow("publish", trace_id, phase="f")
        a, b = tmp_path / "client.jsonl", tmp_path / "server.jsonl"
        client.write(a, fmt="jsonl")
        server.write(b, fmt="jsonl")
        return trace_id, [a, b]

    def test_merge_validates_and_assigns_process_tracks(self, tmp_path):
        trace_id, paths = self.write_pair(tmp_path)
        doc = merge_jsonl_traces(paths)
        events = validate_chrome_trace(doc)
        named = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["args"]["name"] for e in named} == {"client", "server"}
        assert {e["pid"] for e in named} == {1, 2}

    def test_trace_id_spans_both_processes(self, tmp_path):
        trace_id, paths = self.write_pair(tmp_path)
        doc = merge_jsonl_traces(paths)
        carriers = [
            e
            for e in doc["traceEvents"]
            if isinstance(e.get("args"), dict)
            and e["args"].get("trace_id") == trace_id
        ]
        assert {e["pid"] for e in carriers} == {1, 2}
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert {e["id"] for e in flows} == {trace_id}
        assert {e["pid"] for e in flows} == {1, 2}

    def test_clock_offsets_align_timelines(self, tmp_path):
        _, paths = self.write_pair(tmp_path, skew=0.5)
        doc = merge_jsonl_traces(paths)
        offsets = doc["otherData"]["clock_offsets_us"]
        assert offsets["client"] == 0.0
        assert offsets["server"] == pytest.approx(500_000.0)
        ingest = next(
            e for e in doc["traceEvents"] if e["name"] == "ingest"
        )
        # Server's own clock read 0.25s; its epoch is 0.5s after the
        # client's, so the merged timeline places it at 0.75s.
        assert ingest["ts"] == pytest.approx(750_000.0)

    def test_labels_override_recorded_names(self, tmp_path):
        _, paths = self.write_pair(tmp_path)
        doc = merge_jsonl_traces(paths, labels=["a", "b"])
        named = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {e["args"]["name"] for e in named} == {"a", "b"}

    def test_merged_events_sorted_by_timestamp(self, tmp_path):
        _, paths = self.write_pair(tmp_path)
        doc = merge_jsonl_traces(paths)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_merge_rejects_garbage_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(TraceError):
            merge_jsonl_traces([bad])


@pytest.mark.parametrize(
    "doc",
    [
        {},
        {"traceEvents": {}},
        {"traceEvents": ["nope"]},
        {"traceEvents": [{"name": "", "cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": -1, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": 0, "pid": "1", "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "X", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 0, "args": [1]}]},
    ],
)
def test_validate_rejects_malformed(doc):
    with pytest.raises(TraceError):
        validate_chrome_trace(doc)
