"""The paper's experiment harness: workloads, sweeps, and figure series.

Everything the evaluation section needs, shared between the benchmark suite
(``benchmarks/``) and the examples:

* the experiment query and catalog (paper Figure 7);
* per-run drivers for the constant-rate (Figure 8) and bursty (Figure 9)
  workloads — windows scaled with rate so tuples/window stays constant
  (Section 6.2.1), ≥N runs per point with distinct seeds (Section 6.2.2);
* the Figure 6 microbenchmark pieces: the original 3-way join versus the
  rewritten synopsis query with fast (sparse histogram) and slow (unaligned
  MHIST) synopses.

Scale substitution (see DESIGN.md): the paper loaded 10 000 tuples per table
for the microbenchmark and drove a C engine at hundreds of tuples/second;
the defaults here are sized for a Python engine so that full sweeps run in
minutes, and EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.algebra.multiset import Multiset
from repro.core.pipeline import DataTriagePipeline, RunResult
from repro.core.policies import DropPolicy, RandomDropPolicy
from repro.core.strategies import PipelineConfig, ShedStrategy
from repro.engine.catalog import Catalog
from repro.engine.executor import QueryExecutor
from repro.engine.types import ColumnType, Schema
from repro.engine.window import WindowSpec
from repro.quality.report import Series
from repro.quality.rms import ErrorSummary, run_rms
from repro.rewrite.plan import SPJPlan
from repro.rewrite.shadow import ShadowPlan
from repro.sources.arrival import MarkovBurstArrival, SteadyArrival, generate_stream
from repro.sources.generators import paper_row_generators
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.synopses.base import Dimension, SynopsisFactory
from repro.synopses.mhist import MHistFactory
from repro.synopses.sparse_hist import SparseHistogramFactory

#: Paper Figure 7, verbatim (windows are supplied per run, scaled to rate).
PAPER_QUERY = (
    "SELECT a, COUNT(*) AS count "
    "FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d "
    "GROUP BY a;"
)

STREAM_NAMES = ("R", "S", "T")


def paper_catalog() -> Catalog:
    """The experiment's three streams: R(a), S(b, c), T(d), all INTEGER."""
    cat = Catalog()
    cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
    cat.create_stream(
        "S", Schema.of(("b", ColumnType.INTEGER), ("c", ColumnType.INTEGER))
    )
    cat.create_stream("T", Schema.of(("d", ColumnType.INTEGER)))
    return cat


@dataclass(frozen=True)
class ExperimentParams:
    """Shared knobs of the load experiments."""

    tuples_per_window: int = 150  # per stream; constant across rates (§6.2.1)
    n_windows: int = 8
    engine_capacity: float = 500.0  # tuples/sec through the standard path
    queue_capacity: int = 50
    burst_mean_shift: float = 25.0  # burst data: Gaussian mean moved by this
    synopsis_factory: SynopsisFactory = field(default_factory=SparseHistogramFactory)
    policy: DropPolicy = field(default_factory=RandomDropPolicy)

    @property
    def tuples_per_stream(self) -> int:
        return self.tuples_per_window * self.n_windows

    @property
    def service_time(self) -> float:
        return 1.0 / self.engine_capacity


# ---------------------------------------------------------------------------
# Figures 8 & 9: per-run drivers
# ---------------------------------------------------------------------------
def run_constant_rate(
    strategy: ShedStrategy,
    total_rate: float,
    params: ExperimentParams,
    seed: int,
    query: str = PAPER_QUERY,
) -> RunResult:
    """One Figure 8 run: steady arrivals at ``total_rate`` tuples/sec (all streams).

    ``query`` defaults to the paper's Figure 7 query; extension experiments
    pass variants (e.g. with SUM/AVG aggregates) over the same workload.
    """
    per_stream = total_rate / len(STREAM_NAMES)
    window = WindowSpec(width=params.tuples_per_window / per_stream)
    rng = random.Random(seed)
    gens = paper_row_generators()
    streams = {
        name: generate_stream(
            params.tuples_per_stream, SteadyArrival(per_stream), gens[name], None, rng
        )
        for name in STREAM_NAMES
    }
    return _run(strategy, window, params, seed, streams, query)


def bursty_workload(
    peak_rate: float,
    params: ExperimentParams,
    seed: int,
    burst_speedup: float = 100.0,
    burst_fraction: float = 0.6,
    expected_burst_length: float = 200.0,
):
    """The Figure 9 workload: ``(window, streams)`` for a bursty run.

    Burst tuples draw from Gaussians with shifted means (Section 6.2.2); the
    window width is scaled by the process's *mean* rate so the expected
    tuples/window matches the constant-rate experiments.
    """
    per_stream_base = peak_rate / burst_speedup / len(STREAM_NAMES)
    arrival = MarkovBurstArrival(
        base_rate=per_stream_base,
        burst_speedup=burst_speedup,
        burst_fraction=burst_fraction,
        expected_burst_length=expected_burst_length,
    )
    window = WindowSpec(width=params.tuples_per_window / arrival.mean_rate)
    rng = random.Random(seed)
    gens = paper_row_generators()
    burst_gens = {
        name: gen.shifted(params.burst_mean_shift) for name, gen in gens.items()
    }
    streams = {
        name: generate_stream(
            params.tuples_per_stream, arrival, gens[name], burst_gens[name], rng
        )
        for name in STREAM_NAMES
    }
    return window, streams


def bursty_pipeline(
    strategy: ShedStrategy,
    peak_rate: float,
    params: ExperimentParams,
    seed: int,
    *,
    obs=None,
    query: str = PAPER_QUERY,
    burst_speedup: float = 100.0,
    burst_fraction: float = 0.6,
    expected_burst_length: float = 200.0,
):
    """A ready-to-run Figure 9 pipeline: ``(pipeline, streams)``.

    The bench harness and ``repro trace`` share this so instrumented runs
    (``obs``) drive byte-identical workloads to the plain ones.
    """
    window, streams = bursty_workload(
        peak_rate, params, seed, burst_speedup, burst_fraction, expected_burst_length
    )
    pipeline = DataTriagePipeline(
        paper_catalog(), query, _config(strategy, window, params, seed), obs=obs
    )
    return pipeline, streams


def run_bursty_rate(
    strategy: ShedStrategy,
    peak_rate: float,
    params: ExperimentParams,
    seed: int,
    burst_speedup: float = 100.0,
    burst_fraction: float = 0.6,
    expected_burst_length: float = 200.0,
) -> RunResult:
    """One Figure 9 run: two-state Markov bursts peaking at ``peak_rate``."""
    pipeline, streams = bursty_pipeline(
        strategy,
        peak_rate,
        params,
        seed,
        burst_speedup=burst_speedup,
        burst_fraction=burst_fraction,
        expected_burst_length=expected_burst_length,
    )
    return pipeline.run(streams)


def _config(strategy, window, params: ExperimentParams, seed) -> PipelineConfig:
    return PipelineConfig(
        strategy=strategy,
        window=window,
        queue_capacity=params.queue_capacity,
        policy=params.policy,
        synopsis_factory=params.synopsis_factory,
        service_time=params.service_time,
        seed=seed,
    )


def _run(
    strategy, window, params: ExperimentParams, seed, streams, query=PAPER_QUERY
) -> RunResult:
    pipeline = DataTriagePipeline(
        paper_catalog(), query, _config(strategy, window, params, seed)
    )
    return pipeline.run(streams)


# ---------------------------------------------------------------------------
# Series builders (one per figure)
# ---------------------------------------------------------------------------
METHOD_LABELS = {
    ShedStrategy.DATA_TRIAGE: "data_triage",
    ShedStrategy.DROP_ONLY: "drop_only",
    ShedStrategy.SUMMARIZE_ONLY: "summarize_only",
}


def figure8_series(
    rates: list[float],
    n_runs: int = 9,
    params: ExperimentParams | None = None,
) -> Series:
    """Figure 8: RMS error vs. constant data rate, all three methods."""
    params = params or ExperimentParams()
    series = Series(
        title="Figure 8: RMS error vs. constant data rate",
        x_label="rate_tuples_per_sec",
        methods=list(METHOD_LABELS.values()),
    )
    for rate in rates:
        summaries = {}
        for strategy, label in METHOD_LABELS.items():
            values = [
                run_rms(run_constant_rate(strategy, rate, params, seed))
                for seed in range(n_runs)
            ]
            summaries[label] = ErrorSummary.from_values(values)
        series.add_point(rate, summaries)
    return series


def figure9_series(
    peak_rates: list[float],
    n_runs: int = 9,
    params: ExperimentParams | None = None,
) -> Series:
    """Figure 9: RMS error vs. peak data rate under bursty arrivals."""
    params = params or ExperimentParams()
    series = Series(
        title="Figure 9: RMS error vs. peak data rate (bursty)",
        x_label="peak_rate_tuples_per_sec",
        methods=list(METHOD_LABELS.values()),
    )
    for peak in peak_rates:
        summaries = {}
        for strategy, label in METHOD_LABELS.items():
            values = [
                run_rms(run_bursty_rate(strategy, peak, params, seed))
                for seed in range(n_runs)
            ]
            summaries[label] = ErrorSummary.from_values(values)
        series.add_point(peak, summaries)
    return series


# ---------------------------------------------------------------------------
# Figure 6: the query-rewrite overhead microbenchmark
# ---------------------------------------------------------------------------
@dataclass
class MicrobenchSetup:
    """Pre-generated tables and compiled plans for the Figure 6 comparison.

    ``tables`` holds each stream's full contents; ``kept``/``dropped`` are a
    50/50 split of the same rows, matching the microbenchmark's use of the
    rewritten query over substream tables.
    """

    catalog: Catalog
    plan: SPJPlan
    shadow: ShadowPlan
    executor: QueryExecutor
    bound: object
    tables: dict[str, Multiset]
    kept: dict[str, Multiset]
    dropped: dict[str, Multiset]
    dims: dict[str, list[Dimension]]


def microbench_setup(rows_per_table: int = 2000, seed: int = 7) -> MicrobenchSetup:
    """Build the microbenchmark fixtures (paper: 10 000 random rows/table).

    The default is scaled down for a Python engine; pass 10000 to match the
    paper's table sizes exactly (the *ratios* are what Figure 6 reports).
    """
    catalog = paper_catalog()
    stmt = parse_statement(PAPER_QUERY)
    bound = Binder(catalog).bind(stmt)
    plan = SPJPlan.from_bound(bound)
    shadow = ShadowPlan(plan)
    rng = random.Random(seed)
    gens = paper_row_generators()
    tables, kept, dropped = {}, {}, {}
    for name in STREAM_NAMES:
        rows = [gens[name].draw(rng) for _ in range(rows_per_table)]
        tables[name] = Multiset(rows)
        half = rows_per_table // 2
        kept[name] = Multiset(rows[:half])
        dropped[name] = Multiset(rows[half:])
    dims = {
        "R": [Dimension("R.a", 1, 100)],
        "S": [Dimension("S.b", 1, 100), Dimension("S.c", 1, 100)],
        "T": [Dimension("T.d", 1, 100)],
    }
    return MicrobenchSetup(
        catalog=catalog,
        plan=plan,
        shadow=shadow,
        executor=QueryExecutor(catalog),
        bound=bound,
        tables=tables,
        kept=kept,
        dropped=dropped,
        dims=dims,
    )


def microbench_original(setup: MicrobenchSetup) -> int:
    """Run the original (relational) query over the full tables.

    Returns the number of result groups, so callers can sanity-check work
    actually happened.
    """
    inputs = {name.lower(): bag for name, bag in setup.tables.items()}
    result = setup.executor.execute(setup.bound, inputs)
    return len(result.rows)


def microbench_rewritten(
    setup: MicrobenchSetup, factory: SynopsisFactory
) -> float:
    """Run the rewritten (synopsized) query: build synopses, evaluate Q-.

    Includes synopsis construction from the substream tables, exactly as the
    microbenchmark's UDFs built histograms from tables.  Returns the
    estimated count of dropped results.
    """
    kept_syn, dropped_syn = {}, {}
    for name in STREAM_NAMES:
        for split, target in ((setup.kept, kept_syn), (setup.dropped, dropped_syn)):
            syn = factory.create(setup.dims[name])
            syn.insert_many(split[name])
            target[name] = syn
    est = setup.shadow.estimate_dropped(kept_syn, dropped_syn)
    return 0.0 if est is None else est.total()


def fast_synopsis_factory() -> SynopsisFactory:
    """Figure 6's "fast synopsis": the sparse cubic histogram."""
    return SparseHistogramFactory(bucket_width=5)


def slow_synopsis_factory() -> SynopsisFactory:
    """Figure 6's "slow synopsis": an untuned (unaligned) MHIST."""
    return MHistFactory(max_buckets=100, grid=None)


def aligned_mhist_factory() -> SynopsisFactory:
    """The Future-Work mitigation: MHIST with grid-constrained boundaries."""
    return MHistFactory(max_buckets=100, grid=5)
