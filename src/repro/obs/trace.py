"""Low-overhead tracing: spans and tuple-lifecycle events in a ring buffer.

The paper's argument is a visibility argument — Data Triage trades *which*
tuples get exact treatment for bounded latency — and defending it requires
seeing where time and tuples go: queue wait, shed-to-synopsis, shadow-plan
cost, merge.  :class:`Tracer` records that story as

* **spans** — named durations (``drain``, ``exact``, ``shadow``,
  ``merge``, ``run``) with arbitrary JSON-safe args;
* **instants** — point events, most importantly tuple-lifecycle stages
  (``ingest`` → ``enqueue`` → ``shed``/``summarize`` → ``poll`` →
  ``window_close`` → ``emit``);
* **counters** — sampled numeric series (queue depth over time).

Events land in a bounded ring buffer (old events are discarded, with a
dropped-event count kept), so tracing a long run costs O(capacity) memory
no matter the workload.  Two exports:

* :meth:`Tracer.to_chrome` — the Chrome trace-event JSON format
  (``{"traceEvents": [...]}``), loadable in Perfetto / ``chrome://tracing``;
* :meth:`Tracer.to_jsonl` — one JSON object per line, for ad-hoc grepping.

**No-op fast path.**  Hot loops must pay nothing when tracing is off:
:data:`NULL_TRACER` is a shared :class:`NullTracer` whose ``enabled`` is
False and whose ``span`` returns a reusable null context manager.
Instrumentation sites branch on the ``enabled``/``tuple_events`` booleans
before building event args.

**Cross-process propagation.**  A tuple's life now starts in a client
process and ends in a RESULT fan-out, so traces must survive the wire:

* :func:`new_trace_id` / :func:`new_span_id` mint the identifiers a
  :class:`~repro.service.client.TriageClient` attaches to PUBLISH frames;
* :meth:`Tracer.set_context` installs a ``{trace_id, parent}`` context that
  is merged into every event recorded until :meth:`Tracer.clear_context` —
  the server brackets a traced batch's ingest with it, so queue and window
  events downstream carry the client's trace_id without threading it
  through every call;
* :meth:`Tracer.flow` records Chrome flow events (``s``/``t``/``f``) keyed
  by trace_id, which Perfetto renders as arrows across process tracks;
* every tracer stamps a wall-clock ``epoch`` into metadata events, and
  :func:`merge_jsonl_traces` uses those anchors to rebase two sides'
  monotonic timestamps onto one axis (clock-offset alignment) and emit a
  single Perfetto-loadable document.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import nullcontext

__all__ = [
    "TraceError",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "new_trace_id",
    "new_span_id",
    "merge_jsonl_traces",
    "validate_chrome_trace",
]

#: Chrome trace-event phase codes used here.
_PH_COMPLETE = "X"
_PH_INSTANT = "i"
_PH_COUNTER = "C"
_PH_METADATA = "M"
#: Flow phases: start / step / end, joined by a shared ``id``.
_PH_FLOW = ("s", "t", "f")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace identifier (random, collision-unlikely)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span identifier."""
    return os.urandom(4).hex()


class TraceError(ValueError):
    """Raised when a trace document fails schema validation."""


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_t0")

    def __init__(self, tracer, name, cat, tid, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def __enter__(self):
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        t1 = self._tracer._clock()
        self._tracer._record(
            {
                "name": self._name,
                "cat": self._cat,
                "ph": _PH_COMPLETE,
                "ts": self._tracer._us(self._t0),
                "dur": max(0.0, (t1 - self._t0) * 1e6),
                "tid": self._tid,
            },
            self._args,
        )
        return False


class Tracer:
    """Span/instant/counter recorder over a bounded ring buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        *,
        tuple_events: bool = True,
        clock=time.perf_counter,
        pid: int = 1,
        label: str = "repro",
        epoch: float | None = None,
    ) -> None:
        """``capacity`` bounds retained events (oldest evicted first);
        ``tuple_events=False`` keeps spans but silences the per-tuple
        lifecycle instants, which dominate event volume on big runs.
        ``label`` names the process track in merged traces; ``epoch`` is the
        wall-clock (``time.time``) anchor paired with the monotonic clock's
        zero, used by :func:`merge_jsonl_traces` for cross-process
        alignment (defaults to the construction instant).
        """
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.tuple_events = tuple_events
        self.pid = pid
        self.label = label
        self._clock = clock
        self._t0 = clock()
        self.epoch = time.time() if epoch is None else epoch
        self._events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0  # total events ever recorded (≥ len(events))
        self._context: dict | None = None
        self._drop_counter = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _us(self, t: float) -> float:
        """Clock reading → microseconds since tracer start."""
        return (t - self._t0) * 1e6

    def _record(self, event: dict, args: dict | None) -> None:
        event["pid"] = self.pid
        ctx = self._context
        if ctx is not None:
            args = {**ctx, **args} if args else dict(ctx)
        if args:
            event["args"] = args
        if (
            self._drop_counter is not None
            and len(self._events) == self.capacity
        ):
            self._drop_counter.inc()
        self._events.append(event)
        self.emitted += 1

    # ------------------------------------------------------------------
    # Cross-process context
    # ------------------------------------------------------------------
    def set_context(self, trace_id: str, parent: str | None = None) -> None:
        """Merge ``{trace_id, parent}`` into every event until cleared.

        Instrumentation downstream of the install site (queue events, window
        spans) then carries the originating client's identifiers without any
        per-call plumbing.  Contexts do not nest: the latest install wins.
        """
        ctx = {"trace_id": trace_id}
        if parent is not None:
            ctx["parent"] = parent
        self._context = ctx

    def clear_context(self) -> None:
        self._context = None

    def bind_drop_counter(self, counter) -> None:
        """Count ring-buffer evictions into ``counter`` (``.inc()`` per
        evicted event) so overflow is visible in metrics, not just in the
        trace document's ``otherData``."""
        self._drop_counter = counter

    def flow(
        self,
        name: str,
        flow_id: str,
        phase: str = "s",
        cat: str = "flow",
        tid: int = 0,
        **args,
    ) -> None:
        """Record a flow event (``s`` start / ``t`` step / ``f`` end).

        Events sharing ``flow_id`` are drawn as arrows in Perfetto — the
        cross-process thread a merged client+server trace hangs on.
        """
        if phase not in _PH_FLOW:
            raise ValueError(f"flow phase must be one of {_PH_FLOW}: {phase!r}")
        event = {
            "name": name,
            "cat": cat,
            "ph": phase,
            "ts": self._us(self._clock()),
            "tid": tid,
            "id": flow_id,
        }
        if phase == "f":
            event["bp"] = "e"  # bind to the enclosing slice
        self._record(event, args)

    def span(self, name: str, cat: str = "pipeline", tid: int = 0, **args):
        """A context manager timing one named duration."""
        return _Span(self, name, cat, tid, args)

    def now(self) -> float:
        """A raw clock reading, for pairing with :meth:`complete`."""
        return self._clock()

    def complete(
        self,
        name: str,
        start: float,
        end: float | None = None,
        cat: str = "pipeline",
        tid: int = 0,
        **args,
    ) -> None:
        """Record a complete event from a :meth:`now` reading taken earlier.

        The manual counterpart of :meth:`span`, for hot paths that only
        decide *after* the work whether the duration is worth an event
        (e.g. a queue drain that polled nothing).  ``end`` defaults to the
        current clock reading.
        """
        if end is None:
            end = self._clock()
        self._record(
            {
                "name": name,
                "cat": cat,
                "ph": _PH_COMPLETE,
                "ts": self._us(start),
                "dur": max(0.0, (end - start) * 1e6),
                "tid": tid,
            },
            args,
        )

    def instant(self, name: str, cat: str = "event", tid: int = 0, **args) -> None:
        """Record a point event at the current clock reading."""
        self._record(
            {
                "name": name,
                "cat": cat,
                "ph": _PH_INSTANT,
                "ts": self._us(self._clock()),
                "s": "t",  # thread-scoped instant
                "tid": tid,
            },
            args,
        )

    def tuple_event(self, stage: str, source: str, timestamp: float, **args) -> None:
        """One tuple-lifecycle stage (``ingest``/``enqueue``/``shed``/...).

        ``timestamp`` is the tuple's *stream* (virtual-clock) timestamp; the
        event itself is stamped on the tracer's wall clock so Perfetto lays
        lifecycle events out alongside the spans that caused them.
        """
        if not self.tuple_events:
            return
        args["source"] = source
        args["t"] = timestamp
        self._record(
            {
                "name": stage,
                "cat": "tuple",
                "ph": _PH_INSTANT,
                "ts": self._us(self._clock()),
                "s": "t",
                "tid": 0,
            },
            args,
        )

    def counter(self, name: str, value: float, tid: int = 0, **labels) -> None:
        """Record one sample of a numeric series (rendered as a track)."""
        labels[name] = value
        self._record(
            {
                "name": name,
                "cat": "counter",
                "ph": _PH_COUNTER,
                "ts": self._us(self._clock()),
                "tid": tid,
            },
            labels,
        )

    # ------------------------------------------------------------------
    # Introspection & export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since construction."""
        return self.emitted - len(self._events)

    def events(self) -> list[dict]:
        """The retained events, oldest first (copies the ring buffer)."""
        return list(self._events)

    def meta_events(self) -> list[dict]:
        """Metadata events naming the process track and anchoring its clock.

        ``trace_epoch`` pairs the monotonic timestamp origin (``ts == 0``)
        with a wall-clock reading; :func:`merge_jsonl_traces` subtracts two
        tracers' epochs to align their timelines.
        """
        return [
            {
                "name": "process_name",
                "ph": _PH_METADATA,
                "ts": 0,
                "pid": self.pid,
                "tid": 0,
                "args": {"name": self.label},
            },
            {
                "name": "trace_epoch",
                "ph": _PH_METADATA,
                "ts": 0,
                "pid": self.pid,
                "tid": 0,
                "args": {"epoch": self.epoch, "label": self.label},
            },
        ]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (Perfetto-loadable)."""
        return {
            "traceEvents": self.meta_events() + self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace",
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first (trailing newline).

        The metadata events lead, so a JSONL file is self-describing: the
        ``trace_epoch`` line is what lets :func:`merge_jsonl_traces` align
        this file against another process's export.
        """
        return "".join(
            json.dumps(e) + "\n" for e in self.meta_events() + list(self._events)
        )

    def write(self, path, fmt: str = "chrome") -> None:
        """Write the trace to ``path`` as ``chrome`` JSON or ``jsonl``."""
        if fmt == "chrome":
            text = json.dumps(self.to_chrome(), indent=1) + "\n"
        elif fmt == "jsonl":
            text = self.to_jsonl()
        else:
            raise ValueError(f"unknown trace format {fmt!r} (chrome|jsonl)")
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(text)


class NullTracer(Tracer):
    """The disabled tracer: every recording entry point is a no-op.

    Shared as :data:`NULL_TRACER`; hot paths check ``tracer.enabled`` (a
    class attribute, so the check is one LOAD_ATTR) and skip instrumentation
    entirely, so a pipeline without observability pays nothing beyond that.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)
        self.tuple_events = False
        self._null_cm = nullcontext()

    def span(self, name, cat="pipeline", tid=0, **args):
        return self._null_cm

    def complete(self, name, start, end=None, cat="pipeline", tid=0, **args):
        return None

    def instant(self, name, cat="event", tid=0, **args):
        return None

    def tuple_event(self, stage, source, timestamp, **args):
        return None

    def counter(self, name, value, tid=0, **labels):
        return None

    def flow(self, name, flow_id, phase="s", cat="flow", tid=0, **args):
        return None

    def set_context(self, trace_id, parent=None):
        return None


#: Process-wide disabled tracer; the default for every instrumented layer.
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Cross-process merge
# ---------------------------------------------------------------------------
def _load_jsonl_events(path) -> list[dict]:
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: not JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise TraceError(f"{path}:{lineno}: event is not an object")
            events.append(obj)
    return events


def merge_jsonl_traces(paths, labels=None) -> dict:
    """Stitch per-process JSONL exports into one Chrome trace document.

    Each input file is one :meth:`Tracer.to_jsonl` export.  Timestamps in
    those files are microseconds on each process's *own* monotonic clock;
    the files' ``trace_epoch`` metadata anchors each clock's zero to wall
    time, so the merge rebases every event by ``(epoch_i - min(epoch))``
    — clock-offset alignment good to the wall clocks' mutual skew, which
    for a client and server on one machine is effectively exact.

    Every file gets a distinct ``pid`` (1-based input order) so Perfetto
    renders it as its own process track; ``labels`` overrides the track
    names (defaults to each file's recorded label, then the path).  Returns
    a validated Chrome trace document.
    """
    paths = list(paths)
    if not paths:
        raise TraceError("merge needs at least one JSONL trace")
    sides: list[tuple[str, list[dict], float]] = []
    for i, path in enumerate(paths):
        events = _load_jsonl_events(path)
        epoch = 0.0
        label = str(path)
        for e in events:
            if e.get("name") == "trace_epoch" and e.get("ph") == _PH_METADATA:
                args = e.get("args") or {}
                epoch = float(args.get("epoch", 0.0))
                label = str(args.get("label") or label)
                break
        if labels is not None and i < len(labels) and labels[i]:
            label = labels[i]
        sides.append((label, events, epoch))

    base = min(epoch for _, _, epoch in sides)
    merged: list[dict] = []
    offsets: dict[str, float] = {}
    for i, (label, events, epoch) in enumerate(sides):
        pid = i + 1
        offset_us = (epoch - base) * 1e6
        offsets[label] = offset_us
        merged.append(
            {
                "name": "process_name",
                "ph": _PH_METADATA,
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for e in events:
            if e.get("ph") == _PH_METADATA:
                continue  # re-issued above, with the merged pid
            e = dict(e)
            e["pid"] = pid
            e["ts"] = float(e.get("ts", 0.0)) + offset_us
            merged.append(e)
    meta = [e for e in merged if e.get("ph") == _PH_METADATA]
    rest = sorted(
        (e for e in merged if e.get("ph") != _PH_METADATA),
        key=lambda e: e["ts"],
    )
    doc = {
        "traceEvents": meta + rest,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.trace.merge",
            "merged_from": [str(p) for p in paths],
            "clock_offsets_us": offsets,
        },
    }
    validate_chrome_trace(doc)
    return doc


# ---------------------------------------------------------------------------
# Validation (used by tests and the CI obs-smoke step)
# ---------------------------------------------------------------------------
_VALID_PHASES = {_PH_COMPLETE, _PH_INSTANT, _PH_COUNTER, "B", "E", "M", *_PH_FLOW}


def validate_chrome_trace(doc: dict) -> list[dict]:
    """Check ``doc`` against the Chrome trace-event schema subset we emit.

    Returns the event list on success; raises :class:`TraceError` naming the
    first offending event otherwise.  Checked invariants: top-level
    ``traceEvents`` array; every event has string ``name``/``cat``, a known
    ``ph``, numeric non-negative ``ts``, integer ``pid``/``tid``; complete
    events carry a numeric non-negative ``dur``; flow events carry a string
    ``id``; args (when present) are JSON-serializable objects.
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise TraceError("trace document must have a traceEvents array")
    events = doc["traceEvents"]
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            raise TraceError(f"{where}: not an object")
        if e.get("ph") not in _VALID_PHASES:
            raise TraceError(f"{where}: unknown phase {e.get('ph')!r}")
        # Metadata events carry no category by convention.
        required = ("name",) if e["ph"] == _PH_METADATA else ("name", "cat")
        for key in required:
            if not isinstance(e.get(key), str) or not e[key]:
                raise TraceError(f"{where}: missing/empty {key!r}")
        if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
            raise TraceError(f"{where}: bad ts {e.get('ts')!r}")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                raise TraceError(f"{where}: bad {key} {e.get(key)!r}")
        if e["ph"] == _PH_COMPLETE and (
            not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0
        ):
            raise TraceError(f"{where}: complete event needs dur >= 0")
        if e["ph"] in _PH_FLOW and (
            not isinstance(e.get("id"), str) or not e["id"]
        ):
            raise TraceError(f"{where}: flow event needs a string id")
        if "args" in e:
            if not isinstance(e["args"], dict):
                raise TraceError(f"{where}: args must be an object")
            try:
                json.dumps(e["args"])
            except (TypeError, ValueError) as exc:
                raise TraceError(f"{where}: args not JSON-safe: {exc}") from None
    return events
