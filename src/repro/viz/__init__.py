"""Detail-in-context visualization (paper Figure 3 / Section 8.1)."""

from repro.viz.ascii_backend import render_ascii
from repro.viz.chart_backend import render_series_svg
from repro.viz.scene import PointMark, RectMark, Scene, SceneError, build_scene
from repro.viz.svg_backend import render_svg

__all__ = [
    "Scene",
    "PointMark",
    "RectMark",
    "SceneError",
    "build_scene",
    "render_ascii",
    "render_svg",
    "render_series_svg",
]
