"""TriageServer hosting a CEP pattern query: metrics, summary, refusal."""

import pytest

from repro.cep import DEMO_PATTERN, PatternUtilityPolicy, bursty_pattern_workload, demo_catalog
from repro.core.strategies import PipelineConfig
from repro.service import ServiceConfig, TriageServer

QUERY = (
    "SELECT A.k, COUNT(*) AS n FROM A, B, C "
    "WHERE A.k = B.k AND B.k = C.k GROUP BY A.k; "
    "WINDOW A ['2 seconds'], B ['2 seconds'], C ['2 seconds']"
)


def make_server(policy=None, shards=1):
    config = PipelineConfig(compute_ideal=False)
    if policy is not None:
        config.policy = policy
    service = ServiceConfig(
        tick_interval=None, clock=lambda: 1000.0, shards=shards
    )
    return TriageServer(demo_catalog(), QUERY, config, service)


class TestAttachPattern:
    def test_matches_and_metrics_flow(self):
        server = make_server()
        engine = server.attach_pattern(DEMO_PATTERN)
        for stream, tup in bursty_pattern_workload(n_events=800, seed=0):
            server.ingest_rows(
                stream, [list(tup.row)], [tup.timestamp], now=tup.timestamp
            )
        server.plane.drain(None)
        matches = server.take_matches()
        assert matches
        assert engine.stats.matches == len(matches)
        metrics = server.metrics.to_dict()
        assert metrics["cep_matches_total"]["values"][""] == len(matches)
        assert metrics["cep_runs_started_total"]["values"][""] > 0

    def test_summary_reports_pattern_block(self):
        server = make_server()
        server.attach_pattern(DEMO_PATTERN)
        summary = server._summary()
        assert summary["pattern"]["streams"] == ["A", "B", "C"]
        assert summary["pattern"]["within"] == 2.0
        assert summary["pattern"]["active_runs"] == 0

    def test_binds_engine_into_pattern_aware_policy(self):
        policy = PatternUtilityPolicy()
        server = make_server(policy=policy)
        engine = server.attach_pattern(DEMO_PATTERN)
        assert policy.engine is engine

    def test_take_matches_pops(self):
        server = make_server()
        server.attach_pattern(DEMO_PATTERN)
        assert server.take_matches() == []

    def test_sharded_plane_refuses_pattern(self):
        # The error must be actionable: it names the --shards restriction.
        server = make_server(shards=2)
        try:
            with pytest.raises(ValueError, match="--shards 1"):
                server.attach_pattern(DEMO_PATTERN)
        finally:
            server.plane.close()

    def test_sharded_plane_object_refuses_pattern_directly(self):
        # Embedders driving the plane (not the server) get the same clear
        # refusal, not an AttributeError.
        from repro.sql.binder import Binder
        from repro.sql.parser import parse_statement

        server = make_server(shards=2)
        try:
            bound = Binder(demo_catalog()).bind_pattern(
                parse_statement(DEMO_PATTERN)
            )
            assert server.plane.pattern_engine is None
            with pytest.raises(ValueError, match="--shards 1"):
                server.plane.attach_pattern(bound)
        finally:
            server.plane.close()

    def test_rejects_non_pattern_text(self):
        server = make_server()
        with pytest.raises(TypeError):
            server.attach_pattern("SELECT A.k FROM A")
