"""Per-window reports in the live service: STATS export + summary rollup."""

import asyncio
import contextlib

from repro.core.strategies import PipelineConfig
from repro.engine.window import WindowSpec
from repro.experiments import paper_catalog
from repro.obs import Observability
from repro.service import ServiceConfig, TriageClient, TriageServer

QUERY_R_ONLY = "SELECT a, COUNT(*) AS n FROM R GROUP BY a;"


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@contextlib.asynccontextmanager
async def serve(*, queue_capacity=10, obs=None):
    clock = ManualClock()
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=queue_capacity,
        service_time=0.01,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=clock)
    server = TriageServer(
        paper_catalog(), QUERY_R_ONLY, config, service, obs=obs
    )
    await server.start()
    server.clock = clock
    try:
        yield server
    finally:
        await server.shutdown()


def run(coro):
    return asyncio.run(coro)


def publish_two_windows(server):
    """20 rows into window 0 (some shed at capacity 10), 5 into window 1."""
    server.ingest_rows("R", [[1]] * 20, timestamps=[i / 20 for i in range(20)], now=0.0)
    server.ingest_rows("R", [[2]] * 5, timestamps=[1.0 + i / 10 for i in range(5)], now=1.0)


class TestWindowReports:
    def test_reports_accumulate_as_windows_close(self):
        async def scenario():
            async with serve(queue_capacity=10) as server:
                publish_two_windows(server)
                server.clock.t = 5.0
                await server.tick()
                reports = list(server._window_reports)
                assert [r.window_id for r in reports] == [0, 1]
                w0 = reports[0]
                assert w0.arrived == 20
                assert w0.kept + w0.dropped == 20
                assert w0.dropped > 0  # capacity 10 forced shedding
                assert 0.0 < w0.drop_fraction < 1.0
                assert w0.result_latency is not None
                assert w0.rms_error is None  # no ideal reference live
                assert reports[1].arrived == 5

        run(scenario())

    def test_stats_reply_carries_window_reports(self):
        async def scenario():
            async with serve(queue_capacity=10) as server:
                client = await TriageClient.connect(
                    "127.0.0.1", server.port, client_name="t"
                )
                await client.declare("R")
                publish_two_windows(server)
                server.clock.t = 5.0
                await server.tick()
                stats = await client.stats()
                reports = stats["window_reports"]
                assert [r["window_id"] for r in reports] == [0, 1]
                assert reports[0]["arrived"] == 20
                assert reports[0]["dropped"] > 0
                rollup = stats["summary"]["windows"]
                assert rollup["windows"] == 2
                assert rollup["arrived"] == 25
                assert rollup["worst_latency_window"] in (0, 1)
                await client.close()

        run(scenario())

    def test_obs_attached_reports_include_phase_seconds(self):
        async def scenario():
            obs = Observability()
            async with serve(queue_capacity=10, obs=obs) as server:
                assert server.metrics is obs.registry  # one shared snapshot
                publish_two_windows(server)
                server.clock.t = 5.0
                await server.tick()
                reports = list(server._window_reports)
                assert len(reports) == 2
                for r in reports:
                    assert {"exact", "shadow", "merge"} <= set(r.phase_seconds)
                # Consumed into the reports: the per-window store drains.
                assert obs.phase_seconds == {}

        run(scenario())

    def test_summary_without_closed_windows(self):
        async def scenario():
            async with serve() as server:
                assert server._summary()["windows"] == {"windows": 0}

        run(scenario())
