"""``repro top`` — a dependency-free ANSI terminal dashboard.

Renders the triage service's live TELEMETRY feed (see docs/service.md) as a
small ``top``-style screen: queue depths and shed ratio per source, latency
and RMS-error sparklines over recent windows, and any firing SLO alerts.
Everything is plain ``str`` rendering over ANSI escape codes — no curses, no
third-party packages — so it works anywhere the client does and its output
can be captured verbatim in tests and CI (``repro top --once``).

The module splits cleanly in two:

* :class:`Dashboard` is pure state + rendering.  Feed it TELEMETRY payload
  dicts (or one STATS response via :meth:`feed_stats`) and ask for
  :meth:`render`; nothing here touches a socket or the terminal.
* :func:`run_top` owns the asyncio client loop and the screen, and is what
  ``repro top`` calls.
"""

from __future__ import annotations

import json
from collections import deque

__all__ = ["Dashboard", "sparkline", "run_top"]

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def sparkline(values, width: int = 32) -> str:
    """Render the last ``width`` values as a unicode sparkline.

    Scaling is min→max over the rendered slice; a flat series renders as
    all-low rather than all-high so "nothing happening" looks calm.
    """
    tail = [float(v) for v in list(values)[-width:]]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(tail)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - lo) / span * top))] for v in tail
    )


def _fmt_num(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


class Dashboard:
    """Accumulate telemetry payloads and render them as a text screen.

    ``history`` bounds the per-series sparkline memory.  ``color=False``
    strips every ANSI attribute (kept for ``--once`` captures piped to
    files); the clear-screen prefix is controlled separately by the caller.
    """

    def __init__(self, *, history: int = 64, color: bool = True) -> None:
        self.history = history
        self.color = color
        self.frames = 0
        self.now: float | None = None
        self.interval: float | None = None
        self.summary: dict = {}
        self.firing: list[str] = []
        self.slo: dict = {}
        self.latency = deque(maxlen=history)
        self.error = deque(maxlen=history)
        self.shed = deque(maxlen=history)
        self.depth = deque(maxlen=history)
        self.alerts_log = deque(maxlen=8)
        self.counters: dict[str, float] = {}
        #: Latest audit-ledger summary (empty when the server runs audit-off,
        #: in which case the quality panel is not rendered at all).
        self.audit: dict = {}
        #: Recent per-window attribution records (newest last).
        self.attributions = deque(maxlen=history)
        #: Attributed error basis per window, for the quality sparkline.
        self.quality = deque(maxlen=history)
        #: Latest profiler summary + top self-time frames (empty when the
        #: server runs with profiling off — panel not rendered at all).
        self.prof: dict = {}
        #: Latest CEP pattern block (empty when no pattern is attached, in
        #: which case the cep panel is not rendered at all).
        self.pattern: dict = {}
        #: Active-run gauge history, for the runs sparkline.
        self.cep_runs = deque(maxlen=history)
        #: Matches completed per frame (delta of the matches counter).
        self.cep_rate = deque(maxlen=history)
        self._cep_prev_matches: int | None = None

    # ------------------------------------------------------------------
    def feed(self, payload: dict) -> None:
        """Ingest one TELEMETRY frame payload (already decoded)."""
        self.frames += 1
        self.now = payload.get("now", self.now)
        self.interval = payload.get("interval", self.interval)
        if "summary" in payload:
            self.summary = payload["summary"] or {}
            depth = self.summary.get("queue_depth")
            if depth is not None:
                self.depth.append(float(depth))
            self._feed_pattern(self.summary.get("pattern"))
        for report in payload.get("reports", ()):
            self._feed_report(report)
        for name, value in (payload.get("metrics") or {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        slo = payload.get("slo")
        if slo is not None:
            self.slo = slo
        if "firing" in payload:
            self.firing = list(payload.get("firing") or ())
        for alert in payload.get("alerts", ()):
            self.alerts_log.append(alert)
        self._feed_audit(payload.get("audit"))
        self._feed_prof(payload.get("prof"))

    def feed_stats(self, stats: dict) -> None:
        """Ingest one STATS response (the ``--once`` path, no telemetry)."""
        self.frames += 1
        self.summary = stats.get("summary") or {}
        depth = self.summary.get("queue_depth")
        if depth is not None:
            self.depth.append(float(depth))
        self._feed_pattern(self.summary.get("pattern"))
        for report in stats.get("window_reports", ()):
            self._feed_report(report)
        slo = self.summary.get("slo")
        if slo is not None:
            self.slo = slo
            self.firing = [
                name for name, st in sorted(slo.items()) if st.get("firing")
            ]
        self._feed_audit(stats.get("audit"))
        self._feed_prof(stats.get("prof"))

    def _feed_prof(self, prof: dict | None) -> None:
        if prof:
            self.prof = prof

    def _feed_pattern(self, pattern: dict | None) -> None:
        if not pattern:
            return
        self.pattern = pattern
        runs = pattern.get("active_runs")
        if runs is not None:
            self.cep_runs.append(float(runs))
        matches = pattern.get("matches")
        if matches is not None:
            prev = self._cep_prev_matches
            if prev is not None:
                self.cep_rate.append(float(max(0, matches - prev)))
            self._cep_prev_matches = matches

    def _feed_audit(self, audit: dict | None) -> None:
        if not audit:
            return
        self.audit = audit.get("summary") or {}
        for record in audit.get("attributions", ()):
            self.attributions.append(record)
            self.quality.append(float(record.get("error") or 0.0))

    def _feed_report(self, report: dict) -> None:
        latency = report.get("result_latency")
        if latency is not None:
            self.latency.append(float(latency))
        error = report.get("rms_error")
        if error is not None:
            self.error.append(float(error))
        arrived = report.get("arrived") or 0
        dropped = report.get("dropped") or 0
        self.shed.append(dropped / arrived if arrived else 0.0)

    # ------------------------------------------------------------------
    def _c(self, code: str, text: str) -> str:
        if not self.color:
            return text
        return f"{code}{text}{_RESET}"

    def render(self, width: int = 78) -> str:
        """One full screen as a newline-joined string (no clear codes)."""
        lines: list[str] = []
        title = "repro top"
        clock = f"t={_fmt_num(self.now)}s" if self.now is not None else "t=-"
        lines.append(
            self._c(_BOLD, title)
            + f"  {clock}  frames={self.frames}"
            + (f"  every {self.interval:g}s" if self.interval else "")
        )
        lines.append("─" * width)

        s = self.summary
        if s:
            lines.append(
                "queue "
                + self._c(_BOLD, f"{s.get('queue_depth', 0)}")
                + f"/{s.get('queue_capacity', '-')}"
                + f"  sessions={s.get('sessions', '-')}"
                + f"  windows={s.get('windows_closed', '-')}"
                + f"  arrived={s.get('tuples_arrived', '-')}"
                + f"  shed={s.get('tuples_shed', '-')}"
            )
            shards = s.get("shards")
            if shards:
                parts = "  ".join(
                    f"#{i}={shards[i]}" for i in sorted(shards, key=int)
                )
                lines.append("shards " + self._c(_DIM, parts))
        else:
            lines.append(self._c(_DIM, "waiting for telemetry…"))
        lines.append("")

        def row(label: str, series, fmt=_fmt_num) -> str:
            spark = sparkline(series, width=40)
            last = fmt(series[-1]) if series else "-"
            return f"{label:<10} {spark:<40} {last:>10}"

        lines.append(row("depth", self.depth))
        lines.append(row("latency s", self.latency))
        lines.append(row("shed %", self.shed, lambda v: f"{v * 100:.1f}"))
        if self.error:
            lines.append(row("rms err", self.error))
        lines.append("")

        # CEP panel: only rendered when a pattern query is attached, so a
        # pattern-free server's `repro top` output is unchanged.
        if self.pattern:
            p = self.pattern
            streams = ",".join(p.get("streams") or ())
            lines.append(
                self._c(_BOLD, "cep")
                + (f"  SEQ({streams})" if streams else "")
                + f"  active runs={p.get('active_runs', 0)}"
                + f"  evicted={p.get('runs_shed', 0)}"
                + f"  expired={p.get('runs_expired', 0)}"
                + f"  matches={p.get('matches', 0)}"
            )
            lines.append(row("runs", self.cep_runs))
            if self.cep_rate:
                lines.append(
                    row("match/f", self.cep_rate, lambda v: f"{v:.0f}")
                )
            lines.append("")

        # Quality panel: only rendered when the server runs audit-on, so an
        # audit-off server's `repro top` output is unchanged.
        if self.audit:
            from repro.obs.audit import scorecard_rollup

            events = self.audit.get("events") or {}
            kinds = "  ".join(f"{k}={int(v)}" for k, v in sorted(events.items()))
            loose = sum(
                int(e.get("count", 0))
                for e in self.audit.get("unattributed") or ()
            )
            lines.append(
                self._c(_BOLD, "quality")
                + f"  shed events={self.audit.get('total', 0)}"
                + (f"  [{kinds}]" if kinds else "")
                + f"  unattributed={loose}"
            )
            if self.quality:
                lines.append(row("attr err", self.quality))
            for slot in scorecard_rollup(self.attributions)[:3]:
                lines.append(
                    self._c(
                        _DIM,
                        f"  {slot['policy']}/{slot['stream']}"
                        f" {slot['kind']}"
                        f"  events={slot['events']}"
                        f"  cost={_fmt_num(slot['quality_cost'])}",
                    )
                )
            lines.append("")

        # Hot-functions panel: only rendered when the server profiles
        # (`--profile-hz`), so a prof-off server's output is unchanged.
        if self.prof:
            summary = self.prof.get("summary") or {}
            lines.append(
                self._c(_BOLD, "hot functions")
                + f"  samples={summary.get('samples', 0)}"
                + f"  hz={summary.get('hz', 0):g}"
                + f"  stacks={summary.get('stacks', 0)}"
                + f"  truncated={summary.get('truncated', 0)}"
            )
            for frame in (self.prof.get("top") or ())[:5]:
                share = float(frame.get("self_share") or 0.0)
                lines.append(
                    self._c(
                        _DIM,
                        f"  {share * 100:5.1f}%  {frame.get('function', '?')}",
                    )
                )
            lines.append("")

        if self.firing:
            names = ", ".join(self.firing)
            lines.append(self._c(_BOLD + _RED, f"ALERTS FIRING: {names}"))
        else:
            lines.append(self._c(_GREEN, "no alerts firing"))
        for name, st in sorted(self.slo.items()):
            mark = self._c(_RED, "●") if st.get("firing") else self._c(_GREEN, "●")
            lines.append(
                f" {mark} {name:<20}"
                f" burn fast={_fmt_num(st.get('burn_fast', 0.0)):>8}"
                f" slow={_fmt_num(st.get('burn_slow', 0.0)):>8}"
                f" budget={_fmt_num(st.get('budget_remaining', 1.0)):>7}"
            )
        for alert in list(self.alerts_log)[-4:]:
            state = alert.get("state", "?")
            code = _RED if state == "firing" else _YELLOW
            lines.append(
                self._c(
                    code,
                    f"   [{_fmt_num(alert.get('at', 0.0))}s]"
                    f" {alert.get('slo', '?')} {state}",
                )
            )

        # Observability health footer: errors swallowed by obs hooks and
        # trace events evicted from the ring.  Counter keys may carry label
        # suffixes (`name{label="..."}`), so sum by prefix.  Rendered only
        # when something was actually lost, keeping healthy output stable.
        def _counter_sum(prefix: str) -> float:
            return sum(
                v for k, v in self.counters.items() if k.startswith(prefix)
            )

        hook_errors = _counter_sum("obs_hook_errors_total")
        trace_drops = _counter_sum("trace_events_dropped_total")
        if hook_errors or trace_drops:
            lines.append(
                self._c(
                    _YELLOW,
                    f"obs health: hook errors={int(hook_errors)}"
                    f"  trace events dropped={int(trace_drops)}",
                )
            )
        lines.append("")
        return "\n".join(lines)


async def run_top(
    host: str,
    port: int,
    *,
    once: bool = False,
    color: bool = True,
    interval: float = 1.0,
    max_frames: int | None = None,
    out=None,
) -> int:
    """Connect to a triage server and drive a :class:`Dashboard`.

    ``once`` fetches a single STATS snapshot, prints one frame without
    clearing the screen, and exits — the CI-friendly mode.  Otherwise the
    client subscribes with ``telemetry=True`` and repaints on every
    TELEMETRY frame until the feed ends (or ``max_frames`` is reached).
    """
    import sys

    from repro.service.client import TriageClient

    write = (out or sys.stdout).write
    dash = Dashboard(color=color)
    client = await TriageClient.connect(host, port, client_name="repro-top")
    try:
        if once:
            stats = await client.stats()
            dash.feed_stats(stats)
            write(dash.render() + "\n")
            return 0
        await client.subscribe(telemetry=True, telemetry_interval=interval)
        async for payload in client.telemetry():
            dash.feed(payload)
            write(_CLEAR + dash.render() + "\n")
            if max_frames is not None and dash.frames >= max_frames:
                break
        return 0
    finally:
        await client.close()


def render_payloads(payloads, *, color: bool = False) -> str:
    """Offline helper: render a final frame from recorded telemetry JSON.

    Accepts an iterable of payload dicts or JSON strings; used by tests and
    by ``repro top --replay``.
    """
    dash = Dashboard(color=color)
    for payload in payloads:
        if isinstance(payload, str):
            payload = json.loads(payload)
        dash.feed(payload)
    return dash.render()
