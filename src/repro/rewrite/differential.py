"""Differential and expansion-based evaluation of SPJ plans over multisets.

Two independent ways to compute what load shedding did to a query's results,
used to validate each other (and the formalism of Section 3):

* :func:`evaluate_differential` pushes ``(noisy, added, dropped)`` triples
  through the differential operators of :mod:`repro.algebra.operators`,
  exactly as Section 4.1's general rewrite prescribes;
* :func:`evaluate_expansion` evaluates the flat term list of equation 14
  (and its added-side twin) directly over kept/dropped bags.

Both operate on the relational (exact multiset) representation.  The
synopsis-approximated version of the same expansion lives in
:mod:`repro.rewrite.shadow`.
"""

from __future__ import annotations

from repro.algebra.multiset import Multiset
from repro.algebra.operators import (
    differential_equijoin,
    differential_select,
    equijoin,
    select,
    union_all,
)
from repro.algebra.triple import DifferentialRelation
from repro.engine.expressions import conjoin
from repro.engine.types import Column, Schema
from repro.rewrite.plan import ChainLink, SPJPlan
from repro.rewrite.spj import Channel, ExpansionTerm, dropped_terms


def _qualified_schema(plan: SPJPlan, link: ChainLink) -> Schema:
    src = plan.bound.source(link.source_name)
    return Schema(
        [Column(f"{link.source_name}.{c.name}", c.type) for c in src.schema.columns]
    )


def _concat_schemas(schemas: list[Schema]) -> Schema:
    cols: list[Column] = []
    for s in schemas:
        cols.extend(s.columns)
    return Schema(cols)


def _join_keys(
    prefix_schema: Schema, link_schema: Schema, link: ChainLink
) -> tuple[list[int], list[int]]:
    """Column positions for the equijoin between the prefix and ``link``."""
    left, right = [], []
    for p in link.join_with_prefix:
        left.append(prefix_schema.position(f"{p.left_source}.{p.left_column}"))
        right.append(link_schema.position(f"{p.right_source}.{p.right_column}"))
    return left, right


def _select_local(
    plan: SPJPlan, link: ChainLink, rel: Multiset, schema: Schema
) -> Multiset:
    pred = conjoin(plan.local_predicates.get(link.source_name, []))
    if pred is None:
        return rel
    fn = pred.bind(schema)
    return select(rel, lambda row: fn(row) is True)


def evaluate_differential(
    plan: SPJPlan, triples: dict[str, DifferentialRelation]
) -> tuple[DifferentialRelation, Schema]:
    """Section 4.1's general rewrite: replace every operator by F̂.

    ``triples`` maps *source names* to their differential relations.
    Returns the differential result of the join chain (projection and
    aggregation are left to the caller) plus its schema.
    """
    first = plan.chain[0]
    schema = _qualified_schema(plan, first)
    current = _differential_select_local(plan, first, triples[first.source_name], schema)
    for link in plan.chain[1:]:
        link_schema = _qualified_schema(plan, link)
        left_keys, right_keys = _join_keys(schema, link_schema, link)
        nxt = _differential_select_local(
            plan, link, triples[link.source_name], link_schema
        )
        current = differential_equijoin(current, nxt, left_keys, right_keys)
        schema = _concat_schemas([schema, link_schema])
    return current, schema


def _differential_select_local(
    plan: SPJPlan,
    link: ChainLink,
    triple: DifferentialRelation,
    schema: Schema,
) -> DifferentialRelation:
    pred = conjoin(plan.local_predicates.get(link.source_name, []))
    if pred is None:
        return triple
    fn = pred.bind(schema)
    return differential_select(triple, lambda row: fn(row) is True)


def evaluate_term(
    plan: SPJPlan,
    term: ExpansionTerm,
    kept: dict[str, Multiset],
    dropped: dict[str, Multiset],
) -> Multiset:
    """Evaluate one expansion term over kept/dropped bags."""
    channels = {
        Channel.KEPT: lambda name: kept[name],
        Channel.DROPPED: lambda name: dropped[name],
        Channel.ALL: lambda name: kept[name] + dropped[name],
        Channel.NOISY: lambda name: kept[name],
    }
    first = plan.chain[0]
    schema = _qualified_schema(plan, first)
    rel = channels[term.channels[0]](first.source_name)
    current = _select_local(plan, first, rel, schema)
    for pos, link in enumerate(plan.chain[1:], start=1):
        link_schema = _qualified_schema(plan, link)
        left_keys, right_keys = _join_keys(schema, link_schema, link)
        rel = channels[term.channels[pos]](link.source_name)
        rel = _select_local(plan, link, rel, link_schema)
        current = equijoin(current, rel, left_keys, right_keys)
        schema = _concat_schemas([schema, link_schema])
    return current


def evaluate_expansion(
    plan: SPJPlan,
    kept: dict[str, Multiset],
    dropped: dict[str, Multiset],
) -> Multiset:
    """Equation 14's flat form: the bag of results lost to dropping.

    ``kept``/``dropped`` map source names to the surviving / evicted bags of
    each base relation.
    """
    result = Multiset()
    for term in dropped_terms(len(plan.chain)):
        result = union_all(result, evaluate_term(plan, term, kept, dropped))
    return result


def evaluate_exact(plan: SPJPlan, relations: dict[str, Multiset]) -> Multiset:
    """The unperturbed join chain — the ideal-result reference."""
    empty = {name: Multiset() for name in relations}
    term = ExpansionTerm((Channel.ALL,) * len(plan.chain))
    return evaluate_term(plan, term, relations, empty)
