#!/usr/bin/env python
"""A monitoring dashboard: many queries, one shared triage layer.

TelegraphCQ's raison d'être is shared processing across continuous queries;
the paper's Future Work asks what happens when the *dropped-tuple synopses*
are shared too.  This example runs a three-panel dashboard over the R/S/T
streams:

  panel 1:  SELECT a, COUNT(*) ... FROM R,S,T  (the full 3-way join)
  panel 2:  SELECT c, COUNT(*) ... FROM S,T    (a drill-down)
  panel 3:  SELECT d, COUNT(*) ... FROM T      (a raw feed counter)

Shedding happens once per stream; all three shadow plans read the same
per-window synopses.  The script reports each panel's accuracy and the
synopsis storage saved versus a per-query deployment.

Run:  python examples/shared_dashboard.py
"""

from __future__ import annotations

import random

from repro.core import PipelineConfig, ShedStrategy, SharedTriageRuntime
from repro.engine import WindowSpec
from repro.experiments import paper_catalog
from repro.quality import run_rms
from repro.sources import MarkovBurstArrival, generate_stream, paper_row_generators

QUERIES = {
    "joins/sec by a": (
        "SELECT a, COUNT(*) AS n FROM R, S, T "
        "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
    ),
    "S-T matches by c": (
        "SELECT c, COUNT(*) AS n FROM S, T WHERE S.c = T.d GROUP BY c;"
    ),
    "T feed volume by d": "SELECT d, COUNT(*) AS n FROM T GROUP BY d;",
}


def main() -> None:
    rng = random.Random(17)
    gens = paper_row_generators()
    burst_gens = {k: g.shifted(25.0) for k, g in gens.items()}
    arrival = MarkovBurstArrival(base_rate=2.0, burst_speedup=100.0)
    streams = {
        name: generate_stream(900, arrival, gens[name], burst_gens[name], rng)
        for name in ("R", "S", "T")
    }
    window = WindowSpec(width=900 / arrival.mean_rate / 8)

    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=window,
        queue_capacity=40,
        service_time=1 / 250.0,
        seed=6,
    )
    runtime = SharedTriageRuntime(paper_catalog(), QUERIES, config)
    result = runtime.run(streams)

    shed = result.total_dropped / result.total_arrived
    print(
        f"shared triage over {result.total_arrived} tuples, "
        f"{shed:.1%} shed during bursts\n"
    )
    print(f"{'panel':22s} {'RMS error':>10s} {'windows':>8s}")
    for qid, run in result.per_query.items():
        print(f"{qid:22s} {run_rms(run):10.2f} {len(run.windows):8d}")
    print(
        f"\nsynopsis storage: {result.shared_synopsis_cells} cells shared vs "
        f"{result.unshared_synopsis_cells} if each panel kept its own "
        f"({result.sharing_ratio:.2f}x saving)"
    )
    print(
        "\nEach panel merges the shared synopses through its own shadow "
        "plan;\nthe burst that overflows the queues is still visible on "
        "every panel."
    )


if __name__ == "__main__":
    main()
