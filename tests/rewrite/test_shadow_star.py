"""Tests for flat-mode shadow plans over star-shaped join graphs."""

import pytest

from repro.algebra import Multiset
from repro.engine import ColumnType, Schema
from repro.rewrite import (
    RewriteError,
    ShadowPlan,
    SPJPlan,
    evaluate_exact,
    evaluate_expansion,
    shadow_view,
)
from repro.sql import Binder, parse_statement
from repro.synopses import Dimension, SparseCubicHistogram

# Star: R is the hub; S joins on R.a, T joins on R.x (not on S).
STAR_QUERY = "SELECT * FROM R, S, T WHERE R.a = S.b AND R.x = T.y;"


@pytest.fixture
def catalog(paper_catalog):
    paper_catalog.create_stream(
        "R",
        Schema.of(("a", ColumnType.INTEGER), ("x", ColumnType.INTEGER)),
        replace=True,
    )
    paper_catalog.create_stream(
        "T", Schema.of(("y", ColumnType.INTEGER)), replace=True
    )
    return paper_catalog


@pytest.fixture
def plan(catalog):
    return SPJPlan.from_bound(Binder(catalog).bind(parse_statement(STAR_QUERY)))


DIMS = {
    "R": [Dimension("R.a", 1, 8), Dimension("R.x", 1, 8)],
    "S": [Dimension("S.b", 1, 8), Dimension("S.c", 1, 8)],
    "T": [Dimension("T.y", 1, 8)],
}


def synopsize(bags):
    out = {}
    for name, bag in bags.items():
        syn = SparseCubicHistogram(DIMS[name], bucket_width=1)
        syn.insert_many(bag)
        out[name] = syn
    return out


def random_data(rng, n=40):
    g = lambda: rng.randint(1, 8)
    return {
        "R": Multiset((g(), g()) for _ in range(n)),
        "S": Multiset((g(), g()) for _ in range(n)),
        "T": Multiset((g(),) for _ in range(n)),
    }


def random_split(full, rng, keep_p=0.6):
    kept, dropped = {}, {}
    for name, rel in full.items():
        k, d = Multiset(), Multiset()
        for row in rel:
            (k if rng.random() < keep_p else d).add(row)
        kept[name], dropped[name] = k, d
    return kept, dropped


class TestStarShadow:
    def test_compiles_in_flat_mode(self, plan):
        shadow = ShadowPlan(plan)
        assert not shadow.nested
        assert shadow.links[2].left_keys == ("R.x",)  # joins the hub, not S

    def test_sql_view_uses_flat_form(self, plan):
        from repro.sql import parse_statement as reparse
        from repro.sql import render_statement

        sql = render_statement(shadow_view(plan))
        # Flat form: one term per relation, unioned; the T term joins the
        # hub's R.x, not anything of S.
        assert "'R.x'" in sql
        assert sql.count("union(") >= 3
        reparse(sql)  # still valid SQL

    def test_flat_estimate_exact_at_width1(self, plan, rng):
        full = random_data(rng)
        kept, dropped = random_split(full, rng)
        shadow = ShadowPlan(plan)
        est = shadow.estimate_dropped(synopsize(kept), synopsize(dropped))
        true_lost = evaluate_expansion(plan, kept, dropped)
        total = est.total() if est is not None else 0.0
        assert total == pytest.approx(len(true_lost), rel=1e-9)

    def test_flat_estimate_full_exact_at_width1(self, plan, rng):
        full = random_data(rng)
        shadow = ShadowPlan(plan)
        est = shadow.estimate_full(synopsize(full))
        assert est.total() == pytest.approx(
            len(evaluate_exact(plan, full)), rel=1e-9
        )

    def test_flat_group_counts_exact(self, plan, rng):
        from collections import Counter

        full = random_data(rng)
        kept, dropped = random_split(full, rng)
        shadow = ShadowPlan(plan)
        est = shadow.estimate_dropped(synopsize(kept), synopsize(dropped))
        true_lost = evaluate_expansion(plan, kept, dropped)
        by_a = Counter(row[0] for row in true_lost)  # R.a is column 0
        gc = est.group_counts("R.a")
        for v in range(1, 9):
            assert gc.get(v, 0.0) == pytest.approx(by_a.get(v, 0), abs=1e-6)

    def test_none_channels(self, plan, rng):
        full = random_data(rng)
        shadow = ShadowPlan(plan)
        nothing = {name: None for name in full}
        assert shadow.estimate_dropped(synopsize(full), nothing) is None
        est = shadow.estimate_dropped(nothing, synopsize(full))
        assert est.total() == pytest.approx(
            len(evaluate_exact(plan, full)), rel=1e-9
        )

    def test_path_queries_still_use_nested_mode(self, paper_catalog):
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(
                parse_statement(
                    "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d"
                )
            )
        )
        assert ShadowPlan(plan).nested


class TestStarPipeline:
    def test_end_to_end_star_query(self, catalog, rng):
        """The full pipeline handles star queries via the flat shadow mode."""
        from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
        from repro.engine import StreamTuple, WindowSpec
        from repro.quality import run_rms

        def gauss():
            return min(100, max(1, int(rng.gauss(50, 15))))

        streams = {
            "R": [StreamTuple(i / 300, (gauss(), gauss())) for i in range(300)],
            "S": [StreamTuple(i / 300, (gauss(), gauss())) for i in range(300)],
            "T": [StreamTuple(i / 300, (gauss(),)) for i in range(300)],
        }
        results = {}
        for strategy in (ShedStrategy.DATA_TRIAGE, ShedStrategy.DROP_ONLY):
            config = PipelineConfig(
                strategy=strategy,
                window=WindowSpec(width=0.5),
                queue_capacity=25,
                service_time=1 / 300.0,
                seed=2,
            )
            pipeline = DataTriagePipeline(
                catalog,
                "SELECT a, COUNT(*) AS n FROM R, S, T "
                "WHERE R.a = S.b AND R.x = T.y GROUP BY a;",
                config,
            )
            results[strategy] = pipeline.run(streams)
        assert results[ShedStrategy.DATA_TRIAGE].total_dropped > 0
        assert run_rms(results[ShedStrategy.DATA_TRIAGE]) < run_rms(
            results[ShedStrategy.DROP_ONLY]
        )
