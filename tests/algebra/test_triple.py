"""Tests for the (noisy, added, dropped) differential relation triple."""

from repro.algebra import DifferentialRelation, Multiset


def test_from_exact_has_empty_deltas():
    exact = Multiset([(1,), (2,)])
    t = DifferentialRelation.from_exact(exact)
    assert t.noisy == exact
    assert not t.added and not t.dropped
    assert t.is_exact()


def test_from_exact_copies_input():
    exact = Multiset([(1,)])
    t = DifferentialRelation.from_exact(exact)
    exact.add((2,))
    assert (2,) not in t.noisy


def test_from_kept_and_dropped():
    kept = Multiset([(1,)])
    dropped = Multiset([(2,), (2,)])
    t = DifferentialRelation.from_kept_and_dropped(kept, dropped)
    assert t.noisy == kept
    assert t.dropped == dropped
    assert not t.added
    assert not t.is_exact()


def test_exact_reconstruction_equation_2():
    # exact = noisy - added + dropped
    t = DifferentialRelation(
        noisy=Multiset([(1,), (3,)]),
        added=Multiset([(3,)]),
        dropped=Multiset([(2,)]),
    )
    assert t.exact() == Multiset([(1,), (2,)])


def test_check_invariant_equation_1():
    t = DifferentialRelation(
        noisy=Multiset([(1,), (3,)]),
        added=Multiset([(3,)]),
        dropped=Multiset([(2,)]),
    )
    assert t.check_invariant(Multiset([(1,), (2,)]))
    assert not t.check_invariant(Multiset([(1,), (1,)]))


def test_is_well_formed_true_for_drop_only_triple():
    t = DifferentialRelation.from_kept_and_dropped(
        Multiset([(1,)]), Multiset([(2,)])
    )
    assert t.is_well_formed()


def test_is_well_formed_detects_phantom_added():
    # `added` claims a tuple that noisy does not contain: monus cannot
    # reproduce noisy from the reconstructed exact relation.
    t = DifferentialRelation(
        noisy=Multiset([(1,)]),
        added=Multiset([(9,)]),
        dropped=Multiset(),
    )
    assert not t.is_well_formed()


def test_repr_counts():
    t = DifferentialRelation.from_kept_and_dropped(
        Multiset([(1,)]), Multiset([(2,), (3,)])
    )
    assert "noisy=1" in repr(t) and "dropped=2" in repr(t)
