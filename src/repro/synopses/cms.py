"""Count-Min sketch synopsis (extension; sketch-family ablation).

Summarizes a bag by one Count-Min sketch per dimension (marginal frequency
estimates) plus the exact total.  Joint mass is estimated under the
*attribute-value independence* assumption — precisely the assumption MHIST
papers criticise — which makes this synopsis a useful lower baseline in the
synopsis-type ablation: it is extremely cheap to build and join, but blind
to inter-attribute correlation.

Point queries use the standard CM upper-bound estimate min over rows; join
sizes use the sum over the (small, integer) join domain of the product of
marginal estimates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.synopses.base import (
    Dimension,
    Synopsis,
    SynopsisError,
    SynopsisFactory,
    require_same_dimensions,
)


class _CMS:
    """A plain Count-Min sketch over integer keys."""

    __slots__ = ("depth", "width", "table", "_a", "_b", "_prime")

    def __init__(self, depth: int, width: int, seed: int) -> None:
        self.depth = depth
        self.width = width
        self.table = np.zeros((depth, width), dtype=np.float64)
        rng = np.random.default_rng(seed)
        self._prime = 2_147_483_647  # Mersenne prime 2^31 - 1
        self._a = rng.integers(1, self._prime, size=depth, dtype=np.int64)
        self._b = rng.integers(0, self._prime, size=depth, dtype=np.int64)

    def _slots(self, key: int) -> np.ndarray:
        return ((self._a * key + self._b) % self._prime) % self.width

    def add(self, key: int, weight: float) -> None:
        self.table[np.arange(self.depth), self._slots(key)] += weight

    def estimate(self, key: int) -> float:
        return float(self.table[np.arange(self.depth), self._slots(key)].min())

    def copy(self) -> "_CMS":
        out = _CMS.__new__(_CMS)
        out.depth, out.width = self.depth, self.width
        out.table = self.table.copy()
        out._a, out._b, out._prime = self._a, self._b, self._prime
        return out


class CountMinSynopsis(Synopsis):
    """Per-dimension Count-Min sketches + independence-assumption joints."""

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        depth: int = 4,
        width: int = 64,
        seed: int = 7,
    ) -> None:
        if depth < 1 or width < 1:
            raise SynopsisError("CMS depth and width must be >= 1")
        self.dimensions = tuple(dimensions)
        self.depth, self.width, self.seed = depth, width, seed
        # One sketch per dimension; a *shared* seed per dimension name keeps
        # sketches from different windows/streams mergeable.
        self._sketches = [
            _CMS(depth, width, seed=seed + 31 * i) for i in range(len(self.dimensions))
        ]
        self._total = 0.0

    # ------------------------------------------------------------------
    def _marginal(self, dim_idx: int) -> dict[int, float]:
        d = self.dimensions[dim_idx]
        sk = self._sketches[dim_idx]
        return {v: sk.estimate(v) for v in range(d.lo, d.hi + 1)}

    def _rebuild_from_marginals(
        self,
        dimensions: Sequence[Dimension],
        marginals: list[dict[int, float]],
        total: float,
    ) -> "CountMinSynopsis":
        out = CountMinSynopsis(dimensions, self.depth, self.width, self.seed)
        for i, marginal in enumerate(marginals):
            for v, mass in marginal.items():
                if mass > 0:
                    out._sketches[i].add(int(v), mass)
        out._total = total
        return out

    # ------------------------------------------------------------------
    # Synopsis interface
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[float], weight: float = 1.0) -> None:
        self._check_value(values)
        for i, v in enumerate(values):
            self._sketches[i].add(int(v), weight)
        self._total += weight

    def total(self) -> float:
        return self._total

    def project(self, dims: Sequence[str]) -> "CountMinSynopsis":
        keep = [self.dim_index(d) for d in dims]
        out = CountMinSynopsis(
            [self.dimensions[i] for i in keep], self.depth, self.width, self.seed
        )
        out._sketches = [self._sketches[i].copy() for i in keep]
        out._total = self._total
        return out

    def union_all(self, other: Synopsis) -> "CountMinSynopsis":
        if not isinstance(other, CountMinSynopsis):
            raise SynopsisError(
                f"cannot union CountMinSynopsis with {type(other).__name__}"
            )
        require_same_dimensions(self, other)
        if (other.depth, other.width, other.seed) != (self.depth, self.width, self.seed):
            raise SynopsisError("CMS parameter mismatch: sketches not mergeable")
        out = CountMinSynopsis(self.dimensions, self.depth, self.width, self.seed)
        for i in range(len(self.dimensions)):
            out._sketches[i].table = (
                self._sketches[i].table + other._sketches[i].table
            )
        out._total = self._total + other._total
        return out

    def equijoin(
        self, other: Synopsis, self_dim: str, other_dim: str
    ) -> "CountMinSynopsis":
        """Join size = Σ_v m_self(v)·m_other(v); marginals scale accordingly."""
        if not isinstance(other, CountMinSynopsis):
            raise SynopsisError(
                f"cannot join CountMinSynopsis with {type(other).__name__}"
            )
        si = self.dim_index(self_dim)
        oi = other.dim_index(other_dim)
        sd, od = self.dimensions[si], other.dimensions[oi]
        lo, hi = max(sd.lo, od.lo), min(sd.hi, od.hi)
        self_marg = self._marginal(si)
        other_marg = other._marginal(oi)
        join_marginal = {
            v: self_marg.get(v, 0.0) * other_marg.get(v, 0.0)
            for v in range(lo, hi + 1)
        }
        join_size = sum(join_marginal.values())

        out_dims = list(self.dimensions)
        other_keep = [i for i in range(len(other.dimensions)) if i != oi]
        taken = {d.name.lower() for d in out_dims}
        renamed = []
        for i in other_keep:
            d = other.dimensions[i]
            name = d.name
            while name.lower() in taken:
                name += "_r"
            taken.add(name.lower())
            renamed.append(d.renamed(name))
        out_dims.extend(renamed)

        # Under independence, every non-join marginal keeps its shape and is
        # rescaled so it sums to the join size.
        marginals: list[dict[int, float]] = []
        s_scale = join_size / self._total if self._total > 0 else 0.0
        for i in range(len(self.dimensions)):
            if i == si:
                marginals.append(join_marginal)
            else:
                marginals.append(
                    {v: m * s_scale for v, m in self._marginal(i).items()}
                )
        o_scale = join_size / other._total if other._total > 0 else 0.0
        for i in other_keep:
            marginals.append(
                {v: m * o_scale for v, m in other._marginal(i).items()}
            )
        return self._rebuild_from_marginals(out_dims, marginals, join_size)

    def select_range(self, dim: str, lo: int, hi: int) -> "CountMinSynopsis":
        di = self.dim_index(dim)
        marginal = self._marginal(di)
        kept = {v: m for v, m in marginal.items() if lo <= v <= hi}
        kept_mass = sum(kept.values())
        all_mass = sum(marginal.values())
        frac = kept_mass / all_mass if all_mass > 0 else 0.0
        marginals = []
        for i in range(len(self.dimensions)):
            if i == di:
                marginals.append(kept)
            else:
                marginals.append(
                    {v: m * frac for v, m in self._marginal(i).items()}
                )
        return self._rebuild_from_marginals(
            self.dimensions, marginals, self._total * frac
        )

    def group_counts(self, dim: str) -> dict[int, float]:
        di = self.dim_index(dim)
        marginal = self._marginal(di)
        # CM point estimates over-count (hash collisions); renormalize so the
        # marginal sums to the tracked total.
        mass = sum(marginal.values())
        if mass <= 0:
            return {}
        factor = self._total / mass
        return {v: m * factor for v, m in marginal.items() if m > 0}

    def scale(self, factor: float) -> "CountMinSynopsis":
        out = CountMinSynopsis(self.dimensions, self.depth, self.width, self.seed)
        for i in range(len(self.dimensions)):
            out._sketches[i].table = self._sketches[i].table * factor
        out._total = self._total * factor
        return out

    def storage_size(self) -> int:
        return sum(s.table.size for s in self._sketches)

    def empty_like(self) -> "CountMinSynopsis":
        return CountMinSynopsis(self.dimensions, self.depth, self.width, self.seed)


class CountMinFactory(SynopsisFactory):
    """Factory for :class:`CountMinSynopsis`."""

    def __init__(self, depth: int = 4, width: int = 64, seed: int = 7) -> None:
        self.depth, self.width, self.seed = depth, width, seed

    def create(self, dimensions: Sequence[Dimension]) -> CountMinSynopsis:
        return CountMinSynopsis(dimensions, self.depth, self.width, self.seed)

    @property
    def name(self) -> str:
        return f"cms(d={self.depth}, w={self.width})"
