"""The wire protocol: versioned newline-delimited JSON frames.

Every message is one UTF-8 JSON object on one line (``\\n``-terminated),
with a ``type`` field selecting the frame kind.  The protocol is versioned
by the HELLO/WELCOME handshake; a server refuses clients speaking a newer
major version than its own.

Client → server frames::

    HELLO     {type, version, client?}          open handshake
    DECLARE   {type, stream}                    bind a stream for publishing
    SUBSCRIBE {type, telemetry?, telemetry_interval?}
                                                receive per-window RESULTs,
                                                optionally + TELEMETRY push
    PUBLISH   {type, stream, rows | cols, timestamps?, trace?}
                                                a batch of tuples; exactly one
                                                of ``rows`` (row-major lists)
                                                or ``cols`` (columnar: one
                                                equal-length value array per
                                                schema column, cheaper to
                                                validate and pivot); ``trace``
                                                carries {trace_id, parent}
                                                distributed-trace context
    STATS     {type, format?, profile?}         request a telemetry snapshot;
                                                ``profile: true`` (or a stack
                                                -line bound) additionally asks
                                                for a live collapsed profile
    BYE       {type}                            graceful goodbye

Server → client frames::

    WELCOME   {type, version, session, now, streams, window}
    OK        {type, seq?, ...}                 positive ack (DECLARE/PUBLISH/BYE)
    RESULT    {type, window, start, end, groups, arrived, kept, dropped,
               traces?, ...}                    ``traces`` echoes the contexts
                                                of PUBLISHes in the window
    STATS     {type, metrics | prometheus}
    TELEMETRY {type, seq, now, interval, metrics, reports, alerts, firing,
               slo, summary}                    periodic push (opt-in); the
                                                ``alerts`` list carries SLO
                                                ALERT transition payloads
    ERROR     {type, code, message, fatal}

Frames are additionally checked against the *direction* they travel:
:func:`validate_frame`, :func:`decode_frame` and :func:`read_frame` accept
``sender=\"client\"`` / ``sender=\"server\"``, and a structurally valid frame
arriving from the wrong role (e.g. a client sending RESULT) is rejected with
the single stable code ``unexpected-type`` on both sides of the wire.

Hard limits guard the server against hostile or buggy peers: frames above
:data:`MAX_FRAME_BYTES` are rejected before parsing (and kill the
connection, since framing is lost), batches above :data:`MAX_BATCH_ROWS`
are refused, and every frame is validated field-by-field before it touches
server state — a malformed frame produces a structured ERROR, never a
traceback.

This module is deliberately transport-agnostic: it encodes/decodes and
validates ``dict`` frames; the asyncio reader/writer helpers at the bottom
are the only I/O-aware pieces, shared by server and client.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_BATCH_ROWS",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "validate_frame",
    "read_frame",
    "write_frame",
    "CLIENT_FRAMES",
    "SERVER_FRAMES",
]

PROTOCOL_VERSION = 1

#: Upper bound on one encoded frame, newline included (1 MiB).
MAX_FRAME_BYTES = 1 << 20

#: Upper bound on rows per PUBLISH batch.
MAX_BATCH_ROWS = 10_000

CLIENT_FRAMES = ("HELLO", "DECLARE", "SUBSCRIBE", "PUBLISH", "STATS", "BYE")
SERVER_FRAMES = ("WELCOME", "OK", "RESULT", "STATS", "TELEMETRY", "ERROR")

#: Scalar JSON types allowed inside a published row.
_ROW_SCALARS = (int, float, str, bool, type(None))


class ProtocolError(Exception):
    """A frame violated the protocol.

    ``code`` is a stable machine-readable identifier (it becomes the ERROR
    frame's ``code`` field); ``fatal`` marks violations after which the
    byte stream can no longer be trusted (the connection must close).
    """

    def __init__(self, code: str, message: str, *, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.fatal = fatal

    def to_frame(self) -> dict:
        return {
            "type": "ERROR",
            "code": self.code,
            "message": self.message,
            "fatal": self.fatal,
        }


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------
def encode_frame(frame: dict | bytes) -> bytes:
    """Serialize a frame to one NDJSON line (validates size, not schema).

    ``bytes`` pass through untouched: a frame already encoded once (the
    fan-out path encodes a RESULT/TELEMETRY frame a single time and hands
    the same buffer to every subscriber's sender) is not re-serialized.
    """
    if isinstance(frame, (bytes, bytearray)):
        return bytes(frame)
    try:
        data = json.dumps(
            frame, separators=(",", ":"), allow_nan=False
        ).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError("unencodable", f"frame not JSON-encodable: {exc}") from exc
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"encoded frame is {len(data)} bytes (max {MAX_FRAME_BYTES})",
        )
    return data


def decode_frame(line: bytes, *, sender: str | None = None) -> dict:
    """Parse and validate one received NDJSON line into a frame dict.

    ``sender`` ("client" or "server") additionally enforces that the frame
    type is one the sending role is allowed to emit.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame-too-large",
            f"received frame of {len(line)} bytes (max {MAX_FRAME_BYTES})",
            fatal=True,
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", f"undecodable frame: {exc}") from exc
    validate_frame(obj, sender=sender)
    return obj


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def _require(frame: dict, field: str, types, *, optional: bool = False) -> Any:
    if field not in frame:
        if optional:
            return None
        raise ProtocolError(
            "bad-frame", f"{frame.get('type', '?')} frame missing field {field!r}"
        )
    value = frame[field]
    allowed = types if isinstance(types, tuple) else (types,)
    # bool is an int subclass; only accept it where bool is listed explicitly.
    bad_bool = isinstance(value, bool) and bool not in allowed
    if bad_bool or not isinstance(value, types):
        raise ProtocolError(
            "bad-field",
            f"{frame.get('type', '?')}.{field} has wrong type "
            f"{type(value).__name__}",
        )
    return value


def validate_frame(obj: Any, *, sender: str | None = None) -> None:
    """Schema-check one decoded frame; raises :class:`ProtocolError`.

    With ``sender`` set, a frame whose type exists but belongs to the other
    role is rejected with code ``unexpected-type`` — the same code on both
    ends of the wire, so a misdirected frame is distinguishable from a
    ``unknown-type`` frame that no role defines.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("bad-frame", "frame must be a JSON object")
    ftype = obj.get("type")
    if not isinstance(ftype, str):
        raise ProtocolError("bad-frame", "frame missing string 'type' field")
    validator = _VALIDATORS.get(ftype)
    if validator is None:
        raise ProtocolError("unknown-type", f"unknown frame type {ftype!r}")
    if sender is not None:
        allowed = CLIENT_FRAMES if sender == "client" else SERVER_FRAMES
        if ftype not in allowed:
            raise ProtocolError(
                "unexpected-type",
                f"{sender}s do not send {ftype} frames",
            )
    validator(obj)


def _validate_hello(f: dict) -> None:
    version = _require(f, "version", int)
    if version < 1:
        raise ProtocolError("bad-field", f"nonsensical protocol version {version}")
    _require(f, "client", str, optional=True)


def _validate_declare(f: dict) -> None:
    _require(f, "stream", str)


def _validate_subscribe(f: dict) -> None:
    _require(f, "telemetry", bool, optional=True)
    interval = _require(f, "telemetry_interval", (int, float), optional=True)
    if interval is not None and interval <= 0:
        raise ProtocolError(
            "bad-field", f"telemetry_interval must be positive, got {interval}"
        )


def _validate_trace_context(ctx: Any, owner: str) -> None:
    """A trace context is {trace_id, parent} of non-empty hex-ish strings."""
    if not isinstance(ctx, dict):
        raise ProtocolError("bad-field", f"{owner} trace context must be an object")
    for key in ("trace_id", "parent"):
        value = ctx.get(key)
        if not isinstance(value, str) or not value:
            raise ProtocolError(
                "bad-field",
                f"{owner} trace context needs non-empty string {key!r}",
            )


def _validate_publish(f: dict) -> None:
    _require(f, "stream", str)
    if ("rows" in f) == ("cols" in f):
        raise ProtocolError(
            "bad-frame",
            "PUBLISH carries exactly one of 'rows' (row-major) or "
            "'cols' (columnar)",
        )
    if "rows" in f:
        rows = _require(f, "rows", list)
        nrows = len(rows)
        if nrows > MAX_BATCH_ROWS:
            raise ProtocolError(
                "batch-too-large",
                f"PUBLISH batch of {nrows} rows (max {MAX_BATCH_ROWS})",
            )
        for row in rows:
            if not isinstance(row, list):
                raise ProtocolError("bad-field", "PUBLISH rows must be arrays")
            for v in row:
                if not isinstance(v, _ROW_SCALARS):
                    raise ProtocolError(
                        "bad-field",
                        f"row value {v!r} is not a JSON scalar",
                    )
    else:
        cols = _require(f, "cols", list)
        nrows = 0
        for col in cols:
            if not isinstance(col, list):
                raise ProtocolError("bad-field", "PUBLISH cols must be arrays")
        if cols:
            nrows = len(cols[0])
            if any(len(col) != nrows for col in cols):
                raise ProtocolError(
                    "bad-field", "PUBLISH cols must be equal-length arrays"
                )
        if nrows > MAX_BATCH_ROWS:
            raise ProtocolError(
                "batch-too-large",
                f"PUBLISH batch of {nrows} rows (max {MAX_BATCH_ROWS})",
            )
        for col in cols:
            for v in col:
                if not isinstance(v, _ROW_SCALARS):
                    raise ProtocolError(
                        "bad-field",
                        f"column value {v!r} is not a JSON scalar",
                    )
    timestamps = _require(f, "timestamps", list, optional=True)
    if timestamps is not None:
        if len(timestamps) != nrows:
            raise ProtocolError(
                "bad-field", "timestamps length must match the batch's rows"
            )
        for t in timestamps:
            if isinstance(t, bool) or not isinstance(t, (int, float)):
                raise ProtocolError("bad-field", "timestamps must be numbers")
    trace = _require(f, "trace", dict, optional=True)
    if trace is not None:
        _validate_trace_context(trace, "PUBLISH")


def _validate_stats_request_or_reply(f: dict) -> None:
    fmt = _require(f, "format", str, optional=True)
    if fmt is not None and fmt not in ("json", "prometheus"):
        raise ProtocolError("bad-field", f"unknown STATS format {fmt!r}")
    # Live profile capture: True requests the default bounded collapsed
    # export, a positive int overrides the stack-line bound.
    profile = f.get("profile")
    if profile is not None and profile is not False:
        if profile is not True and not (
            isinstance(profile, int)
            and not isinstance(profile, bool)
            and profile > 0
        ):
            raise ProtocolError(
                "bad-field",
                f"STATS profile must be true or a positive int: {profile!r}",
            )


def _validate_bye(f: dict) -> None:
    pass


def _validate_welcome(f: dict) -> None:
    _require(f, "version", int)


def _validate_ok(f: dict) -> None:
    pass


def _validate_result(f: dict) -> None:
    _require(f, "window", int)
    _require(f, "groups", list)
    traces = _require(f, "traces", list, optional=True)
    if traces is not None:
        for ctx in traces:
            _validate_trace_context(ctx, "RESULT")


def _validate_telemetry(f: dict) -> None:
    _require(f, "seq", int)
    now = _require(f, "now", (int, float))
    if isinstance(now, bool):
        raise ProtocolError("bad-field", "TELEMETRY.now must be a number")
    _require(f, "metrics", dict, optional=True)
    _require(f, "reports", list, optional=True)
    _require(f, "firing", list, optional=True)
    _require(f, "slo", dict, optional=True)
    _require(f, "summary", dict, optional=True)
    alerts = _require(f, "alerts", list, optional=True)
    if alerts is not None:
        for alert in alerts:
            if not isinstance(alert, dict):
                raise ProtocolError(
                    "bad-field", "TELEMETRY alerts must be objects"
                )
            for key in ("slo", "state"):
                if not isinstance(alert.get(key), str):
                    raise ProtocolError(
                        "bad-field",
                        f"ALERT payload needs string {key!r}",
                    )
            if alert["state"] not in ("firing", "resolved"):
                raise ProtocolError(
                    "bad-field",
                    f"ALERT state {alert['state']!r} is not firing|resolved",
                )


def _validate_error(f: dict) -> None:
    _require(f, "code", str)
    _require(f, "message", str)


_VALIDATORS = {
    "HELLO": _validate_hello,
    "DECLARE": _validate_declare,
    "SUBSCRIBE": _validate_subscribe,
    "PUBLISH": _validate_publish,
    "STATS": _validate_stats_request_or_reply,
    "BYE": _validate_bye,
    "WELCOME": _validate_welcome,
    "OK": _validate_ok,
    "RESULT": _validate_result,
    "TELEMETRY": _validate_telemetry,
    "ERROR": _validate_error,
}


# ---------------------------------------------------------------------------
# Asyncio stream helpers (the only I/O-aware part)
# ---------------------------------------------------------------------------
async def read_frame(
    reader: asyncio.StreamReader, *, sender: str | None = None
) -> dict | None:
    """Read and decode one frame; ``None`` at clean EOF.

    Raises :class:`ProtocolError` for malformed input.  Oversized frames
    surface as a *fatal* ``frame-too-large`` error because the newline that
    delimits the next frame was never found.  ``sender`` names the peer's
    role and enables direction checking (see :func:`validate_frame`).
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            "truncated", "connection closed mid-frame", fatal=True
        ) from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            "frame-too-large",
            f"frame exceeds {MAX_FRAME_BYTES} bytes",
            fatal=True,
        ) from exc
    return decode_frame(line, sender=sender)


async def write_frame(writer: asyncio.StreamWriter, frame: dict) -> None:
    """Encode, send, and flush one frame."""
    writer.write(encode_frame(frame))
    await writer.drain()
