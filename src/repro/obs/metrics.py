"""A dependency-free metrics registry with Prometheus text export.

Every layer that reports its own health — the triage pipeline, the network
service, the bench harness — does so through this registry without pulling
in a client library.  This module implements the three instrument kinds the
rest of the package uses (counters, gauges, histograms), each optionally
labelled, plus two exports:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms with
  cumulative ``_bucket{le=...}`` series and ``_sum``/``_count``);
* :meth:`MetricsRegistry.to_dict` — a JSON-safe snapshot, shipped to
  clients in the wire protocol's STATS reply.

Instruments are get-or-create by name, so instrumentation points can be
written without threading registry setup through every constructor.  All
mutation is guarded by one registry-wide lock: instrument updates are tiny
compared to the work around them, and a single lock keeps cross-instrument
snapshots consistent.

Histograms take per-instrument bucket overrides: sub-second timings use
:data:`LATENCY_BUCKETS` (else the tuple-count spread of
:data:`DEFAULT_BUCKETS` wrecks quantile resolution below one second), and a
conflicting re-registration of the same name with different bounds is a
:class:`ValueError` rather than a silent share of the first caller's spread.

Two protections for long-running deployments:

* **Label-cardinality cap** — each instrument holds at most
  ``max_series`` label combinations (registry-wide knob, default
  :data:`DEFAULT_MAX_SERIES`); an update that would mint series number
  cap+1 is dropped and counted under ``obs_series_dropped_total{metric=}``
  instead of growing the registry without bound (a per-session or
  per-source label on a busy server would otherwise do exactly that).
* **Delta snapshots** — :class:`DeltaSnapshotter` diffs successive sample
  sets, so the service's TELEMETRY push ships per-interval increments for
  counters/histograms (gauges stay absolute) rather than ever-growing
  totals.

The metric catalog is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DeltaSnapshotter",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "global_registry",
    "record_hook_error",
    "shard_instruments",
]

#: Default per-instrument cap on label combinations (series).
DEFAULT_MAX_SERIES = 256

#: Default histogram buckets: a wide spread for counts and coarse timings.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Buckets for sub-second latencies (seconds): 50µs resolution at the low
#: end, so per-window phase timings and queue-imposed staleness keep their
#: quantile resolution instead of collapsing into DEFAULT_BUCKETS' 5ms floor.
LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _format_value(v: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus accepts both)."""
    if isinstance(v, bool):
        return "1" if v else "0"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _label_suffix(label_names: tuple[str, ...], label_values: tuple) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + pairs + "}"


def _escape_label(text: str) -> str:
    """Label-value escaping per the exposition format: ``\\``, ``"``, LF."""
    return text.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """HELP-text escaping: only ``\\`` and LF — quotes stay literal there."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


class _Instrument:
    """Shared labelling machinery; subclasses define the sample shape."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        *,
        max_series: int | None = None,
        on_drop=None,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = lock
        self.max_series = max_series
        self._on_drop = on_drop

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(labels[n] for n in self.label_names)

    def _series_full(self, store: dict) -> bool:
        """True when minting one more series would exceed the cap."""
        return self.max_series is not None and len(store) >= self.max_series

    def _dropped_series(self) -> None:
        """Count one refused sample (called OUTSIDE the instrument lock —
        the registry's drop counter shares it)."""
        if self._on_drop is not None:
            self._on_drop(self.name)


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help, label_names, lock, **guards):
        super().__init__(name, help, label_names, lock, **guards)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            if key in self._values:
                self._values[key] += amount
                dropped = False
            elif self._series_full(self._values):
                dropped = True
            else:
                self._values[key] = amount
                dropped = False
        if dropped:
            self._dropped_series()

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label combinations."""
        with self._lock:
            return sum(self._values.values())

    def _samples(self):
        for key, v in sorted(self._values.items()):
            yield self.name + _label_suffix(self.label_names, key), v

    def _snapshot(self):
        return {
            "||".join(map(str, k)) if k else "": v
            for k, v in self._values.items()
        }


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help, label_names, lock, **guards):
        super().__init__(name, help, label_names, lock, **guards)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            if key in self._values or not self._series_full(self._values):
                self._values[key] = float(value)
                dropped = False
            else:
                dropped = True
        if dropped:
            self._dropped_series()

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            if key in self._values:
                self._values[key] += amount
                dropped = False
            elif self._series_full(self._values):
                dropped = True
            else:
                self._values[key] = amount
                dropped = False
        if dropped:
            self._dropped_series()

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    _samples = Counter._samples
    _snapshot = Counter._snapshot


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe(v)`` adds ``v`` to the distribution; the export carries the
    per-bucket cumulative counts plus the running sum and count, which is
    enough to recover means and approximate quantiles downstream.
    """

    kind = "histogram"

    def __init__(
        self, name, help, label_names, lock, buckets=DEFAULT_BUCKETS, **guards
    ):
        super().__init__(name, help, label_names, lock, **guards)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts: dict[tuple, list[int]] = {}  # per-bound, non-cumulative
        self._sum: dict[tuple, float] = {}
        self._count: dict[tuple, int] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                if self._series_full(self._counts):
                    dropped = True
                    counts = None
                else:
                    counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            if counts is not None:
                dropped = False
                counts[bisect_left(self.bounds, value)] += 1
                self._sum[key] = self._sum.get(key, 0.0) + value
                self._count[key] = self._count.get(key, 0) + 1
        if dropped:
            self._dropped_series()

    def count(self, **labels) -> int:
        with self._lock:
            return self._count.get(self._key(labels), 0)

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sum.get(self._key(labels), 0.0)

    def _samples(self):
        for key in sorted(self._counts):
            cumulative = 0
            for bound, n in zip(self.bounds, self._counts[key]):
                cumulative += n
                labels = self.label_names + ("le",)
                values = key + (_format_value(bound),)
                yield self.name + "_bucket" + _label_suffix(labels, values), cumulative
            cumulative += self._counts[key][-1]
            yield (
                self.name + "_bucket"
                + _label_suffix(self.label_names + ("le",), key + ("+Inf",)),
                cumulative,
            )
            suffix = _label_suffix(self.label_names, key)
            yield self.name + "_sum" + suffix, self._sum[key]
            yield self.name + "_count" + suffix, self._count[key]

    def _snapshot(self):
        out = {}
        for key in self._counts:
            label = "||".join(map(str, key)) if key else ""
            out[label] = {
                "count": self._count[key],
                "sum": self._sum[key],
                "buckets": dict(
                    zip(map(_format_value, self.bounds), self._counts[key])
                ),
                "overflow": self._counts[key][-1],
            }
        return out


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors and exports.

    ``max_series`` caps the label combinations any one instrument may hold
    (None lifts the cap); refused samples are counted under
    ``obs_series_dropped_total{metric=}`` so the drop is visible.
    """

    def __init__(self, *, max_series: int | None = DEFAULT_MAX_SERIES) -> None:
        if max_series is not None and max_series < 1:
            raise ValueError(f"max_series must be >= 1 or None: {max_series}")
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self.max_series = max_series

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, label_names, *, guard=True, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            inst = cls(
                name,
                help,
                tuple(label_names),
                self._lock,
                max_series=self.max_series if guard else None,
                on_drop=self._count_series_drop if guard else None,
                **kwargs,
            )
            self._instruments[name] = inst
            return inst

    def _count_series_drop(self, metric: str) -> None:
        """One sample refused by the cardinality cap (guard=False: the drop
        counter itself must never recurse into the guard)."""
        self._get_or_create(
            Counter,
            "obs_series_dropped_total",
            "Samples dropped by the per-instrument label-cardinality cap",
            ("metric",),
            guard=False,
        ).inc(metric=metric)

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple = (),
        buckets=None,
    ) -> Histogram:
        """Get or create a histogram; ``buckets`` overrides the default.

        Passing ``buckets=None`` expresses no preference: creation uses
        :data:`DEFAULT_BUCKETS` and a later lookup accepts whatever spread
        the instrument was created with.  Passing explicit buckets that
        conflict with an already-registered spread raises — two
        instrumentation points silently sharing the wrong resolution is
        exactly the bug per-instrument overrides exist to prevent.
        """
        hist = self._get_or_create(
            Histogram,
            name,
            help,
            labels,
            buckets=DEFAULT_BUCKETS if buckets is None else buckets,
        )
        if buckets is not None:
            wanted = tuple(sorted(float(b) for b in buckets))
            if wanted != hist.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{hist.bounds}, conflicting override {wanted}"
                )
        return hist

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, all instruments.

        Every instrument gets its ``# HELP`` (when help text exists) and
        ``# TYPE`` comment lines; HELP text escapes backslash and line-feed,
        label values additionally escape double quotes — the two different
        escaping rules of the exposition format.
        """
        lines: list[str] = []
        # Hold the registry-wide lock for the full render: instruments share
        # this lock for updates, so the export is a consistent snapshot.
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
            for inst in instruments:
                if inst.help:
                    lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
                for sample_name, value in inst._samples():
                    lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def sample_values(self) -> list[tuple[str, str, float]]:
        """Flat ``(kind, sample_name, value)`` triples, one consistent pass.

        Sample names carry the full label suffix (Prometheus style), so the
        list is diffable across snapshots — :class:`DeltaSnapshotter` is the
        intended consumer.
        """
        out: list[tuple[str, str, float]] = []
        with self._lock:
            for inst in sorted(self._instruments.values(), key=lambda i: i.name):
                for sample_name, value in inst._samples():
                    out.append((inst.kind, sample_name, value))
        return out

    def to_dict(self) -> dict:
        """JSON-safe snapshot: ``{name: {kind, help, values}}``."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
            return {
                inst.name: {
                    "kind": inst.kind,
                    "help": inst.help,
                    "labels": list(inst.label_names),
                    "values": inst._snapshot(),
                }
                for inst in instruments
            }


class DeltaSnapshotter:
    """Per-interval metric increments, for streaming telemetry.

    Each :meth:`delta` call diffs the registry's current samples against the
    previous call: counter and histogram samples become increments (zero
    increments are elided, so a quiet interval ships almost nothing), gauges
    are passed through as absolute values.  A sample seen for the first time
    reports its full value — correct for counters that started after the
    previous snapshot.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._prev: dict[str, float] = {}

    def delta(self) -> dict[str, float]:
        out: dict[str, float] = {}
        prev = self._prev
        cur: dict[str, float] = {}
        for kind, sample_name, value in self.registry.sample_values():
            cur[sample_name] = value
            if kind == "gauge":
                out[sample_name] = value
            else:
                inc = value - prev.get(sample_name, 0.0)
                if inc:
                    out[sample_name] = inc
        self._prev = cur
        return out


# ---------------------------------------------------------------------------
# Process-wide registry (hook-error accounting and other ambient counters)
# ---------------------------------------------------------------------------
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide fallback registry.

    Instrumentation sites that have no registry threaded to them (e.g. a
    :class:`~repro.core.triage_queue.TriageQueue` owned by test code) still
    need somewhere to count — most importantly swallowed hook exceptions,
    which must never vanish entirely.
    """
    return _GLOBAL_REGISTRY


def record_hook_error(site: str, registry: MetricsRegistry | None = None) -> None:
    """Count one swallowed observer/hook exception at ``site``.

    User-supplied observers and per-window hooks are best-effort: an
    exception they raise is caught by the dispatch site, counted here as
    ``obs_hook_errors_total{site=...}``, and never aborts the run.
    """
    (registry or _GLOBAL_REGISTRY).counter(
        "obs_hook_errors_total",
        "Exceptions raised by user-supplied observers/hooks (swallowed)",
        ("site",),
    ).inc(site=site)


def shard_instruments(registry: MetricsRegistry) -> dict:
    """The sharded data plane's instrument trio, labelled per shard.

    ``shard_queue_depth{shard=,stream=}`` (gauge, refreshed every tick
    snapshot), ``shard_windows_merged_total{shard=}`` (one increment per
    window partial a shard ships at close), and ``shard_merge_seconds``
    (histogram of coordinator-side partial-merge latency).  Created through
    the normal registry path so they ride the same STATS/TELEMETRY
    snapshots — and ``repro top`` — as every other metric.
    """
    return {
        "depth": registry.gauge(
            "shard_queue_depth",
            "Triage queue depth per shard worker",
            ("shard", "stream"),
        ),
        "merged": registry.counter(
            "shard_windows_merged_total",
            "Window partials shipped and merged, per shard",
            ("shard",),
        ),
        "merge_seconds": registry.histogram(
            "shard_merge_seconds",
            "Coordinator time merging shard partials at window close",
            buckets=LATENCY_BUCKETS,
        ),
    }
