"""Result scoring (RMS error vs. ideal) and experiment reporting."""

from repro.quality.report import Series
from repro.quality.rms import (
    ErrorSummary,
    group_errors,
    mean_absolute_error,
    rms,
    run_metric,
    run_rms,
    total_relative_error,
    window_rms,
)

__all__ = [
    "ErrorSummary",
    "Series",
    "group_errors",
    "mean_absolute_error",
    "total_relative_error",
    "run_metric",
    "rms",
    "run_rms",
    "window_rms",
]
