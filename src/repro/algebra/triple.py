"""Differential relations: the (noisy, added, dropped) triple of Section 3.1.

When a stream processor sheds load, tuples disappear from base relations and
the loss propagates through every intermediate result.  The paper models the
perturbed version of a relation ``S`` as a *noisy* relation ``S_noisy``
together with an *added* relation ``S+`` and a *dropped* relation ``S-``,
maintaining the invariant (paper equation 1):

    ``S_noisy == S + S+ - S-``

equivalently (equation 2): ``S == S_noisy - S+ + S-``, where ``+``/``-`` are
multiset union and difference.  ``S-`` holds tuples missing from ``S`` because
of upstream drops; ``S+`` holds tuples *spuriously present* (negation-like
operators produce extra output when their inputs shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.multiset import Multiset


@dataclass(frozen=True)
class DifferentialRelation:
    """The triple ``(noisy, added, dropped)`` describing a perturbed relation.

    ``noisy`` is what the lossy system actually has; ``added``/``dropped``
    quantify its deviation from the exact relation.  :meth:`exact` recovers
    the true relation via equation 2 of the paper.
    """

    noisy: Multiset = field(default_factory=Multiset)
    added: Multiset = field(default_factory=Multiset)
    dropped: Multiset = field(default_factory=Multiset)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_exact(cls, exact: Multiset) -> "DifferentialRelation":
        """A relation with no perturbation: ``noisy == exact``, empty deltas."""
        return cls(noisy=exact.copy(), added=Multiset(), dropped=Multiset())

    @classmethod
    def from_kept_and_dropped(
        cls, kept: Multiset, dropped: Multiset
    ) -> "DifferentialRelation":
        """The load-shedding case: base tuples were only *removed*.

        ``kept`` is what survived the triage queue; ``dropped`` is what the
        drop policy evicted.  No spurious tuples appear at base relations, so
        ``added`` is empty.  This is exactly how Data Triage populates the
        triple for each input stream.
        """
        return cls(noisy=kept.copy(), added=Multiset(), dropped=dropped.copy())

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def exact(self) -> Multiset:
        """Reconstruct the exact relation: ``noisy - added + dropped``."""
        return (self.noisy - self.added) + self.dropped

    def check_invariant(self, exact: Multiset) -> bool:
        """Does ``noisy == exact + added - dropped`` hold against ``exact``?

        This is paper equation 1.  Note that equation 1 and equation 2 are
        *both* required to hold for a well-formed triple; they are equivalent
        only when ``added`` does not over-count rows absent from
        ``exact + added`` (monus is not invertible in general).  The
        differential operators in :mod:`repro.algebra.operators` preserve the
        strong form, which :meth:`is_well_formed` checks.
        """
        return self.noisy == (exact + self.added) - self.dropped

    def is_well_formed(self) -> bool:
        """Strong form: both reconstruction directions agree.

        ``exact()`` must satisfy equation 1, i.e. re-deriving ``noisy`` from
        the reconstructed exact relation returns the original ``noisy``.
        """
        return self.check_invariant(self.exact())

    def is_exact(self) -> bool:
        """True when the triple carries no perturbation at all."""
        return not self.added and not self.dropped

    def __repr__(self) -> str:
        return (
            f"DifferentialRelation(noisy={len(self.noisy)}, "
            f"added={len(self.added)}, dropped={len(self.dropped)})"
        )
