#!/usr/bin/env python
"""Network monitoring under a traffic burst — the paper's motivating scenario.

The introduction argues that bursts carry *different* data than steady state
(attacks, incidents) and that analysts are "particularly eager to capture
the properties of the data in the burst."  This example makes that concrete:

* ``FLOWS(src_subnet, dst_port)`` — per-flow records from a border router;
* ``PORTMAP(port, service)`` — a slowly-refreshing stream mapping ports to
  service classes (1 = web, 2 = mail, ..., published each window);
* continuous query: which subnets generate how much traffic per service?

      SELECT src_subnet, COUNT(*) FROM FLOWS, PORTMAP, SERVICES ...

Steady traffic is spread over subnets 1-100; the simulated attack bursts
(100x rate, Markov-modulated) come from a narrow subnet range.  The script
shows that with drop-only shedding the attack subnets are mostly invisible,
while Data Triage reports their activity to within a few percent.

Run:  python examples/network_monitor.py
"""

from __future__ import annotations

import random

from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import Catalog, ColumnType, Schema, StreamTuple, WindowSpec
from repro.quality import run_rms
from repro.sources import (
    GaussianValues,
    MarkovBurstArrival,
    RowGenerator,
    SteadyArrival,
    UniformValues,
    generate_stream,
)

QUERY = (
    "SELECT src_subnet, COUNT(*) AS flows "
    "FROM FLOWS, PORTMAP, SERVICES "
    "WHERE FLOWS.dst_port = PORTMAP.port AND PORTMAP.service = SERVICES.class "
    "GROUP BY src_subnet;"
)

ATTACK_SUBNETS = (88, 96)  # the burst traffic comes from this narrow range


def build_catalog() -> Catalog:
    cat = Catalog()
    cat.create_stream(
        "FLOWS",
        Schema.of(("src_subnet", ColumnType.INTEGER), ("dst_port", ColumnType.INTEGER)),
    )
    cat.create_stream(
        "PORTMAP",
        Schema.of(("port", ColumnType.INTEGER), ("service", ColumnType.INTEGER)),
    )
    cat.create_stream("SERVICES", Schema.of(("class", ColumnType.INTEGER)))
    return cat


def build_workload(seed: int, n_flows: int, base_rate: float):
    """Flows burst 100x; the metadata streams tick along steadily."""
    rng = random.Random(seed)
    steady_flows = RowGenerator(
        [GaussianValues(mean=50, std=25, lo=1, hi=100), UniformValues(1, 32)]
    )
    attack_flows = RowGenerator(
        [
            UniformValues(*ATTACK_SUBNETS),  # concentrated source range
            UniformValues(1, 4),  # hammering a few ports
        ]
    )
    arrival = MarkovBurstArrival(
        base_rate=base_rate, burst_speedup=100.0, burst_fraction=0.6
    )
    flows = generate_stream(n_flows, arrival, steady_flows, attack_flows, rng)

    duration = flows[-1].timestamp
    portmap_gen = RowGenerator([UniformValues(1, 32), UniformValues(1, 8)])
    services_gen = RowGenerator([UniformValues(1, 8)])
    n_meta = max(64, int(duration * 16))
    portmap = generate_stream(
        n_meta, SteadyArrival(n_meta / duration), portmap_gen, None, rng
    )
    services = generate_stream(
        n_meta, SteadyArrival(n_meta / duration), services_gen, None, rng
    )
    return {"FLOWS": flows, "PORTMAP": portmap, "SERVICES": services}, duration


def attack_visibility(result) -> tuple[float, float]:
    """(reported, ideal) flow counts attributed to the attack subnets."""
    reported = ideal = 0.0
    lo, hi = ATTACK_SUBNETS
    for w in result.windows:
        for key, values in w.merged.items():
            if lo <= key[0] <= hi:
                reported += values.get("flows") or 0.0
        for key, values in (w.ideal or {}).items():
            if lo <= key[0] <= hi:
                ideal += values.get("flows") or 0.0
    return reported, ideal


def main() -> None:
    catalog = build_catalog()
    streams, duration = build_workload(seed=11, n_flows=1200, base_rate=4.0)
    window = WindowSpec(width=duration / 8)
    domains = {
        "FLOWS.src_subnet": (1, 100),
        "FLOWS.dst_port": (1, 32),
        "PORTMAP.port": (1, 32),
        "PORTMAP.service": (1, 8),
        "SERVICES.class": (1, 8),
    }

    print("scenario: border-router flows with a Markov-modulated attack burst")
    print(f"attack source subnets: {ATTACK_SUBNETS[0]}-{ATTACK_SUBNETS[1]}\n")
    for strategy in (ShedStrategy.DROP_ONLY, ShedStrategy.DATA_TRIAGE):
        config = PipelineConfig(
            strategy=strategy,
            window=window,
            queue_capacity=40,
            service_time=1.0 / 200.0,  # engine capacity: 200 tuples/sec
            seed=5,
        )
        pipeline = DataTriagePipeline(catalog, QUERY, config, domains=domains)
        result = pipeline.run(streams)
        reported, ideal = attack_visibility(result)
        recall = reported / ideal if ideal else 1.0
        print(
            f"{strategy.value:12s}: shed {result.drop_fraction:5.1%}; "
            f"attack-subnet flows reported {reported:8.0f} of {ideal:8.0f} "
            f"({recall:6.1%}); overall RMS {run_rms(result):.1f}"
        )
    print(
        "\nThe burst data is precisely what drop-only discards; Data Triage's"
        "\nsynopses of the dropped tuples recover the attack's footprint."
    )


if __name__ == "__main__":
    main()
