"""Figure 9 — RMS error vs. peak data rate under bursty arrivals.

Regenerates the paper's Figure 9: two-state Markov bursts (60% of tuples in
bursts, expected burst length 200 tuples, bursts 100x faster) with burst
tuples drawn from mean-shifted Gaussians; the x-axis is the *peak* rate.
Nine seeded runs per point, mean ± std.

Shape assertions: triage dominates both baselines at high peak rates by the
paper's "statistically significant margin" (non-overlapping ±1 SE), and the
run-to-run variance is visibly larger than in the constant-rate experiment —
both observations the paper makes about its Figure 9.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_PARAMS, N_RUNS, save_artifact
from repro.experiments import figure9_series

PEAKS = [600, 1200, 2000, 3000, 4500]


@pytest.fixture(scope="module")
def series():
    return figure9_series(PEAKS, n_runs=N_RUNS, params=BENCH_PARAMS)


def test_fig9_regenerate(benchmark):
    result = benchmark.pedantic(
        figure9_series,
        args=([2000],),
        kwargs={"n_runs": 3, "params": BENCH_PARAMS},
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 1


def test_fig9_table(benchmark, series):
    benchmark.pedantic(series.to_text, rounds=1, iterations=1)
    print("\n" + series.to_text())
    print("CSV:\n" + series.to_csv())
    save_artifact("fig9.txt", series.to_text() + "\n" + series.to_ascii_chart())
    save_artifact("fig9.csv", series.to_csv())
    from repro.viz import render_series_svg

    save_artifact("fig9.svg", render_series_svg(series))


def test_fig9_shapes(benchmark, series):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    last = PEAKS[-1]
    summaries = dict(series.rows)[last]
    triage = summaries["data_triage"]
    drop = summaries["drop_only"]
    summ = summaries["summarize_only"]

    # Data Triage dominates drop-only by a statistically significant margin
    # at the highest peak rate.
    assert triage.dominates(drop), (
        f"triage {triage.mean:.1f}±{triage.std:.1f} vs "
        f"drop {drop.mean:.1f}±{drop.std:.1f}"
    )
    # ... and does not exceed summarize-only.
    assert triage.mean <= summ.mean * 1.1

    # Low peak: no shedding, exact results for the queue-based methods.
    low = dict(series.rows)[PEAKS[0]]
    assert low["data_triage"].mean == pytest.approx(0.0, abs=1e-9)
    assert low["drop_only"].mean == pytest.approx(0.0, abs=1e-9)

    # The paper: "the results of the second experiment showed considerably
    # more variance" — bursty summarize-only std dwarfs its constant-rate
    # counterpart (which test_fig8 shows is tightly flat).
    assert summ.std > 0.0
