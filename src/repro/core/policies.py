"""Victim-selection (drop) policies for the triage queue.

*"The current build of TelegraphCQ uses a random drop policy.  When our
triage queue reaches its capacity, it chose a victim at random from the
tuples in its buffer"* (paper Section 5.2.1).  :class:`RandomDropPolicy`
reproduces that; the others implement the Future Work directions of
Section 8.1 — *"the design of Data Triage opens up several new possibilities
for victim-selection policies ... 'synergistic' policies ... in which the
triage queue chooses to drop the tuples that the synopsis data structure can
summarize most efficiently"* — plus the classic tail/head-drop baselines.

A policy returns the index of the buffer tuple to evict, or
:data:`DROP_INCOMING` to shed the arriving tuple instead.
"""

from __future__ import annotations

import abc
import random
from collections import Counter
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.types import StreamTuple
from repro.synopses.base import Synopsis

if TYPE_CHECKING:
    from repro.engine.window import WindowSpec

#: Sentinel return: shed the incoming tuple, leave the buffer untouched.
DROP_INCOMING = -1


@dataclass
class PolicyContext:
    """What a policy may consult when choosing a victim.

    ``synopsis`` is the queue's current dropped-tuple synopsis for the
    active window (may be ``None`` early in a window); ``dim_positions``
    maps synopsis dimensions to row positions.  ``queue_name`` identifies
    the offering queue (the source stream, for per-stream queues).
    ``window_counts`` maps a primary-window id to the number of currently
    *buffered* tuples in that window — maintained incrementally by the
    queue (never by rescanning the buffer), but only for policies that set
    :attr:`DropPolicy.wants_window_counts`; otherwise it is ``None`` and
    costs nothing.  ``window`` is the queue's window spec, needed to map a
    candidate tuple's timestamp onto those counts.

    ``last_score`` is an optional *score sink*: a policy that ranks
    candidates numerically (e.g. ``PatternUtilityPolicy``) writes the
    chosen victim's utility score here so the audit ledger can record it.
    The queue resets it before each decision only when auditing is on;
    policies that never score leave it ``None`` and pay nothing.
    """

    rng: random.Random
    synopsis: Synopsis | None = None
    dim_positions: tuple[int, ...] = ()
    queue_name: str | None = None
    window: "WindowSpec | None" = None
    window_counts: Mapping[int, int] | None = None
    last_score: float | None = None


class DropPolicy(abc.ABC):
    """Chooses which tuple to shed when the triage queue is full."""

    #: Set True to have the queue maintain per-window occupancy counts and
    #: pass them via ``PolicyContext.window_counts``.  Off by default so
    #: the existing policies pay nothing.
    wants_window_counts: bool = False

    #: Does this policy read ``PolicyContext.synopsis`` when choosing a
    #: victim?  When False the queue may defer shed-tuple synopsis inserts
    #: to the end of a batch (grouped per window, insert order preserved)
    #: without the policy being able to observe the difference.  Defaults
    #: True — unknown subclasses get the conservative per-victim behaviour.
    reads_synopsis: bool = True

    @abc.abstractmethod
    def select_victim(
        self,
        buffer: Sequence[StreamTuple],
        incoming: StreamTuple,
        context: PolicyContext,
    ) -> int:
        """Index into ``buffer`` to evict, or :data:`DROP_INCOMING`."""

    @property
    def name(self) -> str:
        return type(self).__name__


class RandomDropPolicy(DropPolicy):
    """The paper's policy: evict a uniformly random victim.

    The incoming tuple participates in the draw, so every tuple present at
    overflow time has equal survival probability.
    """

    reads_synopsis = False

    def select_victim(self, buffer, incoming, context) -> int:
        i = context.rng.randrange(len(buffer) + 1)
        return DROP_INCOMING if i == len(buffer) else i


class TailDropPolicy(DropPolicy):
    """Classic tail drop: shed the arriving tuple (favours old data)."""

    reads_synopsis = False

    def select_victim(self, buffer, incoming, context) -> int:
        return DROP_INCOMING


class HeadDropPolicy(DropPolicy):
    """Head drop: shed the oldest queued tuple (favours fresh data)."""

    reads_synopsis = False

    def select_victim(self, buffer, incoming, context) -> int:
        return 0


class FrequencyBiasedPolicy(DropPolicy):
    """Shed a tuple from the currently most common key (skewed sampling).

    Section 8.1: *"Since Data Triage synopsizes dropped tuples, it can take
    skewed samples of data streams without unduly skewing query results."*
    Dropping from over-represented keys keeps rare keys in the exact path
    (where they are reported precisely) while common keys — well served by
    the uniformity assumption — go to the synopsis.

    ``key_position`` selects which row field defines a tuple's key.
    """

    reads_synopsis = False

    def __init__(self, key_position: int = 0) -> None:
        self.key_position = key_position

    def select_victim(self, buffer, incoming, context) -> int:
        counts: Counter = Counter(t.row[self.key_position] for t in buffer)
        counts[incoming.row[self.key_position]] += 1
        top_key, _ = counts.most_common(1)[0]
        if incoming.row[self.key_position] == top_key:
            candidates = [DROP_INCOMING]
        else:
            candidates = []
        candidates += [
            i for i, t in enumerate(buffer) if t.row[self.key_position] == top_key
        ]
        return context.rng.choice(candidates)


class SynergisticPolicy(DropPolicy):
    """Prefer victims the synopsis already summarizes at zero marginal cost.

    The Future-Work "synergistic" policy: a tuple whose values land in an
    already-populated synopsis bucket can be evicted without growing the
    synopsis and with minimal extra approximation error.  Victims are chosen
    uniformly among tuples whose synopsis cell is already occupied; if no
    such tuple exists, falls back to a random victim.
    """

    def select_victim(self, buffer, incoming, context) -> int:
        syn = context.synopsis
        if syn is None or not context.dim_positions:
            i = context.rng.randrange(len(buffer) + 1)
            return DROP_INCOMING if i == len(buffer) else i

        def covered(t: StreamTuple) -> bool:
            values = {
                syn.dimensions[k].name: int(t.row[p])
                for k, p in enumerate(context.dim_positions)
            }
            return syn.estimate_point(**values) > 0

        candidates = [i for i, t in enumerate(buffer) if covered(t)]
        if covered(incoming):
            candidates.append(DROP_INCOMING)
        if not candidates:
            i = context.rng.randrange(len(buffer) + 1)
            return DROP_INCOMING if i == len(buffer) else i
        return context.rng.choice(candidates)


#: Name -> constructor, for benchmark/CLI selection.
POLICIES = {
    "random": RandomDropPolicy,
    "tail": TailDropPolicy,
    "head": HeadDropPolicy,
    "biased": FrequencyBiasedPolicy,
    "synergistic": SynergisticPolicy,
}

#: CLI spellings accepted by :func:`make_policy` beyond the POLICIES keys.
POLICY_ALIASES = {
    "frequency": "biased",
    "pattern_utility": "pattern-utility",
}

#: Names offered by ``--drop-policy`` flags.
POLICY_CHOICES = ("random", "head", "tail", "frequency", "synergistic", "pattern-utility")


def make_policy(name: str) -> DropPolicy:
    """Build a drop policy from a CLI name.

    Accepts the :data:`POLICIES` keys plus the aliases in
    :data:`POLICY_ALIASES`; ``pattern-utility`` resolves to
    :class:`repro.cep.policy.PatternUtilityPolicy` (imported lazily so the
    core package never depends on the CEP tier).  The returned
    pattern-utility policy has no engine bound yet — callers wire one via
    ``bind_engine`` once the pattern is attached; until then it degrades to
    deterministic head drop.
    """
    key = name.strip().lower()
    key = POLICY_ALIASES.get(key, key)
    if key == "pattern-utility":
        from repro.cep.policy import PatternUtilityPolicy

        return PatternUtilityPolicy()
    try:
        return POLICIES[key]()
    except KeyError:
        raise ValueError(
            f"unknown drop policy {name!r}; {policy_help()}"
        ) from None


def policy_help() -> str:
    """One line naming every accepted policy spelling, for errors/--help."""
    aliases = ", ".join(
        f"{alias}={target}" for alias, target in sorted(POLICY_ALIASES.items())
    )
    names = sorted(POLICIES) + ["pattern-utility"]
    return f"valid policies: {', '.join(names)} (aliases: {aliases})"
