#!/usr/bin/env python
"""Inventory tracking with adaptive queue sizing.

The paper's introduction lists inventory tracking among the applications
needing timely results.  This example simulates RFID readers at warehouse
dock doors: reads arrive in bursts when pallets move, and the monitoring
query correlates reads with an expected-shipment feed:

    SELECT item_class, COUNT(*) FROM READS, MANIFEST
    WHERE READS.item_class = MANIFEST.class GROUP BY item_class

It also exercises :class:`repro.core.LoadController`: after each control
interval the controller observes the triage queue's counters and recommends
a capacity; the script re-runs the pipeline with the recommendation and
reports how accuracy and staleness trade off.

Run:  python examples/inventory_tracking.py
"""

from __future__ import annotations

import random

from repro.core import (
    DataTriagePipeline,
    LoadController,
    PipelineConfig,
    ShedStrategy,
)
from repro.engine import Catalog, ColumnType, Schema, WindowSpec
from repro.quality import run_rms
from repro.sources import (
    MarkovBurstArrival,
    RowGenerator,
    SteadyArrival,
    UniformValues,
    ZipfValues,
    generate_stream,
)

QUERY = (
    "SELECT item_class, COUNT(*) AS reads "
    "FROM READS, MANIFEST "
    "WHERE READS.item_class = MANIFEST.class "
    "GROUP BY item_class;"
)


def build_catalog() -> Catalog:
    cat = Catalog()
    cat.create_stream("READS", Schema.of(("item_class", ColumnType.INTEGER)))
    cat.create_stream("MANIFEST", Schema.of(("class", ColumnType.INTEGER)))
    return cat


def build_workload(seed: int):
    rng = random.Random(seed)
    # Zipf-skewed item classes: a few SKUs dominate (realistic read mix).
    reads_gen = RowGenerator([ZipfValues(s=1.1, lo=1, hi=50)])
    manifest_gen = RowGenerator([UniformValues(1, 50)])
    arrival = MarkovBurstArrival(
        base_rate=3.0, burst_speedup=60.0, burst_fraction=0.5,
        expected_burst_length=120,
    )
    reads = generate_stream(1500, arrival, reads_gen, None, rng)
    duration = reads[-1].timestamp
    manifest = generate_stream(
        max(64, int(duration * 8)),
        SteadyArrival(max(64, int(duration * 8)) / duration),
        manifest_gen,
        None,
        rng,
    )
    return {"READS": reads, "MANIFEST": manifest}, duration


def run_with_capacity(catalog, streams, duration, capacity: int):
    window = WindowSpec(width=duration / 10)
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=window,
        queue_capacity=capacity,
        service_time=1.0 / 120.0,
        seed=9,
    )
    domains = {"READS.item_class": (1, 50), "MANIFEST.class": (1, 50)}
    pipeline = DataTriagePipeline(catalog, QUERY, config, domains=domains)
    result = pipeline.run(streams)
    return result, config


def main() -> None:
    catalog = build_catalog()
    streams, duration = build_workload(seed=8)

    # Phase 1: run with a deliberately oversized queue and let the
    # controller study the load.
    result, config = run_with_capacity(catalog, streams, duration, capacity=5000)
    controller = LoadController(max_staleness=1.5)
    stats = result.queue_stats["READS"]
    controller.observe(interval_seconds=duration, stats=stats)
    recommended = controller.recommended_capacity(config.service_time)
    print(
        f"oversized queue (5000): RMS {run_rms(result):7.1f}, "
        f"shed {result.drop_fraction:5.1%}, "
        f"queue high-watermark {stats.high_watermark}"
    )
    print(
        f"controller: arrival ~{controller.estimate.arrival_rate:.0f}/s, "
        f"recommended capacity {recommended} "
        f"(bounds backlog to {controller.max_staleness}s of engine time)"
    )

    # Phase 2: rerun at the recommended capacity.
    for capacity in (recommended, 10):
        result, _ = run_with_capacity(catalog, streams, duration, capacity)
        staleness = capacity * config.service_time
        print(
            f"capacity {capacity:5d}: RMS {run_rms(result):7.1f}, "
            f"shed {result.drop_fraction:5.1%}, "
            f"max backlog delay {staleness:5.2f}s"
        )
    print(
        "\nBigger queues buy accuracy at the price of staleness; the "
        "controller picks\nthe largest capacity whose backlog still drains "
        "within the staleness budget."
    )


if __name__ == "__main__":
    main()
