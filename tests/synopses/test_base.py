"""Tests for the Synopsis base interface and Dimension."""

import pytest

from repro.synopses import Dimension, SparseCubicHistogram, SynopsisError


class TestDimension:
    def test_n_values(self):
        assert Dimension("a", 1, 100).n_values == 100
        assert Dimension("a", 5, 5).n_values == 1

    def test_contains(self):
        d = Dimension("a", 1, 10)
        assert d.contains(1) and d.contains(10)
        assert not d.contains(0) and not d.contains(11)

    def test_empty_domain_rejected(self):
        with pytest.raises(SynopsisError):
            Dimension("a", 5, 4)

    def test_renamed(self):
        d = Dimension("a", 1, 10).renamed("b")
        assert d.name == "b" and (d.lo, d.hi) == (1, 10)


class TestDimResolution:
    def make(self, *names):
        return SparseCubicHistogram([Dimension(n, 1, 10) for n in names])

    def test_exact_match(self):
        s = self.make("a", "b")
        assert s.dim_index("b") == 1

    def test_case_insensitive(self):
        s = self.make("Alpha")
        assert s.dim_index("ALPHA") == 0

    def test_qualified_lookup_finds_bare_dim(self):
        s = self.make("a")
        assert s.dim_index("R.a") == 0

    def test_bare_lookup_finds_qualified_dim(self):
        s = self.make("R.a", "S.b")
        assert s.dim_index("b") == 1

    def test_ambiguous_suffix(self):
        s = self.make("R.a", "S.a")
        with pytest.raises(SynopsisError, match="ambiguous"):
            s.dim_index("a")

    def test_missing(self):
        s = self.make("a")
        with pytest.raises(SynopsisError, match="no dimension"):
            s.dim_index("zz")

    def test_dimension_accessor(self):
        s = self.make("a")
        assert s.dimension("a").n_values == 10


class TestValueChecking:
    def test_arity_checked(self):
        s = SparseCubicHistogram([Dimension("a", 1, 10)])
        with pytest.raises(SynopsisError, match="arity"):
            s.insert((1, 2))

    def test_domain_checked(self):
        s = SparseCubicHistogram([Dimension("a", 1, 10)])
        with pytest.raises(SynopsisError, match="outside domain"):
            s.insert((11,))

    def test_estimate_point(self):
        s = SparseCubicHistogram([Dimension("a", 1, 10)], bucket_width=1)
        s.insert((3,))
        s.insert((3,))
        assert s.estimate_point(a=3) == pytest.approx(2.0)
        assert s.estimate_point(a=4) == pytest.approx(0.0)

    def test_is_empty(self):
        s = SparseCubicHistogram([Dimension("a", 1, 10)])
        assert s.is_empty()
        s.insert((1,))
        assert not s.is_empty()

    def test_repr(self):
        s = SparseCubicHistogram([Dimension("a", 1, 10)])
        assert "SparseCubicHistogram" in repr(s)
