"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine.catalog import Catalog
from repro.engine.types import ColumnType, Schema


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def paper_catalog() -> Catalog:
    """The R(a) / S(b, c) / T(d) catalog of the paper's experiments."""
    cat = Catalog()
    cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
    cat.create_stream(
        "S", Schema.of(("b", ColumnType.INTEGER), ("c", ColumnType.INTEGER))
    )
    cat.create_stream("T", Schema.of(("d", ColumnType.INTEGER)))
    return cat


PAPER_QUERY = (
    "SELECT a, COUNT(*) AS count FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)


@pytest.fixture
def paper_query_text() -> str:
    return PAPER_QUERY
