"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCli:
    def test_fig6_small(self):
        code, text = run_cli(["fig6", "--rows", "150"])
        assert code == 0
        assert "original query" in text
        assert "fast/original ratio" in text

    def test_fig8_small(self):
        code, text = run_cli(["fig8", "--rates", "200,1500", "--runs", "2"])
        assert code == 0
        assert "Figure 8" in text
        assert "legend:" in text  # ascii chart present
        assert "data_triage_mean" in text  # csv present

    def test_fig9_small(self):
        code, text = run_cli(["fig9", "--peaks", "2000", "--runs", "2"])
        assert code == 0
        assert "Figure 9" in text

    def test_explain(self):
        code, text = run_cli(
            ["explain", "SELECT a, COUNT(*) AS n FROM R, S, T "
             "WHERE R.a = S.b AND S.c = T.d GROUP BY a"]
        )
        assert code == 0
        assert "ENGINE PLAN" in text
        assert "Data Triage rewrite" in text

    def test_explain_non_spj(self):
        code, text = run_cli(["explain", "SELECT * FROM R, S, T WHERE R.a = S.b"])
        assert code == 0
        assert "rewrite not applicable" in text

    def test_rewrite(self):
        code, text = run_cli(
            ["rewrite", "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d"]
        )
        assert code == 0
        assert "CREATE VIEW Q_dropped_syn" in text

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_fig8_svg_output(self, tmp_path):
        svg_path = tmp_path / "fig8.svg"
        code, text = run_cli(
            ["fig8", "--rates", "200,1500", "--runs", "1", "--svg", str(svg_path)]
        )
        assert code == 0
        assert "SVG chart written" in text
        assert svg_path.read_text().startswith("<svg")
