"""Tests for the dense grid histogram, including parity with the sparse one."""

import random

import pytest

from repro.synopses import (
    DenseGridFactory,
    DenseGridHistogram,
    Dimension,
    SparseCubicHistogram,
    SynopsisError,
)

A = Dimension("a", 1, 100)
BC = [Dimension("b", 1, 100), Dimension("c", 1, 100)]


class TestBasics:
    def test_insert_and_total(self):
        s = DenseGridHistogram([A], bin_width=5)
        s.insert((1,))
        s.insert((100,), weight=2)
        assert s.total() == pytest.approx(3.0)

    def test_insert_many_vectorized(self):
        s = DenseGridHistogram(BC, bin_width=5)
        s.insert_many([(1, 2), (3, 4), (99, 100)])
        assert s.total() == pytest.approx(3.0)

    def test_insert_many_domain_check(self):
        s = DenseGridHistogram([A], bin_width=5)
        with pytest.raises(SynopsisError):
            s.insert_many([(101,)])

    def test_insert_many_arity_check(self):
        s = DenseGridHistogram([A], bin_width=5)
        with pytest.raises(SynopsisError):
            s.insert_many([(1, 2)])

    def test_storage_is_dense(self):
        s = DenseGridHistogram([A], bin_width=5)
        assert s.storage_size() == 20  # grid allocated regardless of data

    def test_factory(self):
        f = DenseGridFactory(bin_width=2)
        assert f.create([A]).bin_width == 2
        assert "dense_grid" in f.name


class TestParityWithSparse:
    """Dense and sparse histograms implement the same estimator; given the
    same bucket width they must produce identical numbers."""

    @pytest.fixture
    def data(self):
        rng = random.Random(9)
        r = [(rng.randint(1, 100),) for _ in range(300)]
        s = [(rng.randint(1, 100), rng.randint(1, 100)) for _ in range(300)]
        return r, s

    def _pair(self, dims, rows, width=5):
        dense = DenseGridHistogram(dims, bin_width=width)
        sparse = SparseCubicHistogram(dims, bucket_width=width)
        for row in rows:
            dense.insert(row)
            sparse.insert(row)
        return dense, sparse

    def test_group_counts_match(self, data):
        r, _ = data
        dense, sparse = self._pair([A], r)
        dg, sg = dense.group_counts("a"), sparse.group_counts("a")
        for v in range(1, 101):
            assert dg.get(v, 0.0) == pytest.approx(sg.get(v, 0.0))

    def test_join_totals_match(self, data):
        r, s = data
        dr, sr = self._pair([A], r)
        ds, ss = self._pair(BC, s)
        dj = dr.equijoin(ds, "a", "b")
        sj = sr.equijoin(ss, "a", "b")
        assert dj.total() == pytest.approx(sj.total())
        dg, sg = dj.group_counts("c"), sj.group_counts("c")
        for v in range(1, 101):
            assert dg.get(v, 0.0) == pytest.approx(sg.get(v, 0.0))

    def test_select_range_matches(self, data):
        r, _ = data
        dense, sparse = self._pair([A], r)
        assert dense.select_range("a", 13, 57).total() == pytest.approx(
            sparse.select_range("a", 13, 57).total()
        )

    def test_project_matches(self, data):
        _, s = data
        dense, sparse = self._pair(BC, s)
        assert dense.project(["c"]).total() == pytest.approx(
            sparse.project(["c"]).total()
        )
        assert dense.project(["c", "b"]).dim_names == ("c", "b")


class TestOperations:
    def test_union(self):
        a = DenseGridHistogram([A], bin_width=5)
        b = DenseGridHistogram([A], bin_width=5)
        a.insert((1,))
        b.insert((1,))
        assert a.union_all(b).total() == pytest.approx(2.0)

    def test_union_mismatch(self):
        a = DenseGridHistogram([A], bin_width=5)
        b = DenseGridHistogram([A], bin_width=4)
        with pytest.raises(SynopsisError):
            a.union_all(b)

    def test_join_misaligned_rejected(self):
        a = DenseGridHistogram([Dimension("a", 0, 99)], bin_width=5)
        b = DenseGridHistogram([Dimension("b", 1, 100)], bin_width=5)
        with pytest.raises(SynopsisError, match="misaligned"):
            a.equijoin(b, "a", "b")

    def test_scale_and_empty_like(self):
        s = DenseGridHistogram([A], bin_width=5)
        s.insert((1,))
        assert s.scale(4.0).total() == pytest.approx(4.0)
        assert s.empty_like().total() == 0.0

    def test_join_keeps_dimension_names(self):
        a = DenseGridHistogram([A], bin_width=5)
        b = DenseGridHistogram(BC, bin_width=5)
        a.insert((10,))
        b.insert((10, 60))
        j = a.equijoin(b, "a", "b")
        assert j.dim_names == ("a", "c")
