"""Ledger ↔ counter reconciliation and audit invisibility (ISSUE 8 gate).

Three contracts, each at every shard count:

* **Reconciliation** — the audit ledger's per-kind event counts equal the
  plane's/queues' own drop accounting exactly: nothing double-counted,
  nothing lost, including across the shard RPC ship/absorb hop.
* **Invisibility** — results and drop decisions are byte-identical with
  auditing on and off: the ledger has its own RNG and the queues' policy
  RNG chain never sees it.
* **Attribution** — every bucketed shed event lands in exactly one closed
  window's attribution record (plus the windowless unattributed pool), so
  the records partition the event stream.
"""

import asyncio
import contextlib
import random

import pytest

from repro.core.pipeline import DataTriagePipeline
from repro.core.strategies import PipelineConfig, ShedStrategy
from repro.engine.window import WindowSpec
from repro.experiments import (
    PAPER_QUERY,
    ExperimentParams,
    bursty_pipeline,
    paper_catalog,
)
from repro.obs.audit import DropLedger, attribute_reports
from repro.service import ServiceConfig, TriageServer
from repro.service.dataplane import StreamDataPlane
from repro.service.shard import ShardedDataPlane
from repro.sources.generators import paper_row_generators

STREAMS = ("R", "S", "T")

DROP_KINDS = ("drop_incoming", "evict_buffered")


def make_pipeline(queue_capacity=40):
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=queue_capacity,
        service_time=0.002,
        compute_ideal=False,
    )
    return DataTriagePipeline(paper_catalog(), PAPER_QUERY, config)


def workload(seed=17, n_windows=3, rows_per_batch=120, batches_per_window=2):
    rng = random.Random(seed)
    gens = paper_row_generators()
    schedule = []
    for w in range(n_windows):
        batches = []
        for b in range(batches_per_window):
            for source in STREAMS:
                t0 = float(w) + b * (1.0 / batches_per_window)
                step = 0.4 / (batches_per_window * rows_per_batch)
                rows = [
                    list(gens[source].draw(rng)) for _ in range(rows_per_batch)
                ]
                stamps = [t0 + i * step for i in range(rows_per_batch)]
                batches.append((source, rows, stamps))
        schedule.append(batches)
    return schedule


def outcome_key(outcome):
    return (
        outcome.window_id,
        outcome.merged,
        outcome.exact,
        outcome.estimated,
        outcome.arrived,
        outcome.kept,
        outcome.dropped,
    )


def drive(plane, pipeline, schedule):
    """Ingest/drain/close the schedule; returns (outcome keys, totals)."""
    outcomes = []
    for w, batches in enumerate(schedule):
        for source, rows, stamps in batches:
            plane.ingest(source, rows, stamps)
        plane.advance(1000.0)
        due = plane.due_windows(float(w + 1))
        if due:
            partials = plane.collect(due)
            outcomes.extend(
                pipeline.evaluate_windows(
                    window_ids=due,
                    kept_rows=partials.kept_rows,
                    kept_synopses=partials.kept_synopses,
                    dropped_synopses=partials.dropped_synopses,
                    dropped_counts=partials.dropped_counts,
                    arrived=partials.arrived,
                )
            )
            plane.mark_closed(due)
    plane.advance(1000.0)
    leftovers = sorted(plane.known_windows)
    if leftovers:
        partials = plane.collect(leftovers)
        outcomes.extend(
            pipeline.evaluate_windows(
                window_ids=leftovers,
                kept_rows=partials.kept_rows,
                kept_synopses=partials.kept_synopses,
                dropped_synopses=partials.dropped_synopses,
                dropped_counts=partials.dropped_counts,
                arrived=partials.arrived,
            )
        )
        plane.mark_closed(leftovers)
    outcomes.sort(key=lambda o: o.window_id)
    return [outcome_key(o) for o in outcomes], plane.totals()


# ---------------------------------------------------------------------------
# Serial plane: ledger counts == queue observer counts, exactly
# ---------------------------------------------------------------------------
def test_serial_ledger_reconciles_with_observer_counters():
    decisions = {"drop_incoming": 0, "evict_buffered": 0}

    def observer(stream, event, value):
        if event in decisions:
            decisions[event] += int(value)

    ledger = DropLedger(seed=0)
    pipeline = make_pipeline()
    plane = StreamDataPlane(pipeline, observer=observer, audit=ledger)
    _, (offered, dropped) = drive(plane, pipeline, workload())
    assert dropped > 0, "workload must force shedding to be a real test"

    counts = ledger.counts
    for kind in DROP_KINDS:
        assert counts.get(kind, 0) == decisions[kind], kind
    assert sum(counts.get(k, 0) for k in DROP_KINDS) == dropped


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_ledger_reconciles_at_every_shard_count(shards):
    """Fixed seed, shards {1, 2, 4}: the coordinator ledger's counts equal
    the plane's drop total exactly, and are identical across shard counts."""
    schedule = workload(seed=17)
    reference = DropLedger(seed=0)
    ref_pipeline = make_pipeline()
    ref_outcomes, (_, ref_dropped) = drive(
        StreamDataPlane(ref_pipeline, audit=reference), ref_pipeline, schedule
    )
    assert ref_dropped > 0

    if shards == 1:
        counts, dropped, outcomes = reference.counts, ref_dropped, ref_outcomes
    else:
        ledger = DropLedger(seed=0)
        pipeline = make_pipeline()
        plane = ShardedDataPlane(pipeline, shards, audit=ledger)
        try:
            outcomes, (_, dropped) = drive(plane, pipeline, schedule)
            plane.audit_sync()
        finally:
            plane.close()
        counts = ledger.counts

    assert sum(counts.get(k, 0) for k in DROP_KINDS) == dropped
    assert counts == reference.counts  # same decisions at any layout
    assert outcomes == ref_outcomes


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_attribution_partitions_events(shards):
    ledger = DropLedger(seed=0)
    pipeline = make_pipeline()
    plane = ShardedDataPlane(pipeline, shards, audit=ledger)
    try:
        drive(plane, pipeline, workload())
        plane.audit_sync()
    finally:
        plane.close()
    taken = ledger.take_windows(ledger.pending_windows())
    bucketed = sum(
        e["count"] for entries in taken.values() for e in entries
    )
    loose = sum(e["count"] for e in ledger.unattributed())
    assert bucketed + loose == ledger.total
    assert bucketed > 0


# ---------------------------------------------------------------------------
# Invisibility: audit on/off is byte-identical
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2])
def test_audit_is_invisible_to_results(shards):
    schedule = workload(seed=23)

    def run_once(audit):
        if shards == 1:
            pipeline = make_pipeline()
            return drive(
                StreamDataPlane(pipeline, audit=audit), pipeline, schedule
            )
        pipeline = make_pipeline()
        plane = ShardedDataPlane(pipeline, shards, audit=audit)
        try:
            return drive(plane, pipeline, schedule)
        finally:
            plane.close()

    plain = run_once(None)
    audited = run_once(DropLedger(seed=0))
    assert audited == plain


def test_fig9_pipeline_run_reconciles_and_attributes():
    """The paper's bursty Figure 9 run: ledger total == result drop total,
    and the RMS attribution join covers every bucketed event."""
    params = ExperimentParams(n_windows=2)
    ledger = DropLedger(seed=0)
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 3000.0, params, 0
    )
    pipeline.audit = ledger
    result = pipeline.run(streams)
    dropped = result.total_dropped
    assert dropped > 0
    assert ledger.total == dropped

    from repro.obs.report import build_window_reports

    reports = build_window_reports(result, pipeline.config.window)
    taken = ledger.take_windows(ledger.pending_windows())
    records = attribute_reports(taken, reports)
    assert sum(r["events"] for r in records) + sum(
        e["count"] for e in ledger.unattributed()
    ) == dropped
    assert any(r["basis"] == "rms" for r in records)


# ---------------------------------------------------------------------------
# Server-level: edge sheds, STATS block, SLO wiring
# ---------------------------------------------------------------------------
class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@contextlib.asynccontextmanager
async def serve(**service_kwargs):
    clock = ManualClock()
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=30,
        service_time=0.001,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=clock, **service_kwargs)
    server = TriageServer(
        paper_catalog(),
        "SELECT a, COUNT(*) AS n FROM R GROUP BY a;",
        config,
        service,
    )
    await server.start()
    server.clock = clock
    try:
        yield server
    finally:
        await server.shutdown()


def test_server_audit_off_has_no_audit_state():
    async def main():
        async with serve() as server:
            assert server.audit is None
            assert "attributed_error_burn" not in server.slo.status()

    asyncio.run(main())


def test_server_audit_counts_edge_sheds_and_attributes_windows():
    async def main():
        async with serve(audit=True) as server:
            rows = [[1] for _ in range(120)]
            ts = [i / 120 for i in range(120)]
            server.ingest_rows("R", rows, ts, now=0.5)
            server.clock.t = 2.0
            await server.tick()
            # The window is closed: its ledger bucket became an attribution.
            assert server._audit_attributions
            record = server._audit_attributions[-1]
            assert record["basis"] == "shed_fraction"
            assert server.audit.pending_windows() == []
            # Rows for the closed window are edge sheds in the ledger.
            _, late, _, _ = server.ingest_rows("R", [[2]], [0.1], now=2.0)
            assert late == 1
            assert server.audit.counts.get("edge_shed") == 1
            (loose,) = server.audit.unattributed()
            assert loose["policy"] == "admission"
            # The audit SLO exists and observed the closed window.
            assert "attributed_error_burn" in server.slo.status()

    asyncio.run(main())


def test_server_stats_reply_carries_audit_block():
    from repro.service import TriageClient

    async def main():
        async with serve(audit=True) as server:
            rows = [[1] for _ in range(80)]
            ts = [i / 80 for i in range(80)]
            server.ingest_rows("R", rows, ts, now=0.5)
            server.clock.t = 2.0
            await server.tick()
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="audit-test"
            )
            try:
                stats = await client.stats()
            finally:
                await client.close()
            audit = stats["audit"]
            assert audit["summary"]["schema"] == "repro-audit/v1"
            assert audit["summary"]["total"] >= 0
            assert isinstance(audit["attributions"], list)

        async with serve() as server:
            client = await TriageClient.connect(
                "127.0.0.1", server.port, client_name="audit-test"
            )
            try:
                stats = await client.stats()
            finally:
                await client.close()
            assert "audit" not in stats  # audit-off replies are unchanged

    asyncio.run(main())
