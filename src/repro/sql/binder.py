"""Semantic analysis: resolve a parsed query against the catalog.

Binding turns a :class:`~repro.sql.ast.SelectStmt` into a
:class:`BoundQuery`: every FROM source gets a schema (stream lookup, view
expansion, or recursive subquery binding), WHERE conjuncts are classified as
per-source selections / equijoin predicates / residual predicates, and the
SELECT list is split into grouping outputs and aggregates.  The executor and
the Data Triage rewriter both consume this form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.catalog import Catalog
from repro.engine.expressions import (
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    conjuncts,
    is_equijoin_conjunct,
)
from repro.engine.operators import AggregateSpec
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.window import WindowSpec, parse_window_clause
from repro.sql.ast import (
    PatternStmt,
    Query,
    SelectStmt,
    Star,
    SubquerySource,
    TableRef,
    UnionAllStmt,
)


class BindError(ValueError):
    """Raised for unresolvable names, ambiguous columns, unsupported shapes."""


@dataclass
class BoundSource:
    """A FROM entry after binding.

    Exactly one of ``stream_name`` / ``subquery`` is set.  ``schema`` is the
    source's *base* (unqualified) schema; the executor qualifies column names
    with ``name`` when it builds scans.
    """

    name: str  # binding name (alias if given)
    schema: Schema
    stream_name: str | None = None
    subquery: "BoundQuery | BoundUnion | None" = None


@dataclass(frozen=True)
class JoinPredicate:
    """An equality predicate between columns of two different sources."""

    left_source: str
    left_column: str
    right_source: str
    right_column: str

    def reversed(self) -> "JoinPredicate":
        return JoinPredicate(
            self.right_source, self.right_column, self.left_source, self.left_column
        )

    def __str__(self) -> str:
        return (
            f"{self.left_source}.{self.left_column} = "
            f"{self.right_source}.{self.right_column}"
        )


@dataclass
class BoundQuery:
    """A fully-resolved single SELECT block."""

    sources: list[BoundSource]
    local_predicates: dict[str, list[Expression]]
    join_predicates: list[JoinPredicate]
    residual_predicates: list[Expression]
    select_star: bool
    outputs: list[tuple[str, Expression]]  # non-aggregate SELECT items
    group_by: list[tuple[str, Expression]]
    aggregates: list[AggregateSpec]
    distinct: bool = False
    windows: dict[str, WindowSpec] = field(default_factory=dict)
    having: Expression | None = None  # evaluated over the aggregate output
    order_by: list[tuple[Expression, bool]] = field(default_factory=list)
    limit: int | None = None

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)

    def source(self, name: str) -> BoundSource:
        for s in self.sources:
            if s.name.lower() == name.lower():
                return s
        raise BindError(f"no source {name!r} in query")


@dataclass
class BoundUnion:
    """A bound UNION ALL chain."""

    queries: list["BoundQuery | BoundUnion"]


@dataclass(frozen=True)
class BoundPatternStep:
    """One resolved SEQ step.

    ``predicates`` are the WHERE conjuncts evaluated when *this* step
    consumes an event (every conjunct is attached to the latest step it
    references, so it can be checked as early as possible).  All ColumnRefs
    inside them are rewritten to qualified ``variable.column`` form, which
    is exactly how the pattern environment schema names its slots.
    ``env_offset`` is where this step's columns start in the environment row.

    ``local_predicates`` is the run-independent subset of ``predicates``:
    conjuncts whose every column reference is *this* step's variable.  They
    depend only on the candidate event, never on partial-match state, so the
    engine's batch path can vectorize them over a whole batch and discard
    can't-ever-bind events before touching any run.
    """

    variable: str
    stream_name: str
    schema: Schema
    kleene: bool
    predicates: tuple[Expression, ...]
    env_offset: int
    local_predicates: tuple[Expression, ...] = ()


@dataclass
class BoundPattern:
    """A fully-resolved PATTERN statement, ready for the CEP engine.

    ``env_schema`` is the concatenation of every step's columns under
    qualified names (``a.k``, ``b.k``, ...); a partial match is a row of
    that schema with not-yet-bound slots NULL.  ``output_schema`` describes
    emitted match tuples: ``match_start``, ``match_end``, then per step the
    bound columns (Kleene steps contribute a ``<var>_count`` plus the last
    absorbed event's columns).
    """

    steps: list[BoundPatternStep]
    within: float
    env_schema: Schema
    output_schema: Schema

    @property
    def streams(self) -> tuple[str, ...]:
        """Distinct stream names in first-reference order."""
        out: list[str] = []
        for s in self.steps:
            if s.stream_name not in out:
                out.append(s.stream_name)
        return tuple(out)


AGGREGATE_FUNCTIONS = frozenset(AggregateSpec.SUPPORTED)


class Binder:
    """Binds queries against a :class:`~repro.engine.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def bind(self, query: Query) -> BoundQuery | BoundUnion:
        if isinstance(query, UnionAllStmt):
            return BoundUnion([self.bind(q) for q in query.queries])
        if isinstance(query, SelectStmt):
            return self._bind_select(query)
        if isinstance(query, PatternStmt):
            return self.bind_pattern(query)
        raise BindError(f"cannot bind {type(query).__name__}")

    # ------------------------------------------------------------------
    def bind_pattern(self, stmt: PatternStmt) -> BoundPattern:
        """Resolve a PATTERN statement against the catalog."""
        if not stmt.steps:
            raise BindError("PATTERN SEQ needs at least one step")
        if stmt.within <= 0:
            raise BindError(f"WITHIN bound must be positive, got {stmt.within}")
        seen_vars: set[str] = set()
        schemas: list[Schema] = []
        for step in stmt.steps:
            key = step.variable.lower()
            if key in seen_vars:
                raise BindError(f"duplicate pattern variable {step.variable!r}")
            seen_vars.add(key)
            if not self.catalog.has_stream(step.stream):
                raise BindError(f"unknown stream {step.stream!r} in PATTERN")
            schemas.append(self.catalog.stream(step.stream).schema)

        # Environment schema: every step's columns, qualified by variable.
        env_cols: list[Column] = []
        offsets: list[int] = []
        for step, schema in zip(stmt.steps, schemas):
            offsets.append(len(env_cols))
            env_cols.extend(
                Column(f"{step.variable}.{c.name}", c.type) for c in schema
            )
        env_schema = Schema(env_cols)

        # Attach each WHERE conjunct to the latest step it references, with
        # every column reference rewritten to qualified variable.column form.
        var_index = {s.variable.lower(): i for i, s in enumerate(stmt.steps)}
        step_preds: list[list[Expression]] = [[] for _ in stmt.steps]
        step_local: list[list[Expression]] = [[] for _ in stmt.steps]
        for conj in conjuncts(stmt.where):
            qualified = self._qualify_pattern_expr(conj, stmt.steps, schemas)
            refs = _column_refs(qualified)
            latest = 0
            for ref in refs:
                latest = max(latest, var_index[ref.table.lower()])
            step_preds[latest].append(qualified)
            if all(var_index[r.table.lower()] == latest for r in refs):
                step_local[latest].append(qualified)

        bound_steps = [
            BoundPatternStep(
                variable=step.variable,
                stream_name=self.catalog.stream(step.stream).name,
                schema=schema,
                kleene=step.kleene,
                predicates=tuple(step_preds[i]),
                env_offset=offsets[i],
                local_predicates=tuple(step_local[i]),
            )
            for i, (step, schema) in enumerate(zip(stmt.steps, schemas))
        ]

        out_cols = [
            Column("match_start", ColumnType.TIMESTAMP),
            Column("match_end", ColumnType.TIMESTAMP),
        ]
        for step, schema in zip(stmt.steps, schemas):
            if step.kleene:
                out_cols.append(
                    Column(f"{step.variable}_count", ColumnType.INTEGER)
                )
            out_cols.extend(
                Column(f"{step.variable}_{c.name}", c.type) for c in schema
            )
        return BoundPattern(
            steps=bound_steps,
            within=stmt.within,
            env_schema=env_schema,
            output_schema=Schema(out_cols),
        )

    def _qualify_pattern_expr(self, expr, steps, schemas) -> Expression:
        """Rewrite ColumnRefs to ``variable.column`` form, checking names."""
        from repro.engine.expressions import BinaryOp, UnaryOp

        if isinstance(expr, ColumnRef):
            var_index = {s.variable.lower(): i for i, s in enumerate(steps)}
            if expr.table is not None:
                idx = var_index.get(expr.table.lower())
                if idx is None:
                    raise BindError(
                        f"unknown pattern variable {expr.table!r} in predicate"
                    )
                if expr.name not in schemas[idx]:
                    raise BindError(
                        f"no column {expr.name!r} in step variable "
                        f"{steps[idx].variable!r} ({schemas[idx]!r})"
                    )
                return ColumnRef(expr.name, table=steps[idx].variable)
            hits = [i for i, sch in enumerate(schemas) if expr.name in sch]
            if not hits:
                raise BindError(f"cannot resolve column {expr.name!r} in PATTERN")
            if len(hits) > 1:
                raise BindError(
                    f"ambiguous column {expr.name!r}: qualify it with one of "
                    f"{[steps[i].variable for i in hits]}"
                )
            return ColumnRef(expr.name, table=steps[hits[0]].variable)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._qualify_pattern_expr(expr.left, steps, schemas),
                self._qualify_pattern_expr(expr.right, steps, schemas),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                expr.op, self._qualify_pattern_expr(expr.operand, steps, schemas)
            )
        if isinstance(expr, FunctionCall):
            return FunctionCall(
                expr.name,
                tuple(
                    self._qualify_pattern_expr(a, steps, schemas)
                    for a in expr.args
                ),
            )
        return expr

    # ------------------------------------------------------------------
    def _bind_source(self, src) -> BoundSource:
        if isinstance(src, SubquerySource):
            bound = self.bind(src.query)
            schema = _output_schema(bound)
            return BoundSource(
                name=src.alias or "subquery", schema=schema, subquery=bound
            )
        assert isinstance(src, TableRef)
        if self.catalog.has_stream(src.name):
            schema = self.catalog.stream(src.name).schema
            return BoundSource(
                name=src.binding_name, schema=schema, stream_name=src.name
            )
        if self.catalog.has_view(src.name):
            bound = self.bind(self.catalog.view(src.name))
            return BoundSource(
                name=src.binding_name, schema=_output_schema(bound), subquery=bound
            )
        raise BindError(f"unknown stream or view {src.name!r}")

    def _bind_select(self, stmt: SelectStmt) -> BoundQuery:
        sources = [self._bind_source(s) for s in stmt.from_sources]
        names = [s.name.lower() for s in sources]
        if len(set(names)) != len(names):
            raise BindError(f"duplicate source names in FROM: {names}")
        by_name = {s.name.lower(): s for s in sources}

        # --- classify WHERE conjuncts -------------------------------------
        local: dict[str, list[Expression]] = {s.name: [] for s in sources}
        joins: list[JoinPredicate] = []
        residual: list[Expression] = []
        for conj in conjuncts(stmt.where):
            refs = self._sources_of(conj, by_name)
            if len(refs) <= 1:
                target = next(iter(refs)) if refs else sources[0].name
                local[target].append(conj)
                continue
            pair = is_equijoin_conjunct(conj)
            if pair and len(refs) == 2:
                left, right = pair
                lsrc = self._source_of_column(left, by_name)
                rsrc = self._source_of_column(right, by_name)
                if lsrc != rsrc:
                    joins.append(
                        JoinPredicate(lsrc.name, left.name, rsrc.name, right.name)
                    )
                    continue
            residual.append(conj)

        # --- SELECT list ----------------------------------------------------
        select_star = False
        outputs: list[tuple[str, Expression]] = []
        aggregates: list[AggregateSpec] = []
        for idx, item in enumerate(stmt.items):
            if isinstance(item.expr, Star):
                select_star = True
                continue
            agg = _as_aggregate(item.expr)
            if agg is not None:
                func, arg = agg
                aggregates.append(
                    AggregateSpec(func, arg, item.output_name(func))
                )
            else:
                outputs.append((item.output_name(f"col{idx}"), item.expr))

        group_by: list[tuple[str, Expression]] = []
        for idx, expr in enumerate(stmt.group_by):
            name = expr.name if isinstance(expr, ColumnRef) else f"group{idx}"
            group_by.append((name, expr))
        if aggregates and not group_by:
            # Scalar aggregate (no GROUP BY): single global group.
            pass
        if aggregates and select_star:
            raise BindError("cannot mix SELECT * with aggregates")
        if not aggregates and stmt.group_by:
            raise BindError("GROUP BY without aggregates is not supported")

        windows: dict[str, WindowSpec] = {}
        for w in stmt.windows:
            if w.table.lower() not in by_name:
                raise BindError(f"WINDOW clause names unknown source {w.table!r}")
            windows[by_name[w.table.lower()].name] = parse_window_clause(w.interval)

        if stmt.having is not None and not aggregates:
            raise BindError("HAVING requires a grouped aggregate query")
        if stmt.limit is not None and stmt.limit < 0:
            raise BindError(f"LIMIT must be non-negative, got {stmt.limit}")

        return BoundQuery(
            sources=sources,
            local_predicates=local,
            join_predicates=joins,
            residual_predicates=residual,
            select_star=select_star,
            outputs=outputs,
            group_by=group_by,
            aggregates=aggregates,
            distinct=stmt.distinct,
            windows=windows,
            having=stmt.having,
            order_by=[(o.expr, o.ascending) for o in stmt.order_by],
            limit=stmt.limit,
        )

    # ------------------------------------------------------------------
    def _sources_of(
        self, expr: Expression, by_name: dict[str, BoundSource]
    ) -> set[str]:
        """Binding names of every source the expression touches."""
        out: set[str] = set()
        for col in _column_refs(expr):
            out.add(self._source_of_column(col, by_name).name)
        return out

    def _source_of_column(
        self, ref: ColumnRef, by_name: dict[str, BoundSource]
    ) -> BoundSource:
        if ref.table is not None:
            src = by_name.get(ref.table.lower())
            if src is None:
                raise BindError(f"unknown table qualifier {ref.table!r}")
            if ref.name not in src.schema:
                raise BindError(f"no column {ref.name!r} in source {src.name!r}")
            return src
        matches = [s for s in by_name.values() if ref.name in s.schema]
        if not matches:
            raise BindError(f"cannot resolve column {ref.name!r}")
        if len(matches) > 1:
            raise BindError(
                f"ambiguous column {ref.name!r}: in "
                f"{[s.name for s in matches]}"
            )
        return matches[0]


def _column_refs(expr: Expression) -> list[ColumnRef]:
    """Collect every ColumnRef node in an expression tree."""
    from repro.engine.expressions import BinaryOp, UnaryOp

    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return _column_refs(expr.left) + _column_refs(expr.right)
    if isinstance(expr, UnaryOp):
        return _column_refs(expr.operand)
    if isinstance(expr, FunctionCall):
        out: list[ColumnRef] = []
        for a in expr.args:
            out.extend(_column_refs(a))
        return out
    return []


def _as_aggregate(expr: Expression) -> tuple[str, Expression | None] | None:
    """If ``expr`` is an aggregate call, return (function, argument).

    ``COUNT(*)`` is parsed as ``FunctionCall("count", (Literal("*"),))``; the
    star literal maps to ``argument=None``.
    """
    if not isinstance(expr, FunctionCall):
        return None
    name = expr.name.lower()
    if name not in AGGREGATE_FUNCTIONS:
        return None
    if len(expr.args) != 1:
        raise BindError(f"aggregate {name} takes exactly one argument")
    arg = expr.args[0]
    if isinstance(arg, Literal) and arg.value == "*":
        if name != "count":
            raise BindError(f"{name}(*) is not valid SQL")
        return (name, None)
    return (name, arg)


def _output_schema(bound: "BoundQuery | BoundUnion") -> Schema:
    """Static output schema of a bound query (needed to bind enclosing queries)."""
    from repro.engine.types import Column, ColumnType

    if isinstance(bound, BoundUnion):
        return _output_schema(bound.queries[0])
    if bound.is_aggregate:
        cols = [Column(n, ColumnType.FLOAT) for n, _ in bound.group_by]
        for spec in bound.aggregates:
            t = ColumnType.INTEGER if spec.function == "count" else ColumnType.FLOAT
            cols.append(Column(spec.output_name, t))
        return Schema(cols)
    if bound.select_star:
        cols = []
        for src in bound.sources:
            prefix = f"{src.name}." if len(bound.sources) > 1 else ""
            cols.extend(
                Column(prefix + c.name, c.type) for c in src.schema.columns
            )
        return Schema(cols)
    cols = []
    for name, expr in bound.outputs:
        t = ColumnType.FLOAT
        if isinstance(expr, ColumnRef):
            for src in bound.sources:
                if (expr.table is None or expr.table.lower() == src.name.lower()) and (
                    expr.name in src.schema
                ):
                    t = src.schema.column(expr.name).type
                    break
        cols.append(Column(name, t))
    return Schema(cols)
