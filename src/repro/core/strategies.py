"""The three load-shedding strategies, on one code path.

Paper Section 5.2.1: TelegraphCQ supports *drop-only*, *summarize-only*, and
*Data Triage* load shedding, all implemented on the same infrastructure so
comparisons are fair: *"To implement drop-only load shedding, we disabled
the code that computes summaries.  To implement summarize-only load
shedding, we bypassed the queue and constructed summaries of all the tuples
in each stream."*  The :class:`ShedStrategy` enum drives exactly those two
switches inside the pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.policies import DropPolicy, RandomDropPolicy
from repro.engine.window import WindowSpec
from repro.synopses.base import SynopsisFactory
from repro.synopses.sparse_hist import SparseHistogramFactory


class ShedStrategy(enum.Enum):
    """Which load-shedding method the pipeline runs."""

    DATA_TRIAGE = "data_triage"
    DROP_ONLY = "drop_only"
    SUMMARIZE_ONLY = "summarize_only"

    @property
    def uses_queue(self) -> bool:
        """Summarize-only bypasses the triage queue entirely."""
        return self is not ShedStrategy.SUMMARIZE_ONLY

    @property
    def summarizes_drops(self) -> bool:
        """Drop-only disables the summarizing half of the queue."""
        return self is ShedStrategy.DATA_TRIAGE


@dataclass
class PipelineConfig:
    """Tuning knobs for a load-shedding pipeline run.

    ``service_time`` is the engine's cost to fully process one tuple through
    the standard (relational) path, in virtual seconds — its reciprocal is
    the engine's capacity in tuples/second.  ``triage_time`` is the cost to
    shed one tuple into a synopsis; the paper measures this to be a small
    fraction of standard processing (Figure 6), and it is charged to the
    triage process (outside the engine), not to the engine's budget.
    """

    strategy: ShedStrategy = ShedStrategy.DATA_TRIAGE
    window: WindowSpec = field(default_factory=lambda: WindowSpec(width=1.0))
    queue_capacity: int = 200
    policy: DropPolicy = field(default_factory=RandomDropPolicy)
    synopsis_factory: SynopsisFactory = field(default_factory=SparseHistogramFactory)
    service_time: float = 1.0 / 500.0
    seed: int = 0
    compute_ideal: bool = True
    #: When set, queues are resized at window boundaries by a
    #: :class:`repro.core.controller.LoadController` targeting this many
    #: seconds of backlog staleness; ``queue_capacity`` becomes the initial
    #: size.  None (default) keeps the paper's fixed-capacity behaviour.
    adaptive_staleness: float | None = None
    #: Use code-generated query plans (:mod:`repro.perf.compile`) for
    #: window evaluation; queries the compiler cannot express fall back to
    #: the interpreted executor automatically.
    compiled_plans: bool = True
    #: Evaluate closed windows on a process pool of this many workers
    #: (windows are independent, so evaluation is embarrassingly parallel).
    #: None (default) evaluates serially; results are ordered by window id
    #: either way, so the knob never changes a RunResult.
    parallel_windows: int | None = None

    #: Background sampling-profiler rate in Hz (None disables profiling).
    #: Sampling runs on a daemon thread and is byte-transparent to results
    #: and drop decisions; the pipeline exposes the profiler as ``.prof``.
    profile_hz: float | None = None

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ValueError(f"service_time must be positive: {self.service_time}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1: {self.queue_capacity}")
        if self.adaptive_staleness is not None and self.adaptive_staleness <= 0:
            raise ValueError(
                f"adaptive_staleness must be positive: {self.adaptive_staleness}"
            )
        if self.parallel_windows is not None and self.parallel_windows < 1:
            raise ValueError(
                f"parallel_windows must be >= 1: {self.parallel_windows}"
            )
        if self.profile_hz is not None and not self.profile_hz > 0:
            raise ValueError(f"profile_hz must be > 0: {self.profile_hz}")

    @property
    def engine_capacity(self) -> float:
        """Tuples/second the engine can fully process."""
        return 1.0 / self.service_time
