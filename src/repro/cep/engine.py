"""NFA-style pattern-matching engine over stream tuples.

A :class:`PatternEngine` executes one bound ``PATTERN SEQ(...)`` statement
(SASE-style sequence with Kleene closure and a WITHIN time bound) against a
stream of :class:`~repro.engine.types.StreamTuple`\\ s.  Partial matches are
*runs*: each run remembers which steps it has bound, the environment row
(one slot per pattern column), and the events that contributed.  Runs expire
when the WITHIN bound can no longer be met, and the engine bounds its own
memory pSPICE-style by retiring the lowest-utility runs when ``max_runs`` is
exceeded (Slo et al., "pSPICE: Partial Match Shedding for Complex Event
Processing" — see PAPERS.md).

Semantics, chosen for determinism and small-code clarity:

* Events are consumed one at a time in arrival order; every run that could
  consume the event inspects it in ascending run-id order, so the produced
  match set is a pure function of the input sequence — no RNG anywhere in
  the engine.
* A run advances *greedily toward progress*: if the event can move the run
  to its next step, it does; otherwise, if the run sits in a Kleene step,
  the event may be absorbed there.  Each run consumes an event at most once.
* Every event that satisfies step 0 also starts a fresh run
  (skip-till-next-match style), so overlapping matches are found.
* A run completes — and is removed — the moment its final step binds; the
  match row is ``(match_start, match_end, <step columns...>)`` with Kleene
  steps contributing a count plus the last absorbed event's columns.

The fast path (behaviour-preserving; every structure below produces the
byte-identical match stream of the naive scan-everything engine):

* **Compiled predicates** — step predicates are lowered through
  :func:`repro.perf.compile.compile_scalar` against the env schema; any
  :class:`~repro.perf.compile.CompileError` leaves that predicate on the
  interpreted ``Expression.bind`` closure (the executor's permanent
  fallback idiom).  ``compiled=False`` forces the interpreted path.
* **Stream/key-indexed run scheduling** — each run is indexed under one
  *token* per step it could consume next: ``(stream, None, None)`` when no
  usable key constraint exists, else ``(stream, row_pos, key_value)`` from
  the step's bind-time equality link.  An incoming event only visits the
  runs in its stream's ``any`` bucket plus the matching key buckets; every
  skipped run is one whose key-link predicate would have rejected the
  event anyway.  The same index *is* the protection view the drop policy
  reads — :meth:`protection_index` no longer rebuilds anything.
* **Heap expiry** — runs live in a ``(start, rid)`` min-heap; expiry pops
  only actually-expired entries instead of rebuilding the run list per
  event.  Entries for already-retired runs are skipped lazily.
* **Batch absorption** — :meth:`advance_batch` (row events) and
  :meth:`advance_columns` (a ColumnBatch of one stream) absorb whole
  batches.  Events failing a step's *local* predicates (run-independent
  conjuncts, vectorized via :func:`~repro.perf.vector.compile_filter_vector`)
  for every step of their stream are provably inert — they cannot start,
  extend, or complete any run — so they are discarded in bulk; only their
  timestamps still drive expiry (as a running maximum) and the utility
  model's ``seen`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable

from repro.engine.expressions import BinaryOp, is_equijoin_conjunct
from repro.engine.types import StreamTuple
from repro.perf.compile import CompileError, compile_scalar
from repro.perf.vector import compile_filter_vector, compile_filter_vector_cols
from repro.sql.binder import BoundPattern

#: Engine observer signature: ``observer(event, value)``.  Events:
#: ``"run_start"``, ``"run_extend"``, ``"match"``, ``"run_expire"``,
#: ``"run_shed"`` — each with value 1.0 per occurrence (``run_expire``
#: batches: one call with the count of runs expired together).
EngineObserver = Callable[[str, float], None]


@dataclass
class EngineStats:
    """Lifecycle counters for one engine instance."""

    events: int = 0
    runs_started: int = 0
    runs_extended: int = 0
    matches: int = 0
    runs_expired: int = 0
    runs_shed: int = 0


class _CompiledStep:
    """A bound step with its predicates compiled against the env schema."""

    __slots__ = (
        "variable",
        "stream",
        "kleene",
        "env_offset",
        "width",
        "predicates",
        "key_link",
        "local_rows",
        "local_cols",
    )

    def __init__(self, bound_step, pattern: "BoundPattern", compiled: bool) -> None:
        self.variable = bound_step.variable
        self.stream = bound_step.stream_name
        self.kleene = bound_step.kleene
        self.env_offset = bound_step.env_offset
        self.width = len(bound_step.schema)
        self.predicates = [
            _compile_pred(p, pattern, compiled) for p in bound_step.predicates
        ]
        self.key_link = _find_key_link(bound_step, pattern)
        # Vectorized run-independent pre-filter over this step's own stream
        # schema (the batch paths evaluate it against raw candidate rows,
        # not the env).  None means "cannot pre-filter at this step".
        self.local_rows = None
        self.local_cols = None
        local = getattr(bound_step, "local_predicates", ())
        if compiled and local:
            expr = local[0]
            for p in local[1:]:
                expr = BinaryOp("AND", expr, p)
            try:
                self.local_rows = compile_filter_vector(expr, bound_step.schema)
                self.local_cols = compile_filter_vector_cols(
                    expr, bound_step.schema
                )
            except CompileError:
                self.local_rows = None
                self.local_cols = None


def _compile_pred(pred, pattern: BoundPattern, compiled: bool) -> Callable:
    """Compile one predicate; fall back to the interpreted closure."""
    if compiled:
        try:
            return compile_scalar(pred, pattern.env_schema)
        except CompileError:
            pass
    return pred.bind(pattern.env_schema)


class _Run:
    """One partial match."""

    __slots__ = (
        "rid", "step", "counts", "env", "events", "start", "progress", "tokens"
    )

    def __init__(self, rid: int, n_steps: int, env_len: int, start: float) -> None:
        self.rid = rid
        self.step = 0  # index of the step currently being filled
        self.counts = [0] * n_steps
        self.env: list = [None] * env_len
        self.events: list[tuple[str, float]] = []
        self.start = start
        self.progress = 0  # number of steps with at least one event bound
        self.tokens: tuple = ()  # index tokens this run is currently filed under


class _StreamIndex:
    """Per-stream run buckets: who could consume this stream's next event."""

    __slots__ = ("any", "keyed")

    def __init__(self) -> None:
        #: rid -> run, for runs wanting this stream with no usable key.
        self.any: dict[int, _Run] = {}
        #: row position -> key value -> rid -> run.
        self.keyed: dict[int, dict] = {}


class PatternProtection:
    """Which (stream, row) pairs currently extend an active partial match.

    A *live view* over the engine's run index, maintained incrementally on
    every run transition — there is no rebuild step and no staleness.  A
    stream protects unconditionally while some run wants its next event
    from that stream without a usable key constraint; otherwise a row is
    protected iff one of its key positions hits a non-empty value bucket.
    """

    __slots__ = ("_index",)

    def __init__(self, index: dict[str, _StreamIndex]) -> None:
        self._index = index

    def protects(self, stream: str, row: tuple) -> bool:
        si = self._index.get(stream)
        if si is None:
            return False
        if si.any:
            return True
        for pos, by_val in si.keyed.items():
            if by_val.get(row[pos]):
                return True
        return False


class PatternEngine:
    """Executes one bound pattern; deterministic by construction."""

    def __init__(
        self,
        pattern: BoundPattern,
        *,
        max_runs: int = 1024,
        observer: EngineObserver | None = None,
        utility=None,
        audit=None,
        compiled: bool = True,
    ) -> None:
        if max_runs < 1:
            raise ValueError(f"max_runs must be >= 1, got {max_runs}")
        self.pattern = pattern
        self.max_runs = max_runs
        self.observer = observer
        self.utility = utility
        #: Optional :class:`repro.obs.audit.DropLedger`: records every
        #: partial-match evict (``cep_evict``) with the retired run's
        #: utility score.  Assignable post-construction.
        self.audit = audit
        #: False pins every predicate on the interpreted closures (and
        #: disables the vectorized batch pre-filter) — the permanent
        #: fallback, also useful to A/B the compiled path's byte-identity.
        self.compiled = compiled
        self.stats = EngineStats()
        self._steps = [_CompiledStep(s, pattern, compiled) for s in pattern.steps]
        self._within = pattern.within
        self._env_len = len(pattern.env_schema)
        self._runs: dict[int, _Run] = {}
        self._expiry: list[tuple[float, int]] = []  # (start, rid) min-heap
        self._index: dict[str, _StreamIndex] = {}
        self._protection = PatternProtection(self._index)
        self._next_rid = 0
        self._version = 0  # bumped on any run mutation; caches key off it
        # Batch pre-filter kernels: stream -> one local-predicate kernel per
        # step of that stream.  Only streams where *every* step carries a
        # kernel are eligible — a step without one admits any event, so the
        # union of per-step survivors would be the whole batch anyway.
        by_stream: dict[str, list[_CompiledStep]] = {}
        for st in self._steps:
            by_stream.setdefault(st.stream, []).append(st)
        self._kernels_rows = {
            s: [st.local_rows for st in sts]
            for s, sts in by_stream.items()
            if all(st.local_rows is not None for st in sts)
        }
        self._kernels_cols = {
            s: [st.local_cols for st in sts]
            for s, sts in by_stream.items()
            if all(st.local_cols is not None for st in sts)
        }

    # ------------------------------------------------------------------
    @property
    def active_runs(self) -> int:
        return len(self._runs)

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    def consume(self, stream: str, tup: StreamTuple) -> list[StreamTuple]:
        """Feed one event; returns the matches it completed (often empty)."""
        self.stats.events += 1
        if self.utility is not None:
            self.utility.observe(stream, tup.timestamp)
        return self._step_event(stream, tup)

    def advance_batch(
        self, events: "list[tuple[str, StreamTuple]]"
    ) -> list[StreamTuple]:
        """Absorb a batch of ``(stream, tuple)`` events; return its matches.

        Byte-identical to calling :meth:`consume` per event in order.  The
        batch win: ``seen``-counter updates happen in bulk per stream, and
        events failing every step's vectorized local predicates are skipped
        without touching run state — only their timestamps participate, as
        a running maximum driving expiry.
        """
        if not events:
            return []
        self.stats.events += len(events)
        if self.utility is not None:
            by_stream: dict[str, list[float]] = {}
            for stream, tup in events:
                lst = by_stream.get(stream)
                if lst is None:
                    lst = by_stream[stream] = []
                lst.append(tup.timestamp)
            for stream, stamps in by_stream.items():
                self.utility.observe_bulk(stream, stamps)
        live = self._live_indices(events)
        matches: list[StreamTuple] = []
        step = self._step_event
        if live is None:
            for stream, tup in events:
                m = step(stream, tup)
                if m:
                    matches.extend(m)
            return matches
        prev = 0
        pend = None  # max timestamp among skipped events awaiting expiry
        for gi in live:
            while prev < gi:
                ts = events[prev][1].timestamp
                if pend is None or ts > pend:
                    pend = ts
                prev += 1
            stream, tup = events[gi]
            if pend is not None and pend > tup.timestamp:
                self._expire(pend)
            pend = None
            m = step(stream, tup)
            if m:
                matches.extend(m)
            prev = gi + 1
        while prev < len(events):
            ts = events[prev][1].timestamp
            if pend is None or ts > pend:
                pend = ts
            prev += 1
        if pend is not None:
            self._expire(pend)
        return matches

    def advance_columns(self, stream: str, batch) -> list[StreamTuple]:
        """Absorb one stream's :class:`~repro.engine.columns.ColumnBatch`.

        The column-native twin of :meth:`advance_batch`: local predicates
        evaluate zero-copy against the batch's column lists, and only
        surviving rows are materialized into :class:`StreamTuple`\\ s.
        """
        n = len(batch)
        if n == 0:
            return []
        self.stats.events += n
        if batch.shared_timestamp:
            stamps = [batch.timestamps] * n
        elif batch.start == 0 and batch.stop == len(batch.timestamps):
            stamps = batch.timestamps
        else:
            stamps = batch.timestamps[batch.start : batch.stop]
        if self.utility is not None:
            self.utility.observe_bulk(stream, stamps)
        kernels = self._kernels_cols.get(stream)
        live = None
        if kernels is not None:
            cols = batch.columns
            if batch.start != 0 or (cols and batch.stop != len(cols[0])):
                cols = tuple(c[batch.start : batch.stop] for c in cols)
            passing: set[int] = set()
            for kern in kernels:
                passing.update(kern(cols))
                if len(passing) == n:
                    break
            if len(passing) < n:
                live = sorted(passing)
        matches: list[StreamTuple] = []
        step = self._step_event
        if live is None:
            for i in range(n):
                m = step(stream, StreamTuple(stamps[i], batch.row(i)))
                if m:
                    matches.extend(m)
            return matches
        prev = 0
        pend = None
        for gi in live:
            if prev < gi:
                span = max(stamps[prev:gi])
                if pend is None or span > pend:
                    pend = span
            tup = StreamTuple(stamps[gi], batch.row(gi))
            if pend is not None and pend > tup.timestamp:
                self._expire(pend)
            pend = None
            m = step(stream, tup)
            if m:
                matches.extend(m)
            prev = gi + 1
        if prev < n:
            span = max(stamps[prev:n])
            if pend is None or span > pend:
                pend = span
        if pend is not None:
            self._expire(pend)
        return matches

    def run_snapshot(self) -> list[tuple[int, int, float]]:
        """(rid, current step, start time) per active run — for debugging/UI."""
        return [(r.rid, r.step, r.start) for r in self._runs.values()]

    # ------------------------------------------------------------------
    def protection_index(self) -> PatternProtection:
        """The live protection view — maintained incrementally, never rebuilt.

        The returned object is stable for the engine's lifetime and always
        reflects the current run set; callers must not assume snapshot
        semantics across engine mutations.
        """
        return self._protection

    # ------------------------------------------------------------------
    def _step_event(self, stream: str, tup: StreamTuple) -> list[StreamTuple]:
        ts = tup.timestamp
        expiry = self._expiry
        if expiry and ts - expiry[0][0] > self._within:
            self._expire(ts)
        matches: list[StreamTuple] = []
        completed: list[_Run] | None = None
        cands = self._candidates(stream, tup.row)
        if cands:
            n = len(self._steps)
            for run in cands:
                if self._extend(run, stream, tup):
                    self.stats.runs_extended += 1
                    if self.observer is not None:
                        self.observer("run_extend", 1.0)
                    if run.step >= n:
                        if completed is None:
                            completed = []
                        completed.append(run)
                    else:
                        self._reindex(run)
        if completed:
            runs = self._runs
            for run in completed:
                del runs[run.rid]
                self._index_remove(run)
                matches.append(self._emit(run, ts))
        self._start_run(stream, tup, matches)
        if matches or completed:
            self._version += 1
        return matches

    def _candidates(self, stream: str, row: tuple) -> "list[_Run] | tuple":
        """Runs that could consume this event, in ascending rid order."""
        si = self._index.get(stream)
        if si is None:
            return ()
        keyed = si.keyed
        if keyed:
            found = dict(si.any)
            for pos, by_val in keyed.items():
                bucket = by_val.get(row[pos])
                if bucket:
                    found.update(bucket)
        else:
            found = si.any
        if not found:
            return ()
        if len(found) == 1:
            return list(found.values())
        return [found[rid] for rid in sorted(found)]

    # ------------------------------------------------------------------
    # Run index maintenance
    # ------------------------------------------------------------------
    def _run_tokens(self, run: _Run) -> tuple:
        steps = self._steps
        n = len(steps)
        k = run.step
        if k >= n:
            return ()
        # Advancing out of an open Kleene group is also an extension.
        if steps[k].kleene and run.counts[k] >= 1 and k + 1 < n:
            first = self._token(steps[k + 1], run)
            second = self._token(steps[k], run)
            if first == second:
                return (first,)
            return (first, second)
        return (self._token(steps[k], run),)

    @staticmethod
    def _token(step: _CompiledStep, run: _Run) -> tuple:
        link = step.key_link
        if link is not None:
            value = run.env[link[1]]
            if value is not None:
                try:
                    hash(value)
                except TypeError:
                    return (step.stream, None, None)
                return (step.stream, link[0], value)
        return (step.stream, None, None)

    def _index_add(self, run: _Run) -> None:
        index = self._index
        for stream, pos, value in run.tokens:
            si = index.get(stream)
            if si is None:
                si = index[stream] = _StreamIndex()
            if pos is None:
                si.any[run.rid] = run
            else:
                si.keyed.setdefault(pos, {}).setdefault(value, {})[run.rid] = run

    def _index_remove(self, run: _Run) -> None:
        index = self._index
        for stream, pos, value in run.tokens:
            si = index.get(stream)
            if si is None:
                continue
            if pos is None:
                si.any.pop(run.rid, None)
            else:
                by_pos = si.keyed.get(pos)
                bucket = by_pos.get(value) if by_pos is not None else None
                if bucket is not None:
                    bucket.pop(run.rid, None)
                    if not bucket:
                        del by_pos[value]
                        if not by_pos:
                            del si.keyed[pos]
            if not si.any and not si.keyed:
                del index[stream]

    def _reindex(self, run: _Run) -> None:
        tokens = self._run_tokens(run)
        if tokens != run.tokens:
            self._index_remove(run)
            run.tokens = tokens
            self._index_add(run)

    # ------------------------------------------------------------------
    def _extend(self, run: _Run, stream: str, tup: StreamTuple) -> bool:
        steps = self._steps
        n = len(steps)
        k = run.step
        if k >= n:
            return False
        # Progress first: leave an open Kleene group when the next step fits.
        if steps[k].kleene and run.counts[k] >= 1 and k + 1 < n:
            if steps[k + 1].stream == stream and self._bind(run, k + 1, tup):
                self._after_bind(run, k + 1, tup)
                if not steps[k + 1].kleene:
                    run.step = k + 2
                elif k + 1 == n - 1:
                    run.step = n  # trailing Kleene: emit at first absorb
                else:
                    run.step = k + 1
                return True
        if steps[k].stream == stream and self._bind(run, k, tup):
            self._after_bind(run, k, tup)
            if not steps[k].kleene:
                run.step = k + 1
            elif k == n - 1:
                # Trailing Kleene step: emit at its first absorb (earliest
                # match); further absorbs would be ambiguous.
                run.step = n
            return True
        return False

    def _bind(self, run: _Run, step_idx: int, tup: StreamTuple) -> bool:
        """Write the candidate into the env, keep it iff predicates pass."""
        step = self._steps[step_idx]
        off, width = step.env_offset, step.width
        env = run.env
        saved = env[off : off + width]
        env[off : off + width] = tup.row
        for pred in step.predicates:
            if pred(env) is not True:
                env[off : off + width] = saved
                return False
        return True

    def _after_bind(self, run: _Run, step_idx: int, tup: StreamTuple) -> None:
        if run.counts[step_idx] == 0:
            run.progress += 1
        run.counts[step_idx] += 1
        run.events.append((self._steps[step_idx].stream, tup.timestamp))
        self._version += 1

    def _start_run(
        self, stream: str, tup: StreamTuple, matches: list[StreamTuple]
    ) -> None:
        step0 = self._steps[0]
        if step0.stream != stream:
            return
        run = _Run(self._next_rid, len(self._steps), self._env_len, tup.timestamp)
        if not self._bind(run, 0, tup):
            return
        self._next_rid += 1
        self._after_bind(run, 0, tup)
        if not step0.kleene:
            run.step = 1
        if run.step >= len(self._steps):  # single-step pattern
            matches.append(self._emit(run, tup.timestamp))
        else:
            self._runs[run.rid] = run
            run.tokens = self._run_tokens(run)
            self._index_add(run)
            heappush(self._expiry, (run.start, run.rid))
            self.stats.runs_started += 1
            self._notify("run_start")
            if len(self._runs) > self.max_runs:
                self._shed_run(tup.timestamp)
        self._version += 1

    def _emit(self, run: _Run, end_ts: float) -> StreamTuple:
        row: list = [run.start, end_ts]
        for k, step in enumerate(self._steps):
            if step.kleene:
                row.append(run.counts[k])
            row.extend(run.env[step.env_offset : step.env_offset + step.width])
        self.stats.matches += 1
        self._notify("match")
        if self.utility is not None:
            for stream, ts in run.events:
                self.utility.credit(stream, ts)
        return StreamTuple(end_ts, tuple(row))

    def _expire(self, now: float) -> None:
        heap = self._expiry
        within = self._within
        runs = self._runs
        expired = 0
        while heap and now - heap[0][0] > within:
            _, rid = heappop(heap)
            run = runs.pop(rid, None)
            if run is None:
                continue  # stale entry: run already completed or was shed
            self._index_remove(run)
            expired += 1
        if expired:
            self.stats.runs_expired += expired
            self._version += 1
            self._notify("run_expire", float(expired))

    def _shed_run(self, now: float) -> None:
        """pSPICE-style partial-match shedding: retire the worst run.

        Utility = completion progress plus remaining-lifetime fraction; ties
        break toward the oldest run id, so the choice is deterministic.
        """
        n = len(self._steps)
        within = self._within
        worst: _Run | None = None
        worst_key = None
        for run in self._runs.values():
            utility = run.progress / n + max(0.0, 1.0 - (now - run.start) / within)
            key = (utility, run.rid)
            if worst_key is None or key < worst_key:
                worst_key = key
                worst = run
        del self._runs[worst.rid]
        self._index_remove(worst)
        self.stats.runs_shed += 1
        self._version += 1
        self._notify("run_shed")
        if self.audit is not None:
            self.audit.record(
                "cep_evict",
                policy="pspice",
                stream=self._steps[0].stream,
                windows=(),
                timestamp=worst.start,
                depth=len(self._runs),
                score=worst_key[0] if worst_key is not None else None,
            )

    def _live_indices(self, events) -> "list[int] | None":
        """Indices of events that could touch run state; None = all of them.

        An event is *inert* when it fails the vectorized local-predicate
        kernel of every step on its stream: no bind can succeed anywhere
        (local conjuncts are a necessary subset of each step's predicate
        list), so it can neither start, extend, nor complete a run.
        """
        kernels = self._kernels_rows
        if not kernels:
            return None
        by_stream: dict[str, tuple[list[int], list[tuple]]] = {}
        for i, (stream, tup) in enumerate(events):
            if stream in kernels:
                entry = by_stream.get(stream)
                if entry is None:
                    entry = by_stream[stream] = ([], [])
                entry[0].append(i)
                entry[1].append(tup.row)
        if not by_stream:
            return None
        inert: set[int] = set()
        for stream, (idxs, rows) in by_stream.items():
            passing: set[int] = set()
            for kern in kernels[stream]:
                passing.update(kern(rows))
                if len(passing) == len(rows):
                    break
            if len(passing) < len(rows):
                inert.update(
                    idxs[j] for j in range(len(rows)) if j not in passing
                )
        if not inert:
            return None
        return [i for i in range(len(events)) if i not in inert]

    def _notify(self, event: str, value: float = 1.0) -> None:
        if self.observer is not None:
            self.observer(event, value)


def _find_key_link(bound_step, pattern: BoundPattern) -> tuple[int, int] | None:
    """``(candidate row position, env position of the partner value)``.

    The first predicate of the form ``me.col = other_var.col`` (either
    orientation) where ``other_var`` is a different step.  Lets the run
    index file each run under exactly the key values on this stream that
    would extend it; steps without one index their whole stream.
    """
    me = bound_step.variable.lower()
    by_var = {s.variable.lower(): s for s in pattern.steps}
    for pred in bound_step.predicates:
        pair = is_equijoin_conjunct(pred)
        if pair is None:
            continue
        left, right = pair
        lmine = (left.table or "").lower() == me
        rmine = (right.table or "").lower() == me
        if lmine == rmine:
            continue
        cand, other = (left, right) if lmine else (right, left)
        partner = by_var.get((other.table or "").lower())
        if partner is None:
            continue
        cand_pos = bound_step.schema.position(cand.name)
        env_pos = partner.env_offset + partner.schema.position(other.name)
        return (cand_pos, env_pos)
    return None


def match_identity(pattern: BoundPattern, row: tuple) -> tuple:
    """A shedding-robust identity for one match row.

    ``(match_start, <non-Kleene step columns...>)``: the start timestamp
    pins the run's anchoring first event, and single-step columns pin the
    specific events bound.  Kleene groups (whose absorb count and last
    event legitimately vary once noise events are shed) and the end
    timestamp (a later closing event may complete the same instance) are
    excluded, so recall measures *detection* of a pattern instance, not
    byte equality of the emitted row.
    """
    out = [row[0]]
    pos = 2
    for step in pattern.steps:
        width = len(step.schema)
        if step.kleene:
            pos += 1 + width  # skip <var>_count and the last absorbed event
        else:
            out.extend(row[pos : pos + width])
            pos += width
    return tuple(out)


def canonical_match_bytes(matches: list[StreamTuple]) -> bytes:
    """A byte string identifying a match sequence exactly (for determinism tests)."""
    return "\n".join(
        f"{m.timestamp!r}\t{m.row!r}" for m in matches
    ).encode("utf-8")
