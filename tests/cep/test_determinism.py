"""Byte-identical match sets through the service data plane.

The acceptance bar for the CEP tier: with a fixed seed, the emitted match
sequence is a pure function of the workload and the drain schedule — how
arrivals are chopped into ingest batches must not matter.
"""

from repro.cep import (
    DEMO_PATTERN,
    bursty_pattern_workload,
    canonical_match_bytes,
    demo_catalog,
)
from repro.core.pipeline import DataTriagePipeline
from repro.core.strategies import PipelineConfig
from repro.service.dataplane import StreamDataPlane
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement

QUERY = (
    "SELECT A.k, COUNT(*) AS n FROM A, B, C "
    "WHERE A.k = B.k AND B.k = C.k GROUP BY A.k; "
    "WINDOW A ['2 seconds'], B ['2 seconds'], C ['2 seconds']"
)

EVENTS = bursty_pattern_workload(n_events=800, seed=0)


def run_plane(row_batch: int, drain_every: int = 100):
    catalog = demo_catalog()
    pattern = Binder(catalog).bind_pattern(parse_statement(DEMO_PATTERN))
    pipeline = DataTriagePipeline(catalog, QUERY, PipelineConfig())
    plane = StreamDataPlane(pipeline)
    plane.attach_pattern(pattern)
    for i in range(0, len(EVENTS), drain_every):
        chunk = EVENTS[i : i + drain_every]
        j = 0
        while j < len(chunk):
            stream = chunk[j][0]
            rows, stamps = [], []
            while (
                j < len(chunk)
                and chunk[j][0] == stream
                and len(rows) < row_batch
            ):
                rows.append(list(chunk[j][1].row))
                stamps.append(chunk[j][1].timestamp)
                j += 1
            plane.ingest(stream, rows, stamps, stamps[-1])
        plane.drain(None)
    return plane


class TestPlaneDeterminism:
    def test_ingest_batch_size_does_not_change_matches(self):
        one = canonical_match_bytes(run_plane(1).take_matches())
        fifty = canonical_match_bytes(run_plane(50).take_matches())
        assert one and one == fifty

    def test_repeat_runs_byte_identical(self):
        assert canonical_match_bytes(run_plane(10).take_matches()) == (
            canonical_match_bytes(run_plane(10).take_matches())
        )

    def test_reset_rebuilds_empty_engine(self):
        plane = run_plane(10)
        engine = plane.pattern_engine
        assert engine.stats.events > 0
        plane.reset()
        rebuilt = plane.pattern_engine
        assert rebuilt is not engine
        assert rebuilt.stats.events == 0
        assert plane.take_matches() == []

    def test_attach_rejects_foreign_streams(self):
        catalog = demo_catalog()
        pattern = Binder(catalog).bind_pattern(parse_statement(DEMO_PATTERN))
        pipeline = DataTriagePipeline(
            catalog,
            "SELECT A.k, COUNT(*) AS n FROM A GROUP BY A.k; "
            "WINDOW A ['2 seconds']",
            PipelineConfig(),
        )
        plane = StreamDataPlane(pipeline)
        try:
            plane.attach_pattern(pattern)
        except ValueError as exc:
            assert "not sources" in str(exc)
        else:  # pragma: no cover - failure path
            raise AssertionError("attach_pattern accepted foreign streams")
