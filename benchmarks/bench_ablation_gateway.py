"""Ablation — triage at distributed gateways vs. dropping at the network.

The paper's fourth design goal: shed load *"close to the data source in
scenarios where distributed gateways can be deployed."*  Here the bottleneck
is a constrained WAN link per stream (not engine CPU): tuples that overflow
the gateway either tail-drop at the link buffer (baseline) or get triaged
into synopses that cross the wire at window boundaries, paying their own
(small) bandwidth cost.

Reported: RMS error and delivery lag for both modes across link bandwidths,
plus the bandwidth consumed by synopses.  Expected: gateway triage wins on
error at every constrained bandwidth, for a synopsis overhead of a few
percent of link capacity.
"""

from __future__ import annotations

import random

import pytest

from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.core.gateway import run_gateway_experiment
from repro.engine import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.quality import ErrorSummary, run_rms
from repro.sources import SteadyArrival, generate_stream, paper_row_generators
from repro.sources.network import NetworkLink

RATE_PER_STREAM = 300.0
N_TUPLES = 900
N_RUNS = 3
BANDWIDTHS = [75.0, 150.0, 300.0]  # tuples/sec per link; rate is 300/s


def build(seed):
    rng = random.Random(seed)
    gens = paper_row_generators()
    return {
        name: generate_stream(
            N_TUPLES, SteadyArrival(RATE_PER_STREAM), gens[name], None, rng
        )
        for name in ("R", "S", "T")
    }


def make_pipeline():
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=WindowSpec(width=0.5),
        service_time=1e-6,  # the engine is not the bottleneck here
    )
    return DataTriagePipeline(paper_catalog(), PAPER_QUERY, config)


def run_mode(bandwidth: float, summarize: bool) -> ErrorSummary:
    pipeline = make_pipeline()
    links = {
        name: NetworkLink(bandwidth=bandwidth, latency=0.01)
        for name in ("R", "S", "T")
    }
    values = []
    for seed in range(N_RUNS):
        result = run_gateway_experiment(
            pipeline,
            build(seed),
            links,
            queue_capacity=25,
            summarize=summarize,
            seed=seed,
        )
        values.append(run_rms(result.run))
    return ErrorSummary.from_values(values)


@pytest.mark.parametrize("bandwidth", BANDWIDTHS)
def test_ablation_gateway_bandwidth(benchmark, bandwidth):
    def measure():
        return run_mode(bandwidth, True), run_mode(bandwidth, False)

    triage, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nlink {bandwidth:.0f} tuples/s: gateway triage RMS "
        f"{triage.mean:.1f} ± {triage.std:.1f} vs link tail-drop "
        f"{naive.mean:.1f} ± {naive.std:.1f}"
    )
    if bandwidth < RATE_PER_STREAM:
        assert triage.mean < naive.mean
    else:
        # Uncongested: both exact.
        assert triage.mean == pytest.approx(0.0, abs=1e-9)
        assert naive.mean == pytest.approx(0.0, abs=1e-9)


def test_ablation_gateway_synopsis_overhead(benchmark):
    """Quantify the bandwidth the synopses themselves consume."""

    def measure():
        pipeline = make_pipeline()
        links = {
            name: NetworkLink(bandwidth=75.0, latency=0.01)
            for name in ("R", "S", "T")
        }
        result = run_gateway_experiment(
            pipeline, build(0), links, queue_capacity=25, summarize=True
        )
        cells = sum(
            ws.synopsis.storage_size()
            for o in result.outputs.values()
            for ws in o.synopses.values()
            if ws.synopsis is not None
        )
        dropped = sum(o.dropped for o in result.outputs.values())
        return cells, dropped, result.max_delivery_lag

    cells, dropped, lag = benchmark.pedantic(measure, rounds=1, iterations=1)
    compression = cells / dropped
    print(
        f"\nsynopsis compression: {cells} cells stand in for {dropped} "
        f"dropped tuples ({compression:.2f} cells/tuple); "
        f"max delivery lag {lag:.3f}s"
    )
    # Shipping the synopsis must be substantially cheaper than shipping the
    # tuples it replaces (here: each bucket as expensive as one tuple).
    assert compression < 0.5
