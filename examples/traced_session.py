#!/usr/bin/env python
"""Distributed tracing + live telemetry end to end, in one process pair.

A tuple's life now starts in a client and ends in a RESULT fan-out; this
example shows the whole journey being recorded and stitched back together:

1. the server runs with a tracer labeled ``server``; the client attaches
   its own tracer labeled ``client``;
2. every PUBLISH mints a ``{trace_id, parent}`` context that rides the
   frame; the server continues the trace through ingest → triage queue →
   window close → RESULT, and the RESULT frame echoes the context back;
3. the client also opts into the TELEMETRY push: metric deltas, window
   reports, and SLO burn-rate alerts arrive while a burst overloads the
   queue — watch the ``shed_ratio``/``window_staleness`` alerts fire;
4. both sides export JSONL traces, and ``merge_jsonl_traces`` (the
   library behind ``repro trace --merge``) aligns their clocks into one
   Perfetto-loadable document with the client's trace_ids present on both
   process tracks.

Window time is an injected clock so the run is deterministic; the sockets,
framing, tracing, and telemetry are the real thing.

Run:  python examples/traced_session.py
Then: load traced_session.json in https://ui.perfetto.dev
"""

from __future__ import annotations

import asyncio
import json

from repro.core.strategies import PipelineConfig
from repro.engine.window import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.obs import Observability
from repro.obs.trace import Tracer, merge_jsonl_traces
from repro.service import ServiceConfig, TriageClient, TriageServer

STEADY_R, BURST_R = 150, 3000
PER_WINDOW_S = PER_WINDOW_T = 200


def spread(window: int, n: int) -> list[float]:
    """n timestamps evenly through window ``w`` of width 1."""
    return [window + i / n for i in range(n)]


async def main() -> None:
    clock = {"t": 0.0}
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=250,
        service_time=0.001,
        compute_ideal=False,
    )
    service = ServiceConfig(
        tick_interval=None, clock=lambda: clock["t"], telemetry_interval=1.0
    )
    server_obs = Observability(trace=True, label="server")
    server = TriageServer(
        paper_catalog(), PAPER_QUERY, config, service, obs=server_obs
    )
    await server.start()
    print(f"service listening on 127.0.0.1:{server.port}")

    client_tracer = Tracer(label="client")
    client = await TriageClient.connect(
        "127.0.0.1", server.port, client_name="traced-demo", tracer=client_tracer
    )
    for stream in ("R", "S", "T"):
        await client.declare(stream)
    await client.subscribe(telemetry=True, telemetry_interval=1.0)

    async def tick_to(t: float) -> None:
        clock["t"] = t
        await server.tick()

    # Three windows: steady, 20x burst on R (the queue sheds), steady.
    for w, r_rate in enumerate((STEADY_R, BURST_R, STEADY_R)):
        for stream, rate in (("R", r_rate), ("S", PER_WINDOW_S), ("T", PER_WINDOW_T)):
            ts = spread(w, rate)
            # R(a) and T(d) are single-column; S(b, c) carries two.
            if stream == "S":
                rows = [[1 + i % 10, 5] for i in range(rate)]
            else:
                rows = [[1 + i % 10] for i in range(rate)]
            ack = await client.publish(stream, rows, timestamps=ts)
            if ack["queue_dropped_total"]:
                print(
                    f"window {w}: {stream} queue shed "
                    f"{ack['queue_dropped_total']} tuples so far"
                )
        await tick_to(w + 1.2)

    await tick_to(5.0)  # flush the last window + a telemetry interval

    seen = 0
    while (result := await client.next_result(timeout=1.0)) is not None:
        traces = result.get("traces") or []
        print(
            f"RESULT window {result['window']}: {len(result['groups'])} groups, "
            f"shed {result['drop_fraction']:.0%}, "
            f"{len(traces)} trace contexts echoed"
        )
        seen += 1
        if seen == 3:
            break

    telemetry = await client.next_telemetry(timeout=1.0)
    if telemetry is not None:
        print(
            f"TELEMETRY #{telemetry['seq']}: "
            f"{len(telemetry.get('metrics') or {})} metric deltas, "
            f"{len(telemetry.get('reports') or ())} window reports, "
            f"firing alerts: {telemetry.get('firing') or 'none'}"
        )

    await client.close()
    await server.shutdown()

    client_tracer.write("traced_client.jsonl", fmt="jsonl")
    server_obs.tracer.write("traced_server.jsonl", fmt="jsonl")
    doc = merge_jsonl_traces(["traced_client.jsonl", "traced_server.jsonl"])
    with open("traced_session.json", "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=1)
    ids = {
        e["args"]["trace_id"]
        for e in doc["traceEvents"]
        if isinstance(e.get("args"), dict) and "trace_id" in e["args"]
    }
    pids = {
        e["pid"]
        for e in doc["traceEvents"]
        if isinstance(e.get("args"), dict) and "trace_id" in e["args"]
    }
    print(
        f"merged trace: {len(doc['traceEvents'])} events, "
        f"{len(ids)} trace ids across {len(pids)} process tracks "
        "-> traced_session.json (load it in ui.perfetto.dev)"
    )


if __name__ == "__main__":
    asyncio.run(main())
