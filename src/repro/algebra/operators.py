"""Relational-algebra operators over multisets, plus their differential forms.

The first half of this module implements ordinary bag-semantics operators
(σ, π, ×, ⋈, −, ∪) over :class:`repro.algebra.multiset.Multiset`.  The second
half implements the *differential* operators of paper Section 3.2: each
operator ``F`` gets a version ``F̂`` that consumes and produces
``(noisy, added, dropped)`` triples (:class:`DifferentialRelation`) while
preserving the invariant ``noisy == exact + added - dropped``.

Column positions (not names) address attributes at this layer; the SQL/engine
layers resolve names to positions before calling in.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence

from repro.algebra.multiset import Multiset, Row
from repro.algebra.triple import DifferentialRelation

Predicate = Callable[[Row], bool]


# ---------------------------------------------------------------------------
# Plain bag operators
# ---------------------------------------------------------------------------
def select(rel: Multiset, predicate: Predicate) -> Multiset:
    """σ: keep the rows satisfying ``predicate`` (multiplicities preserved)."""
    out = Multiset()
    for row, n in rel.items():
        if predicate(row):
            out.add(row, n)
    return out


def project(rel: Multiset, columns: Sequence[int]) -> Multiset:
    """π: keep the given column positions.

    Bag projection: duplicates produced by the projection are *kept* — the
    differential projection operator is only correct over multisets (paper
    Section 3.2.2 and the SELECT DISTINCT discussion in Future Work).
    """
    out = Multiset()
    for row, n in rel.items():
        out.add(tuple(row[c] for c in columns), n)
    return out


def cross(left: Multiset, right: Multiset) -> Multiset:
    """×: concatenate every pair of rows; multiplicities multiply."""
    out = Multiset()
    for lrow, ln in left.items():
        for rrow, rn in right.items():
            out.add(lrow + rrow, ln * rn)
    return out


def theta_join(left: Multiset, right: Multiset, predicate: Predicate) -> Multiset:
    """⋈θ: cross product filtered by ``predicate`` over the concatenated row."""
    out = Multiset()
    for lrow, ln in left.items():
        for rrow, rn in right.items():
            row = lrow + rrow
            if predicate(row):
                out.add(row, ln * rn)
    return out


def equijoin(
    left: Multiset,
    right: Multiset,
    left_keys: Sequence[int],
    right_keys: Sequence[int],
) -> Multiset:
    """⋈: hash equijoin on the given key positions (output = concatenated rows)."""
    if len(left_keys) != len(right_keys):
        raise ValueError("left and right key lists must have equal length")
    buckets: dict[tuple, list[tuple[Row, int]]] = defaultdict(list)
    for rrow, rn in right.items():
        buckets[tuple(rrow[k] for k in right_keys)].append((rrow, rn))
    out = Multiset()
    for lrow, ln in left.items():
        key = tuple(lrow[k] for k in left_keys)
        for rrow, rn in buckets.get(key, ()):
            out.add(lrow + rrow, ln * rn)
    return out


def union_all(left: Multiset, right: Multiset) -> Multiset:
    """∪ (bag): multiplicities add — SQL's UNION ALL."""
    return left + right


def difference(left: Multiset, right: Multiset) -> Multiset:
    """−: bag difference (monus) — SQL's EXCEPT ALL."""
    return left - right


# ---------------------------------------------------------------------------
# Differential operators (paper Section 3.2)
# ---------------------------------------------------------------------------
def differential_select(
    s: DifferentialRelation, predicate: Predicate
) -> DifferentialRelation:
    """σ̂ (eq. 4): selection distributes over all three channels."""
    return DifferentialRelation(
        noisy=select(s.noisy, predicate),
        added=select(s.added, predicate),
        dropped=select(s.dropped, predicate),
    )


def differential_project(
    s: DifferentialRelation, columns: Sequence[int]
) -> DifferentialRelation:
    """π̂ (eq. 5): projection distributes over all three channels.

    Correct only under multiset semantics — see paper Section 3.2.2.
    """
    return DifferentialRelation(
        noisy=project(s.noisy, columns),
        added=project(s.added, columns),
        dropped=project(s.dropped, columns),
    )


def _differential_product(
    s: DifferentialRelation,
    t: DifferentialRelation,
    combine: Callable[[Multiset, Multiset], Multiset],
) -> DifferentialRelation:
    """Shared body of ×̂ and ⋈̂ (paper Sections 3.2.3/3.2.4).

    With ``K_S = S_noisy - S+`` (the noisy tuples that are genuinely in the
    exact relation) the paper's equation 8 reads::

        R_noisy = S_noisy × T_noisy
        R+      = S+ × T+  +  S+ × K_T  +  K_S × T+
        R-      = S- × T-  +  S- × K_T  +  K_S × T-

    ``combine`` is the underlying bilinear operator (cross product, or an
    equi/theta join closed over it), which is what makes one derivation serve
    both operators — the paper notes the join derivation "produces essentially
    the same definition".
    """
    k_s = s.noisy - s.added
    k_t = t.noisy - t.added
    noisy = combine(s.noisy, t.noisy)
    added = (
        combine(s.added, t.added)
        + combine(s.added, k_t)
        + combine(k_s, t.added)
    )
    dropped = (
        combine(s.dropped, t.dropped)
        + combine(s.dropped, k_t)
        + combine(k_s, t.dropped)
    )
    return DifferentialRelation(noisy=noisy, added=added, dropped=dropped)


def differential_cross(
    s: DifferentialRelation, t: DifferentialRelation
) -> DifferentialRelation:
    """×̂ (eq. 8): differential cross product."""
    return _differential_product(s, t, cross)


def differential_equijoin(
    s: DifferentialRelation,
    t: DifferentialRelation,
    left_keys: Sequence[int],
    right_keys: Sequence[int],
) -> DifferentialRelation:
    """⋈̂ (Section 3.2.4): differential equijoin — same shape as ×̂."""
    return _differential_product(
        s, t, lambda a, b: equijoin(a, b, left_keys, right_keys)
    )


def differential_theta_join(
    s: DifferentialRelation, t: DifferentialRelation, predicate: Predicate
) -> DifferentialRelation:
    """⋈̂θ: differential theta join, via the shared product derivation."""
    return _differential_product(s, t, lambda a, b: theta_join(a, b, predicate))


def differential_union_all(
    s: DifferentialRelation, t: DifferentialRelation
) -> DifferentialRelation:
    """∪̂ (bag): union distributes over all three channels."""
    return DifferentialRelation(
        noisy=s.noisy + t.noisy,
        added=s.added + t.added,
        dropped=s.dropped + t.dropped,
    )


def differential_difference_paper(
    s: DifferentialRelation, t: DifferentialRelation
) -> DifferentialRelation:
    """−̂ exactly as printed in the paper (eq. 9).

    ::

        R_noisy = S_noisy - T_noisy
        R+ = (S+ - T_noisy) + ((T- - S+) ∩ S_noisy)
        R- = (S+ ∩ T-) + ((S_noisy ∩ T+) - S+) + (S- - T- - T_noisy)

    .. warning::
       Equation 9 is correct under *set* semantics (each channel
       duplicate-free and ``S-`` disjoint from ``S_noisy - S+``) but is **not
       sound for general multisets**: monus is non-linear, so a dropped tuple
       that duplicates a surviving noisy tuple is mis-attributed.  Example:
       ``S_noisy={x}, S-={x}, T_noisy={x}`` gives exact ``S-T={x}`` and
       ``R_noisy=∅``, yet eq. 9 yields empty deltas.  Use
       :func:`differential_difference` for a sound general-case operator; this
       function is retained for fidelity to the paper and for the
       set-semantics regime the paper's SPJ focus actually exercises.
    """
    noisy = s.noisy - t.noisy
    added = (s.added - t.noisy) + ((t.dropped - s.added) & s.noisy)
    dropped = (
        (s.added & t.dropped)
        + ((s.noisy & t.added) - s.added)
        + ((s.dropped - t.dropped) - t.noisy)
    )
    return DifferentialRelation(noisy=noisy, added=added, dropped=dropped)


def differential_difference(
    s: DifferentialRelation, t: DifferentialRelation
) -> DifferentialRelation:
    """−̂: sound differential set difference for arbitrary multisets.

    Computes the exact difference from the reconstructed exact inputs and
    derives the *canonical minimal* deltas::

        R_noisy = S_noisy - T_noisy
        exact   = S_exact - T_exact
        R+      = R_noisy - exact      (spurious rows in the noisy answer)
        R-      = exact - R_noisy      (rows the noisy answer lost)

    This always satisfies the invariant and agrees with eq. 9 wherever eq. 9
    is itself sound.
    """
    noisy = s.noisy - t.noisy
    exact = s.exact() - t.exact()
    return DifferentialRelation(
        noisy=noisy, added=noisy - exact, dropped=exact - noisy
    )
