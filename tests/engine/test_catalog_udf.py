"""Tests for the catalog and the object-relational UDF/UDT registry."""

import pytest

from repro.engine import (
    Catalog,
    CatalogError,
    ColumnType,
    Schema,
    UDFError,
    UDFRegistry,
)
from repro.engine.catalog import SYNOPSIS_STREAM_SCHEMA


class TestCatalog:
    def test_create_and_lookup_stream(self):
        cat = Catalog()
        cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
        assert cat.has_stream("r")  # case-insensitive
        assert cat.stream("R").schema.names == ("a",)

    def test_duplicate_stream_rejected(self):
        cat = Catalog()
        cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
        with pytest.raises(CatalogError, match="already exists"):
            cat.create_stream("r", Schema.of(("b", ColumnType.INTEGER)))

    def test_replace_stream(self):
        cat = Catalog()
        cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
        cat.create_stream("R", Schema.of(("b", ColumnType.INTEGER)), replace=True)
        assert cat.stream("R").schema.names == ("b",)

    def test_drop_stream(self):
        cat = Catalog()
        cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
        cat.drop_stream("R")
        assert not cat.has_stream("R")
        with pytest.raises(CatalogError):
            cat.drop_stream("R")

    def test_unknown_stream(self):
        with pytest.raises(CatalogError, match="no stream"):
            Catalog().stream("ghost")

    def test_views(self):
        cat = Catalog()
        cat.create_view("v", "definition")
        assert cat.has_view("V")
        assert cat.view("v") == "definition"
        with pytest.raises(CatalogError):
            cat.create_view("v", "other")

    def test_create_triage_streams(self):
        """The paper's DDL expansion: four auxiliary streams per user stream."""
        cat = Catalog()
        cat.create_stream("R", Schema.of(("a", ColumnType.INTEGER)))
        aux = cat.create_triage_streams("R")
        assert set(aux) == {"kept", "dropped", "kept_syn", "dropped_syn"}
        assert cat.stream("R_kept").schema == cat.stream("R").schema
        assert cat.stream("R_dropped_syn").schema == SYNOPSIS_STREAM_SCHEMA
        assert cat.stream("R_kept").is_auxiliary
        assert cat.stream("R_kept").source_stream == "R"
        assert [d.name for d in cat.user_streams()] == ["R"]

    def test_synopsis_stream_schema_shape(self):
        # Matches the paper: CREATE STREAM R_dropped_syn(syn Synopsis,
        # earliest Timestamp, latest Timestamp)
        assert SYNOPSIS_STREAM_SCHEMA.names == ("syn", "earliest", "latest")
        assert SYNOPSIS_STREAM_SCHEMA.column("syn").type is ColumnType.SYNOPSIS


class TestUDFRegistry:
    def test_register_and_call(self):
        reg = UDFRegistry()
        reg.register_function("inc", lambda x: x + 1, ("INT",), "INT")
        assert reg.function("INC")(1) == 2
        assert reg.has_function("inc")
        assert "inc" in reg
        assert reg["inc"](2) == 3

    def test_duplicate_function(self):
        reg = UDFRegistry()
        reg.register_function("f", lambda: 1)
        with pytest.raises(UDFError):
            reg.register_function("F", lambda: 2)
        reg.register_function("f", lambda: 3, replace=True)
        assert reg.function("f")() == 3

    def test_unknown_function(self):
        with pytest.raises(UDFError):
            UDFRegistry().function("nope")

    def test_signature_and_ddl(self):
        reg = UDFRegistry()
        reg.register_function("equijoin", lambda *a: None,
                              ("Synopsis", "CSTRING", "Synopsis", "CSTRING"),
                              "Synopsis")
        sig = reg.signature("equijoin")
        assert sig.return_type == "Synopsis"
        ddl = reg.ddl()
        assert any("CREATE FUNCTION equijoin" in s for s in ddl)

    def test_types(self):
        reg = UDFRegistry()

        class Fake:
            pass

        reg.register_type("Synopsis", Fake)
        assert reg.type("synopsis") is Fake
        assert reg.has_type("SYNOPSIS")
        with pytest.raises(UDFError):
            reg.register_type("Synopsis", Fake)
        with pytest.raises(UDFError):
            reg.type("other")
