"""End-to-end pipeline observability: traces, metrics, hooks, determinism."""

import pytest

from repro.core.strategies import ShedStrategy
from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline
from repro.obs import Observability
from repro.obs.trace import validate_chrome_trace

PARAMS = ExperimentParams(tuples_per_window=60, n_windows=3)
SHED_PEAK = 4500.0  # well past engine_capacity: every run sheds


def run_fig9(obs=None, peak=SHED_PEAK):
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, peak, PARAMS, 0, obs=obs
    )
    return pipeline, pipeline.run(streams)


@pytest.fixture(scope="module")
def traced():
    obs = Observability(trace=True)
    pipeline, result = run_fig9(obs)
    return obs, pipeline, result


def test_observability_does_not_change_results(traced):
    _, _, instrumented = traced
    _, plain = run_fig9(obs=None)
    assert instrumented.total_arrived == plain.total_arrived
    assert instrumented.total_dropped == plain.total_dropped
    assert len(instrumented.windows) == len(plain.windows)
    for a, b in zip(instrumented.windows, plain.windows):
        assert a.merged == b.merged
        assert a.ideal == b.ideal
        assert a.arrived == b.arrived


def test_phase_spans_cover_every_window(traced):
    obs, _, result = traced
    spans = [e for e in obs.tracer.events() if e["ph"] == "X"]
    by_name = {}
    for e in spans:
        by_name.setdefault(e["name"], []).append(e)
    n = len(result.windows)
    for phase in ("exact", "shadow", "merge"):
        assert len(by_name[phase]) == n, f"one {phase} span per window"
        windows = {e["args"]["window"] for e in by_name[phase]}
        assert windows == {w.window_id for w in result.windows}
    assert by_name["drain"], "at least one drain span when tuples were polled"
    assert all(e["dur"] >= 0.0 for e in spans)


def test_window_instants_and_tuple_lifecycle(traced):
    obs, _, result = traced
    events = obs.tracer.events()
    names = {e["name"] for e in events}
    assert {"window_close", "emit"} <= names
    tuple_events = [e for e in events if e["cat"] == "tuple"]
    stages = {e["name"] for e in tuple_events}
    # At a shedding peak the full lifecycle appears: arrival, admission,
    # shed-to-synopsis, and consumption.
    assert {"ingest", "enqueue", "shed", "poll"} <= stages
    assert {e["args"]["source"] for e in tuple_events} <= set(STREAM_NAMES)
    # Every arrival got exactly one ingest and one enqueue-or-shed verdict.
    counts = {s: sum(1 for e in tuple_events if e["name"] == s) for s in stages}
    assert counts["ingest"] == result.total_arrived
    assert counts["enqueue"] + counts["shed"] == counts["ingest"]
    assert counts["shed"] == result.total_dropped


def test_chrome_export_is_valid(traced):
    obs, _, _ = traced
    events = validate_chrome_trace(obs.tracer.to_chrome())
    # The export leads with metadata (process_name + trace_epoch, the
    # cross-process clock anchor) ahead of the recorded events.
    meta = [e for e in events if e["ph"] == "M"]
    assert [e["name"] for e in meta] == ["process_name", "trace_epoch"]
    assert len(events) - len(meta) == len(obs.tracer)


def test_queue_metrics_match_run_accounting(traced):
    obs, _, result = traced
    reg = obs.registry
    offered = reg.get("triage_offered_total")
    polled = reg.get("triage_polled_total")
    drops = reg.get("triage_drops_total")
    summarized = reg.get("triage_summarized_total")
    assert offered.total() == result.total_arrived
    assert drops.total() == result.total_dropped
    assert polled.total() == result.total_kept
    # Data Triage summarizes every shed tuple into the window synopsis.
    assert summarized.total() == result.total_dropped
    assert reg.get("triage_shed_bytes_total").total() > 0
    decisions = reg.get("triage_policy_decisions_total")
    assert decisions.total() == result.total_dropped
    # Depth histogram sampled once per arrival.
    assert reg.get("triage_queue_depth").count(stream=STREAM_NAMES[0]) > 0


def test_phase_seconds_recorded_per_window(traced):
    obs, _, result = traced
    assert set(obs.phase_seconds) == {w.window_id for w in result.windows}
    for phases in obs.phase_seconds.values():
        assert {"exact", "shadow", "merge", "ideal"} <= set(phases)
    assert obs.run_phase_seconds["drain"] >= 0.0
    hist = obs.registry.get("pipeline_phase_seconds")
    assert hist.count(phase="exact") == len(result.windows)


def test_window_hooks_see_outcomes():
    obs = Observability()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, SHED_PEAK, PARAMS, 0, obs=obs
    )
    seen = []
    pipeline.add_window_hook(lambda outcome: seen.append(outcome.window_id))
    result = pipeline.run(streams)
    assert seen == [w.window_id for w in result.windows]


def test_raising_window_hook_is_counted_not_fatal():
    obs = Observability()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, SHED_PEAK, PARAMS, 0, obs=obs
    )

    def bad_hook(outcome):
        raise RuntimeError("boom")

    good = []
    pipeline.add_window_hook(bad_hook)
    pipeline.add_window_hook(lambda outcome: good.append(outcome.window_id))
    result = pipeline.run(streams)  # must not raise
    assert len(result.windows) == len(good)  # later hooks still ran
    errors = obs.registry.get("obs_hook_errors_total")
    assert errors.value(site="window_hook") == len(result.windows)


def test_uninstrumented_pipeline_has_no_obs_state():
    pipeline, result = run_fig9(obs=None)
    assert pipeline.obs is None
    assert result.total_arrived > 0
