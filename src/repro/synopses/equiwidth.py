"""Dense equi-width grid histogram (numpy-backed).

A dense counterpart to :class:`~repro.synopses.sparse_hist.SparseCubicHistogram`:
the full grid is materialized as an ndarray, so unions are array adds and
equijoins are tensor contractions.  Dense storage pays off when the domain is
small and densely populated (the paper's 1–100 attribute domains); the
sparse histogram wins when buckets are mostly empty.  Used by the synopsis
ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.synopses.base import (
    Dimension,
    Synopsis,
    SynopsisError,
    SynopsisFactory,
    require_same_dimensions,
)


class DenseGridHistogram(Synopsis):
    """Dense ndarray histogram with equal-width bins per dimension."""

    def __init__(self, dimensions: Sequence[Dimension], bin_width: int = 5) -> None:
        if bin_width < 1:
            raise SynopsisError(f"bin width must be >= 1, got {bin_width}")
        self.dimensions = tuple(dimensions)
        self.bin_width = bin_width
        shape = tuple(
            -(-d.n_values // bin_width) for d in self.dimensions
        )  # ceil division
        self._grid = np.zeros(shape, dtype=np.float64)

    # ------------------------------------------------------------------
    def _bin(self, dim_idx: int, value: float) -> int:
        d = self.dimensions[dim_idx]
        return int((value - d.lo) // self.bin_width)

    def _bin_n_values(self, dim_idx: int, b: int) -> int:
        d = self.dimensions[dim_idx]
        lo = d.lo + b * self.bin_width
        return min(d.hi, lo + self.bin_width - 1) - lo + 1

    def _bin_value_range(self, dim_idx: int, b: int) -> tuple[int, int]:
        d = self.dimensions[dim_idx]
        lo = d.lo + b * self.bin_width
        return lo, min(d.hi, lo + self.bin_width - 1)

    def _vals_per_bin(self, dim_idx: int) -> np.ndarray:
        n_bins = self._grid.shape[dim_idx]
        return np.array(
            [self._bin_n_values(dim_idx, b) for b in range(n_bins)], dtype=np.float64
        )

    # ------------------------------------------------------------------
    # Synopsis interface
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[float], weight: float = 1.0) -> None:
        self._check_value(values)
        idx = tuple(self._bin(i, v) for i, v in enumerate(values))
        self._grid[idx] += weight

    def insert_many(self, rows) -> None:
        rows = list(rows)
        if not rows:
            return
        arr = np.asarray(rows, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[1] != len(self.dimensions):
            raise SynopsisError(
                f"row arity {arr.shape[1]} != {len(self.dimensions)} dimensions"
            )
        los = np.array([d.lo for d in self.dimensions])
        his = np.array([d.hi for d in self.dimensions])
        if ((arr < los) | (arr > his)).any():
            raise SynopsisError("value outside dimension domain")
        bins = ((arr - los) // self.bin_width).astype(np.intp)
        np.add.at(self._grid, tuple(bins[:, i] for i in range(bins.shape[1])), 1.0)

    def total(self) -> float:
        return float(self._grid.sum())

    def project(self, dims: Sequence[str]) -> "DenseGridHistogram":
        keep = [self.dim_index(d) for d in dims]
        out = DenseGridHistogram([self.dimensions[i] for i in keep], self.bin_width)
        drop = tuple(i for i in range(len(self.dimensions)) if i not in keep)
        reduced = self._grid.sum(axis=drop) if drop else self._grid.copy()
        # ``sum`` keeps remaining axes in original order; reorder to ``keep``.
        kept_sorted = [i for i in range(len(self.dimensions)) if i in keep]
        perm = [kept_sorted.index(i) for i in keep]
        out._grid = np.transpose(reduced, perm).copy()
        return out

    def union_all(self, other: Synopsis) -> "DenseGridHistogram":
        if not isinstance(other, DenseGridHistogram):
            raise SynopsisError(
                f"cannot union DenseGridHistogram with {type(other).__name__}"
            )
        require_same_dimensions(self, other)
        if other.bin_width != self.bin_width:
            raise SynopsisError("bin width mismatch")
        out = DenseGridHistogram(self.dimensions, self.bin_width)
        out._grid = self._grid + other._grid
        return out

    def equijoin(
        self, other: Synopsis, self_dim: str, other_dim: str
    ) -> "DenseGridHistogram":
        """Tensor-contraction equijoin: per shared join bin, mass a·b/n."""
        if not isinstance(other, DenseGridHistogram):
            raise SynopsisError(
                f"cannot join DenseGridHistogram with {type(other).__name__}"
            )
        if other.bin_width != self.bin_width:
            raise SynopsisError("bin width mismatch")
        si = self.dim_index(self_dim)
        oi = other.dim_index(other_dim)
        sd, od = self.dimensions[si], other.dimensions[oi]
        if sd.lo != od.lo:
            raise SynopsisError(
                "join dimensions misaligned: dense-grid joins require a shared origin"
            )
        out_dims = list(self.dimensions)
        other_keep = [i for i in range(len(other.dimensions)) if i != oi]
        taken = {d.name.lower() for d in out_dims}
        for i in other_keep:
            d = other.dimensions[i]
            name = d.name
            while name.lower() in taken:
                name += "_r"
            taken.add(name.lower())
            out_dims.append(d.renamed(name))
        out = DenseGridHistogram(out_dims, self.bin_width)

        nj = min(self._grid.shape[si], other._grid.shape[oi])
        # A: (..., j) with join axis last; B: (j, ...) with join axis first.
        a = np.moveaxis(self._grid, si, -1)[..., :nj]
        b = np.moveaxis(other._grid, oi, 0)[:nj, ...]
        # Per-value overlap of the shared join bin across both domains.
        n_vals = np.array(
            [
                max(
                    min(self._bin_value_range(si, j)[1], other._bin_value_range(oi, j)[1])
                    - max(
                        self._bin_value_range(si, j)[0],
                        other._bin_value_range(oi, j)[0],
                    )
                    + 1,
                    0,
                )
                for j in range(nj)
            ],
            dtype=np.float64,
        )
        safe = np.where(n_vals > 0, n_vals, 1.0)
        a_shape = a.shape[:-1]
        b_shape = b.shape[1:]
        joined = np.einsum(
            "aj,jb->ajb", a.reshape(-1, nj), b.reshape(nj, -1)
        ) / safe[None, :, None]
        joined *= (n_vals > 0)[None, :, None]
        joined = joined.reshape(a_shape + (nj,) + b_shape)
        # Axes now: self-minus-join..., join, other-minus-join...; move the
        # join axis back to position ``si``.
        joined = np.moveaxis(joined, len(a_shape), si)
        # Pad if the output grid expects more join bins than nj (grids match
        # because out_dims reuse self's join dimension).
        if joined.shape != out._grid.shape:
            slices = tuple(slice(0, s) for s in joined.shape)
            out._grid[slices] = joined
        else:
            out._grid = joined
        return out

    def select_range(self, dim: str, lo: int, hi: int) -> "DenseGridHistogram":
        di = self.dim_index(dim)
        out = DenseGridHistogram(self.dimensions, self.bin_width)
        n_bins = self._grid.shape[di]
        frac = np.zeros(n_bins)
        for b in range(n_bins):
            b_lo, b_hi = self._bin_value_range(di, b)
            overlap = min(hi, b_hi) - max(lo, b_lo) + 1
            if overlap > 0:
                frac[b] = overlap / (b_hi - b_lo + 1)
        shape = [1] * self._grid.ndim
        shape[di] = n_bins
        out._grid = self._grid * frac.reshape(shape)
        return out

    def group_counts(self, dim: str) -> dict[int, float]:
        di = self.dim_index(dim)
        axes = tuple(i for i in range(self._grid.ndim) if i != di)
        marginal = self._grid.sum(axis=axes) if axes else self._grid
        out: dict[int, float] = {}
        for b, mass in enumerate(marginal):
            if mass == 0:
                continue
            b_lo, b_hi = self._bin_value_range(di, b)
            share = float(mass) / (b_hi - b_lo + 1)
            for v in range(b_lo, b_hi + 1):
                out[v] = out.get(v, 0.0) + share
        return out

    def scale(self, factor: float) -> "DenseGridHistogram":
        out = DenseGridHistogram(self.dimensions, self.bin_width)
        out._grid = self._grid * factor
        return out

    def storage_size(self) -> int:
        return int(self._grid.size)

    def empty_like(self) -> "DenseGridHistogram":
        return DenseGridHistogram(self.dimensions, self.bin_width)


class DenseGridFactory(SynopsisFactory):
    """Factory for :class:`DenseGridHistogram`."""

    def __init__(self, bin_width: int = 5) -> None:
        self.bin_width = bin_width

    def create(self, dimensions: Sequence[Dimension]) -> DenseGridHistogram:
        return DenseGridHistogram(dimensions, self.bin_width)

    @property
    def name(self) -> str:
        return f"dense_grid(w={self.bin_width})"
