"""Session-layer tests: token buckets, admission, slow-consumer eviction."""

import asyncio

import pytest

from repro.service.session import AdmissionError, SessionRegistry, TokenBucket


class TestTokenBucket:
    def test_unlimited_when_rate_none(self):
        bucket = TokenBucket(rate=None, burst=1.0)
        assert bucket.try_consume(10_000, now=0.0)

    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert bucket.try_consume(20, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert bucket.try_consume(20, now=0.0)
        assert not bucket.try_consume(5, now=0.0)
        assert bucket.try_consume(5, now=0.5)  # 0.5s * 10/s = 5 tokens back
        assert not bucket.try_consume(1, now=0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=10.0)
        assert bucket.try_consume(10, now=0.0)
        assert bucket.try_consume(10, now=1000.0)
        assert not bucket.try_consume(11, now=1000.0)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class _FakeWriter:
    """A StreamWriter stand-in whose drain can be made to hang forever."""

    def __init__(self, stall: bool = False):
        self.stall = stall
        self.data = b""
        self.closed = False

    def write(self, data: bytes) -> None:
        self.data += data

    async def drain(self) -> None:
        if self.stall:
            await asyncio.Event().wait()  # never set: consumer never reads

    def close(self) -> None:
        self.closed = True

    def get_extra_info(self, name):
        return ("fake", 0)


class TestRegistry:
    def test_admission_limit(self):
        async def scenario():
            registry = SessionRegistry(max_sessions=2)
            registry.admit(_FakeWriter())
            registry.admit(_FakeWriter())
            with pytest.raises(AdmissionError) as exc:
                registry.admit(_FakeWriter())
            assert exc.value.code == "too-many-sessions"
            await registry.close_all()

        asyncio.run(scenario())

    def test_remove_frees_a_slot(self):
        async def scenario():
            registry = SessionRegistry(max_sessions=1)
            first = registry.admit(_FakeWriter())
            registry.remove(first)
            await first.close()
            second = registry.admit(_FakeWriter())  # no AdmissionError
            await registry.close_all()
            assert second.id != first.id

        asyncio.run(scenario())

    def test_broadcast_reaches_only_subscribers(self):
        async def scenario():
            registry = SessionRegistry(max_sessions=4)
            sub = registry.admit(_FakeWriter())
            sub.subscribed = True
            other = registry.admit(_FakeWriter())
            evicted = await registry.broadcast({"type": "OK", "n": 1})
            assert evicted == []
            await asyncio.sleep(0)  # let sender tasks run
            await registry.close_all()
            assert b'"n":1' in sub.writer.data
            assert other.writer.data == b""

        asyncio.run(scenario())

    def test_slow_consumer_evicted(self):
        async def scenario():
            registry = SessionRegistry(max_sessions=4, send_queue_frames=2)
            slow = registry.admit(_FakeWriter(stall=True))
            slow.subscribed = True
            healthy = registry.admit(_FakeWriter())
            healthy.subscribed = True
            evicted = []
            # Queue depth 2 + one frame stuck in the stalled sender: the
            # fourth broadcast must evict the slow session.
            for i in range(6):
                evicted += await registry.broadcast({"type": "OK", "n": i})
                await asyncio.sleep(0)
            assert evicted == [slow]
            assert registry.evictions == 1
            assert slow.writer.closed
            assert healthy.id in registry.sessions
            await registry.close_all()

        asyncio.run(scenario())
