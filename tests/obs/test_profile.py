"""EXPLAIN ANALYZE profiling: row counts must equal actual cardinalities."""

import pytest

from repro.algebra import Multiset
from repro.engine import QueryExecutor
from repro.engine.explain import explain_analyze
from repro.obs.profile import profile_execution, render_profile
from repro.sql import Binder, parse_statement

INPUTS = {
    "r": Multiset([(1,), (1,), (2,), (5,)]),
    "s": Multiset([(1, 10), (2, 20), (3, 30)]),
    "t": Multiset([(10,), (20,), (20,)]),
}

JOIN_AGG = (
    "SELECT a, COUNT(*) AS n FROM R, S, T "
    "WHERE R.a = S.b AND S.c = T.d GROUP BY a"
)


def bind(catalog, sql):
    return Binder(catalog).bind(parse_statement(sql))


@pytest.fixture(params=[True, False], ids=["compiled", "interpreted"])
def executor(request, paper_catalog):
    return QueryExecutor(paper_catalog, compiled=request.param)


def test_profile_result_matches_plain_execution(executor, paper_catalog):
    bound = bind(paper_catalog, JOIN_AGG)
    plain = executor.execute(bound, INPUTS)
    report = profile_execution(executor, bound, INPUTS)
    assert report.result.rows == plain.rows
    assert report.result.schema.names == plain.schema.names
    assert report.mode == ("compiled" if executor.compiled else "interpreted")


def test_operator_rows_equal_actual_cardinalities(executor, paper_catalog):
    bound = bind(paper_catalog, JOIN_AGG)
    report = profile_execution(executor, bound, INPUTS)
    root = report.root

    # The aggregate emits one row per group: a=1 (2 matches), a=2 (2).
    agg = root.find("HashAggregate")
    assert agg is not None
    assert agg.rows_out == 2
    assert agg.invocations == 1

    # The join tree produces the 4 matching triples; scans emit their
    # full inputs (4 + 3 + 3 rows across the leaves).
    joins = _collect(root, "HashJoin") + _collect(root, "NestedLoopJoin")
    assert joins, "expected at least one join node"
    assert joins[0].rows_out == 4  # topmost join = final join cardinality
    scans = _collect(root, "Scan")
    assert len(scans) == 3
    assert sorted(s.rows_out for s in scans) == [3, 3, 4]

    # Inclusive timing: the root's time covers its subtree.
    assert root.seconds >= max((c.seconds for c in root.children), default=0.0)
    assert all(p.self_seconds >= 0.0 for p in [root, agg, *scans])


def _collect(prof, name):
    out = []
    if prof.name == name:
        out.append(prof)
    for c in prof.children:
        out.extend(_collect(c, name))
    return out


def test_profile_single_stream_projection(executor, paper_catalog):
    bound = bind(paper_catalog, "SELECT c FROM S")
    report = profile_execution(executor, bound, INPUTS)
    assert len(report.result.rows) == 3
    assert report.root.rows_out == 3
    scan = report.root.find("Scan")
    assert scan is not None and scan.rows_out == 3


def test_profile_union_all(executor, paper_catalog):
    bound = bind(paper_catalog, "(SELECT a FROM R) UNION ALL (SELECT d FROM T)")
    report = profile_execution(executor, bound, INPUTS)
    assert len(report.result.rows) == 7
    union = report.root.find("UnionAll")
    assert union is not None
    assert union.rows_out == 7
    # Each arm's subtree reports its own cardinality.
    arm_rows = sorted(c.rows_out for c in union.children)
    assert arm_rows == [3, 4]


def test_profile_order_by_limit(executor, paper_catalog):
    bound = bind(paper_catalog, "SELECT c FROM S ORDER BY c DESC LIMIT 2")
    report = profile_execution(executor, bound, INPUTS)
    assert report.result.ordered_rows == [(30,), (20,)]


def test_compiled_plan_cache_not_mutated(paper_catalog):
    executor = QueryExecutor(paper_catalog, compiled=True)
    bound = bind(paper_catalog, JOIN_AGG)
    cached = executor._compiled_plan(bound)
    before = cached.root
    profile_execution(executor, bound, INPUTS)
    # The cached tree must be untouched: same root object, and a plain
    # execution afterwards still works and agrees.
    assert executor._compiled_plan(bound) is cached
    assert cached.root is before
    assert executor.execute(bound, INPUTS).rows == Multiset([(1, 2), (2, 2)])


def test_render_profile_shape(executor, paper_catalog):
    bound = bind(paper_catalog, JOIN_AGG)
    text = render_profile(profile_execution(executor, bound, INPUTS))
    mode = "compiled" if executor.compiled else "interpreted"
    assert text.startswith(f"EXPLAIN ANALYZE ({mode})")
    assert "HashAggregate  (rows=2 loops=1" in text
    assert text.rstrip().endswith("row(s) in " + text.rstrip().rsplit("in ", 1)[1])
    assert "Execution: 2 row(s)" in text


def test_explain_analyze_entry_point(executor, paper_catalog):
    bound = bind(paper_catalog, JOIN_AGG)
    text = explain_analyze(executor, bound, INPUTS)
    assert "EXPLAIN ANALYZE" in text
    assert "rows=2" in text


def _cardinalities(report):
    """Flatten a profile tree into sorted (operator, rows_out, loops)."""
    out = []

    def walk(node):
        out.append((node.name, node.rows_out, node.invocations))
        for child in node.children:
            walk(child)

    walk(report.root)
    return sorted(out)


def test_cardinality_parity_interpreted_compiled_vectorized(
    paper_catalog, monkeypatch
):
    """ISSUE 9 satellite: row accounting agrees across execution modes.

    The interpreted executor, the compiled/batched executor, and the
    compiled executor with vectorization forcibly disabled must all report
    the same per-operator cardinalities — the counting proxies see rows
    through ``batch()`` exactly as through tuple-at-a-time ``__call__``.
    """
    bound = bind(paper_catalog, JOIN_AGG)

    interpreted = profile_execution(
        QueryExecutor(paper_catalog, compiled=False), bound, INPUTS
    )
    compiled = profile_execution(
        QueryExecutor(paper_catalog, compiled=True), bound, INPUTS
    )

    import repro.perf.compile as compile_mod

    monkeypatch.setattr(compile_mod, "_try_vector_pred", lambda *a: None)
    monkeypatch.setattr(compile_mod, "_try_vector_tuple", lambda *a: None)
    scalar = profile_execution(
        QueryExecutor(paper_catalog, compiled=True), bound, INPUTS
    )

    assert interpreted.result.rows == compiled.result.rows == scalar.result.rows
    # Interpreted and compiled plans may shape the tree differently, but
    # the same operators must count the same rows.
    assert _cardinalities(compiled) == _cardinalities(scalar)
    def shared(report):
        return [
            (name, rows)
            for name, rows, _ in _cardinalities(report)
            if name in ("HashAggregate", "Scan")
        ]

    assert shared(interpreted) == shared(compiled) == shared(scalar)
