"""The ``repro bench`` regression harness.

Five curated suites cover the hot paths this repo's performance story rests
on; each is timed over several repetitions with fixed seeds so the numbers
are comparable run-to-run and PR-to-PR:

* ``pipeline_fig9_bursty`` — the Figure 9 workload end to end: pre-generated
  bursty streams through ``DataTriagePipeline.run`` (triage queues, heap
  drain, synopsis build, window evaluation).  Reported in tuples/second.
* ``pipeline_fig9_traced`` — the identical workload with observability
  attached (metrics + tracing + tuple-lifecycle events); the delta against
  ``pipeline_fig9_bursty`` is the instrumentation overhead.
* ``pipeline_fig9_profiled`` — the identical workload with the continuous
  sampling profiler attached at 97 Hz; the delta against
  ``pipeline_fig9_bursty`` is the profiling overhead (budget: ≤5%).
* ``executor_micro`` — the Figure 6 "original query" microbenchmark: one
  3-way join + aggregate execution over static tables, through the compiled
  query plan.  Reported in executions/second.
* ``synopsis_join`` — the Figure 6 "rewritten query" path: build sparse
  cubic histograms from the substream tables and evaluate the shadow plan
  (synopsis equijoins + Q-).  Reported in evaluations/second.
* ``service_ingest`` — the network publish hot path:
  :meth:`TriageServer.ingest_rows` over pre-built row batches (schema
  validation, window accounting, triage offer).  Reported in rows/second.
* ``service_ingest_shards2`` / ``service_ingest_shards4`` — the same batches
  through a :class:`~repro.service.shard.ShardedDataPlane` with 2 / 4 worker
  processes, pipelined (``submit_ingest`` + ``flush_ingest``), so the number
  includes the pickle/pipe cost the sharded server pays per batch.
* ``synopsis_union`` — ``SparseCubicHistogram.union_all`` over populated
  histograms: the per-window synopsis merge the sharded close path leans on.

``compare_results`` gates a fresh document against a committed baseline
(``repro bench --compare BENCH_pipeline.json --max-regression 10``): any
shared suite whose ``ops_per_sec`` fell more than the threshold fails CI.

Results are written as ``BENCH_pipeline.json`` with the stable schema
``repro-bench/v1``: one object per suite holding ``ops_per_sec``,
``p50_ms``, ``p95_ms``, ``reps``, ``units_per_rep``, and ``unit``, plus the
git revision the numbers belong to.  ``quick=True`` shrinks reps and input
sizes for CI smoke runs; the schema is identical, only the noise floor
differs.
"""

from __future__ import annotations

import json
import random
import statistics
import subprocess
import time
from pathlib import Path

#: Stable identifier for the output format; bump only on breaking changes.
BENCH_SCHEMA = "repro-bench/v1"

#: Repo root when running from a checkout (bench.py -> perf -> repro -> src -> root).
REPO_ROOT = Path(__file__).resolve().parents[3]


def git_revision() -> str:
    """The checkout's HEAD revision, or "unknown" outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:  # noqa: BLE001 - bench must run anywhere
        return "unknown"


def _time_suite(fn, reps: int, units_per_rep: int, unit: str) -> dict:
    """Run ``fn`` ``reps`` times; report median-based throughput + latency."""
    durations = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - t0)
    durations.sort()
    p50 = statistics.median(durations)
    p95 = durations[min(len(durations) - 1, round(0.95 * (len(durations) - 1)))]
    return {
        "ops_per_sec": round(units_per_rep / p50, 2) if p50 > 0 else None,
        "p50_ms": round(p50 * 1e3, 3),
        "p95_ms": round(p95 * 1e3, 3),
        "reps": reps,
        "units_per_rep": units_per_rep,
        "unit": unit,
    }


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------
def bench_pipeline(quick: bool, drop_policy: str | None = None) -> dict:
    """Figure 9 bursty workload through ``DataTriagePipeline.run``."""
    from repro.core.policies import make_policy
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline

    params = ExperimentParams()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0
    )
    if drop_policy is not None:
        pipeline.config.policy = make_policy(drop_policy)
    pipeline.run(streams)  # warm the plan cache + window-id cache
    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    return _time_suite(
        lambda: pipeline.run(streams),
        reps=5 if quick else 15,
        units_per_rep=tuples,
        unit="tuples",
    )


def bench_pipeline_traced(quick: bool) -> dict:
    """The same Figure 9 workload with full observability attached.

    Byte-identical streams and config to ``pipeline_fig9_bursty`` (both go
    through :func:`repro.experiments.bursty_pipeline` with the same seed),
    so the gap between the two suites *is* the cost of tracing + metrics —
    the observability overhead budget tracked in ``BENCH_pipeline.json``.
    """
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline
    from repro.obs import Observability

    params = ExperimentParams()
    obs = Observability(trace=True, trace_capacity=65536)
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0, obs=obs
    )
    pipeline.run(streams)  # warm the plan cache + window-id cache

    def one_rep() -> None:
        obs.reset()  # fresh trace buffer + phase store, as a real run has
        pipeline.run(streams)

    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    return _time_suite(
        one_rep,
        reps=5 if quick else 15,
        units_per_rep=tuples,
        unit="tuples",
    )


def bench_pipeline_audited(quick: bool) -> dict:
    """The Figure 9 workload with the shed-provenance audit ledger attached.

    Byte-identical streams and config to ``pipeline_fig9_bursty`` (same
    :func:`repro.experiments.bursty_pipeline` seed), so the gap between the
    two suites *is* the cost of recording every drop decision in the
    :class:`repro.obs.audit.DropLedger` — the audit overhead budget
    (acceptance: within 10% of the un-audited run).
    """
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline
    from repro.obs.audit import DropLedger

    params = ExperimentParams()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0
    )
    pipeline.audit = DropLedger(seed=0)
    pipeline.run(streams)  # warm the plan cache + window-id cache

    def one_rep() -> None:
        pipeline.audit = DropLedger(seed=0)  # fresh ledger, as a real run has
        pipeline.run(streams)

    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    return _time_suite(
        one_rep,
        reps=5 if quick else 15,
        units_per_rep=tuples,
        unit="tuples",
    )


def bench_pipeline_profiled(quick: bool) -> dict:
    """The Figure 9 workload with the sampling profiler attached.

    Byte-identical streams and config to ``pipeline_fig9_bursty`` (same
    :func:`repro.experiments.bursty_pipeline` seed); the profiler samples
    from its own daemon thread at the default 97 Hz, so the gap between
    the two suites *is* the continuous-profiling overhead budget
    (acceptance: within 5% of the unprofiled run).
    """
    from repro.core.strategies import ShedStrategy
    from repro.experiments import STREAM_NAMES, ExperimentParams, bursty_pipeline
    from repro.obs.prof import SamplingProfiler

    params = ExperimentParams()
    pipeline, streams = bursty_pipeline(
        ShedStrategy.DATA_TRIAGE, 2000.0, params, 0
    )
    pipeline.prof = SamplingProfiler(hz=97.0)
    pipeline.run(streams)  # warm the plan cache; run() starts the sampler
    tuples = len(STREAM_NAMES) * params.tuples_per_stream
    try:
        return _time_suite(
            lambda: pipeline.run(streams),
            reps=5 if quick else 15,
            units_per_rep=tuples,
            unit="tuples",
        )
    finally:
        pipeline.prof.stop()


def bench_executor(quick: bool) -> dict:
    """Figure 6 original query: 3-way join + aggregate over static tables."""
    from repro.experiments import microbench_original, microbench_setup

    setup = microbench_setup(rows_per_table=300 if quick else 1000, seed=7)
    microbench_original(setup)  # warm the plan cache
    return _time_suite(
        lambda: microbench_original(setup),
        reps=3 if quick else 9,
        units_per_rep=1,
        unit="executions",
    )


def bench_synopsis(quick: bool) -> dict:
    """Figure 6 rewritten query: histogram build + shadow-plan evaluation."""
    from repro.experiments import (
        fast_synopsis_factory,
        microbench_rewritten,
        microbench_setup,
    )

    setup = microbench_setup(rows_per_table=300 if quick else 1000, seed=7)
    factory = fast_synopsis_factory()
    return _time_suite(
        lambda: microbench_rewritten(setup, factory),
        reps=9 if quick else 21,
        units_per_rep=1,
        unit="evaluations",
    )


def bench_service_ingest(quick: bool) -> dict:
    """Publish hot path: ``TriageServer.ingest_rows`` over pre-built batches."""
    from repro.core.strategies import PipelineConfig
    from repro.engine.window import WindowSpec
    from repro.experiments import PAPER_QUERY, STREAM_NAMES, paper_catalog
    from repro.service import ServiceConfig, TriageServer
    from repro.sources.generators import paper_row_generators

    rows_per_stream = 500 if quick else 2000
    batch = 500
    rng = random.Random(13)
    gens = paper_row_generators()
    rows = {
        name: [gens[name].draw(rng) for _ in range(rows_per_stream)]
        for name in STREAM_NAMES
    }
    timestamps = [i * 0.01 for i in range(rows_per_stream)]
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=200,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=lambda: 0.0)
    catalog = paper_catalog()

    def one_rep() -> None:
        # A fresh server per rep keeps queue/window state identical across
        # reps; its construction cost (~1ms) is noise against the ingest.
        server = TriageServer(catalog, PAPER_QUERY, config, service)
        for name in STREAM_NAMES:
            for lo in range(0, rows_per_stream, batch):
                server.ingest_rows(
                    name,
                    rows[name][lo : lo + batch],
                    timestamps=timestamps[lo : lo + batch],
                    now=0.0,
                )

    return _time_suite(
        one_rep,
        reps=5 if quick else 11,
        units_per_rep=len(STREAM_NAMES) * rows_per_stream,
        unit="rows",
    )


def bench_columnar_ingest(quick: bool) -> dict:
    """The service_ingest batches through the columnar interior.

    Identical rows, timestamps, and server config to ``service_ingest``;
    the only difference is the encoding — batches are pivoted to column
    lists *outside* the timed region and published via
    ``ingest_rows(..., columnar=True)``, so the delta against
    ``service_ingest`` is the row-pivot + per-row validation cost the
    ColumnBatch path eliminates.
    """
    from repro.core.strategies import PipelineConfig
    from repro.engine.window import WindowSpec
    from repro.experiments import PAPER_QUERY, STREAM_NAMES, paper_catalog
    from repro.service import ServiceConfig, TriageServer
    from repro.sources.generators import paper_row_generators

    rows_per_stream = 500 if quick else 2000
    batch = 500
    rng = random.Random(13)
    gens = paper_row_generators()
    cols_by_batch = {}
    for name in STREAM_NAMES:
        rows = [gens[name].draw(rng) for _ in range(rows_per_stream)]
        cols_by_batch[name] = [
            [list(c) for c in zip(*rows[lo : lo + batch])]
            for lo in range(0, rows_per_stream, batch)
        ]
    timestamps = [i * 0.01 for i in range(rows_per_stream)]
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=200,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=lambda: 0.0)
    catalog = paper_catalog()

    def one_rep() -> None:
        server = TriageServer(catalog, PAPER_QUERY, config, service)
        for name in STREAM_NAMES:
            for b, cols in enumerate(cols_by_batch[name]):
                lo = b * batch
                server.ingest_rows(
                    name,
                    cols,
                    timestamps=timestamps[lo : lo + batch],
                    now=0.0,
                    columnar=True,
                )

    return _time_suite(
        one_rep,
        reps=5 if quick else 11,
        units_per_rep=len(STREAM_NAMES) * rows_per_stream,
        unit="rows",
    )


def bench_executor_vectorized(quick: bool) -> dict:
    """Vectorized expression kernels: filter + projection over one scan.

    A compiled ``SELECT`` whose batch path runs entirely on the
    :mod:`repro.perf.vector` kernels (index-vector filter, column-wise
    projection) over a large static table — the per-expression vectorization
    win, isolated from join/aggregate effects (those are ``executor_micro``'s
    territory).
    """
    from repro.algebra import Multiset
    from repro.experiments import paper_catalog
    from repro.perf.compile import compile_query
    from repro.sql import Binder, parse_statement

    n_rows = 10_000 if quick else 50_000
    rng = random.Random(19)
    inputs = {
        "s": Multiset(
            [(rng.randint(1, 100), rng.randint(1, 100)) for _ in range(n_rows)]
        ),
        "r": Multiset(),
        "t": Multiset(),
    }
    sql = (
        "SELECT b + c AS bc, b * 2 - 1 AS b2, c FROM S "
        "WHERE b > 20 AND c <= 90"
    )
    bound = Binder(paper_catalog()).bind(parse_statement(sql))
    cq = compile_query(bound, None)
    cq.execute(inputs)  # warm
    return _time_suite(
        lambda: cq.execute(inputs),
        reps=5 if quick else 11,
        units_per_rep=n_rows,
        unit="rows",
    )


def bench_service_ingest_sharded(quick: bool, shards: int) -> dict:
    """The service_ingest batches through an N-shard worker data plane.

    The plane (worker processes + pipes) is built once outside the timed
    region — it is server-lifetime state — and ``reset`` between reps;
    each rep pipelines every batch (``submit_ingest``) before one
    ``flush_ingest`` barrier, which is exactly how the sharded PUBLISH
    path amortizes pipe round trips.
    """
    from repro.core.pipeline import DataTriagePipeline
    from repro.core.strategies import PipelineConfig
    from repro.engine.window import WindowSpec
    from repro.experiments import PAPER_QUERY, STREAM_NAMES, paper_catalog
    from repro.service.shard import ShardedDataPlane

    rows_per_stream = 500 if quick else 2000
    batch = 500
    rng = random.Random(13)
    from repro.sources.generators import paper_row_generators

    gens = paper_row_generators()
    rows = {
        name: [gens[name].draw(rng) for _ in range(rows_per_stream)]
        for name in STREAM_NAMES
    }
    timestamps = [i * 0.01 for i in range(rows_per_stream)]
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=200,
        compute_ideal=False,
    )
    pipeline = DataTriagePipeline(paper_catalog(), PAPER_QUERY, config)
    plane = ShardedDataPlane(pipeline, shards)

    def one_rep() -> None:
        plane.reset()
        for name in STREAM_NAMES:
            for lo in range(0, rows_per_stream, batch):
                plane.submit_ingest(
                    name,
                    rows[name][lo : lo + batch],
                    timestamps[lo : lo + batch],
                    0.0,
                )
        plane.flush_ingest()

    try:
        one_rep()  # warm the workers (first batch pays import/unpickle)
        return _time_suite(
            one_rep,
            reps=5 if quick else 11,
            units_per_rep=len(STREAM_NAMES) * rows_per_stream,
            unit="rows",
        )
    finally:
        plane.close()


def bench_synopsis_union(quick: bool) -> dict:
    """``SparseCubicHistogram.union_all`` over pre-populated histograms.

    This is the merge the sharded window close performs per (source,
    window) synopsis pair; sized to a heavily-shed window (every bucket
    populated on one side, half on the other).
    """
    from repro.synopses.base import Dimension
    from repro.synopses.sparse_hist import SparseCubicHistogram

    dims = [Dimension("a", 0, 100), Dimension("b", 0, 100)]
    n_inserts = 2_000 if quick else 10_000
    rng = random.Random(29)
    left = SparseCubicHistogram(dims, bucket_width=5)
    right = SparseCubicHistogram(dims, bucket_width=5)
    for _ in range(n_inserts):
        left.insert((rng.randint(0, 100), rng.randint(0, 100)))
        if rng.random() < 0.5:
            right.insert((rng.randint(0, 100), rng.randint(0, 100)))
    unions_per_rep = 100
    return _time_suite(
        lambda: [left.union_all(right) for _ in range(unions_per_rep)],
        reps=9 if quick else 21,
        units_per_rep=unions_per_rep,
        unit="unions",
    )


def bench_cep_pattern(quick: bool, drop_policy: str | None = None) -> dict:
    """SEQ(A, B+, C) matching under bursty overload: throughput *and* recall.

    Beyond the usual throughput block, the result carries two extra keys the
    regression gate (``compare_results``) ignores but CI asserts on:
    ``recall`` and ``drop_fraction``, each a ``{policy: value}`` dict for
    ``random`` and ``pattern-utility`` (plus ``drop_policy`` if given).  The
    merged pattern queue makes the drop *count* identical across policies
    (see :mod:`repro.cep.pipeline`), so the recall gap is pure victim
    selection: the state-aware policy must beat random at the same drop
    fraction, which is the paper-lineage claim (eSPICE/pSPICE) this suite
    guards.
    """
    from repro.cep import (
        DEMO_PATTERN,
        PatternConfig,
        PatternPipeline,
        bursty_pattern_workload,
        demo_catalog,
    )
    from repro.core.policies import make_policy

    n_events = 2_000 if quick else 6_000
    events = bursty_pattern_workload(n_events=n_events, seed=0)
    catalog = demo_catalog()

    def run_with(policy_name: str):
        config = PatternConfig(policy=make_policy(policy_name))
        return PatternPipeline(catalog, DEMO_PATTERN, config).run(events)

    policies = ["random", "pattern-utility"]
    if drop_policy is not None and drop_policy not in policies:
        policies.append(drop_policy)
    recall: dict[str, float] = {}
    drop_fraction: dict[str, float] = {}
    for name in policies:
        res = run_with(name)
        recall[name] = round(res.recall, 4)
        drop_fraction[name] = round(res.drop_fraction, 4)

    timed = PatternPipeline(
        catalog,
        DEMO_PATTERN,
        PatternConfig(policy=make_policy("pattern-utility")),
    )
    timed.run(events)  # warm-up
    doc = _time_suite(
        lambda: timed.run(events),
        reps=3 if quick else 7,
        units_per_rep=n_events,
        unit="events",
    )
    doc["recall"] = recall
    doc["drop_fraction"] = drop_fraction
    return doc


SUITES = {
    "pipeline_fig9_bursty": bench_pipeline,
    "pipeline_fig9_traced": bench_pipeline_traced,
    "pipeline_fig9_audited": bench_pipeline_audited,
    "pipeline_fig9_profiled": bench_pipeline_profiled,
    "executor_micro": bench_executor,
    "synopsis_join": bench_synopsis,
    "synopsis_union": bench_synopsis_union,
    "service_ingest": bench_service_ingest,
    "columnar_ingest": bench_columnar_ingest,
    "executor_vectorized": bench_executor_vectorized,
    "service_ingest_shards2": lambda quick: bench_service_ingest_sharded(quick, 2),
    "service_ingest_shards4": lambda quick: bench_service_ingest_sharded(quick, 4),
    "cep_pattern": bench_cep_pattern,
}

#: Suites that accept a ``--drop-policy`` override as a second argument.
POLICY_AWARE_SUITES = frozenset({"pipeline_fig9_bursty", "cep_pattern"})


def run_bench_suites(
    quick: bool = False,
    suites: list[str] | None = None,
    drop_policy: str | None = None,
    profile_dir: str | Path | None = None,
) -> dict:
    """Run the curated suites; return the ``repro-bench/v1`` result document.

    ``profile_dir`` attaches a fresh sampling profiler around each suite
    and writes ``<dir>/<suite>.collapsed`` (``repro-prof/v1``) — the
    per-suite function-level sentinel ``repro bench --profile`` feeds the
    CI profile-diff gate.  The profiler samples from its own thread, so
    the timed numbers are the same suites, merely observed.
    """
    names = list(SUITES) if suites is None else list(suites)
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        raise ValueError(f"unknown bench suites: {unknown}; have {list(SUITES)}")
    if profile_dir is not None:
        from repro.obs.prof import SamplingProfiler

        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)
    results = {}
    for name in names:
        run = (
            (lambda n=name: SUITES[n](quick, drop_policy))
            if name in POLICY_AWARE_SUITES
            else (lambda n=name: SUITES[n](quick))
        )
        if profile_dir is None:
            results[name] = run()
            continue
        # 499 Hz (prime, so it cannot phase-lock with periodic work): the
        # capture exists to diff function shares, and short quick-mode
        # suites need sample density more than they need a gentle rate.
        prof = SamplingProfiler(hz=499.0, label=name)
        prof.start()
        try:
            results[name] = run()
        finally:
            prof.stop()
        (profile_dir / f"{name}.collapsed").write_text(
            prof.export_collapsed(), encoding="utf-8"
        )
    return {
        "schema": BENCH_SCHEMA,
        "git_rev": git_revision(),
        "quick": quick,
        "suites": results,
    }


def shard_metrics_snapshot(shards: int = 2) -> str:
    """Run a small sharded ingest→drain→close cycle with instruments attached
    and render the registry as Prometheus text.

    This is the per-shard metrics artifact CI uploads next to the bench
    numbers: it proves ``shard_queue_depth`` / ``shard_windows_merged_total``
    / ``shard_merge_seconds`` flow through the registry on a real sharded
    close, without needing a long-lived server in the workflow.  The cycle
    runs with the shed-provenance audit ledger attached, so the ``audit_*``
    counter family lands in the same snapshot, and with a sampling profiler
    bound to the registry, so the ``prof_*`` family does too.
    """
    from repro.core.pipeline import DataTriagePipeline
    from repro.core.strategies import PipelineConfig
    from repro.engine.window import WindowSpec
    from repro.experiments import PAPER_QUERY, STREAM_NAMES, paper_catalog
    from repro.obs.audit import DropLedger
    from repro.obs.prof import SamplingProfiler
    from repro.service.metrics import MetricsRegistry
    from repro.service.shard import ShardedDataPlane
    from repro.sources.generators import paper_row_generators

    registry = MetricsRegistry()
    config = PipelineConfig(
        window=WindowSpec(width=1.0), queue_capacity=50, compute_ideal=False
    )
    pipeline = DataTriagePipeline(paper_catalog(), PAPER_QUERY, config)
    ledger = DropLedger(seed=0, metrics=registry)
    prof = SamplingProfiler(hz=97.0, metrics=registry)
    prof.start()
    plane = ShardedDataPlane(pipeline, shards, metrics=registry, audit=ledger)
    try:
        rng = random.Random(5)
        gens = paper_row_generators()
        stamps = [i * 0.005 for i in range(200)]
        for name in STREAM_NAMES:
            batch = [gens[name].draw(rng) for _ in range(200)]
            plane.ingest(name, batch, stamps, 0.0)
        plane.advance(10.0)
        due = plane.due_windows(10.0)
        if due:
            plane.collect(due)
            plane.mark_closed(due)
        prof.stop()
        prof.export_collapsed()  # exercise prof_export_seconds_total
        return registry.render_prometheus()
    finally:
        prof.stop()
        plane.close()


def baseline_mismatch(doc: dict, baseline: dict) -> str | None:
    """One-line reason ``baseline`` cannot gate ``doc``, or None if it can.

    A baseline written under a different schema, or one sharing *no* suite
    with this run, would make the regression gate silently vacuous — the
    CLI turns the returned line into a nonzero exit instead.  A baseline
    that merely predates some newly added suites is fine: the shared
    suites still gate, and :func:`baseline_skipped` names the rest so the
    CLI can print them as a note rather than an error.
    """
    schema = baseline.get("schema")
    if schema != BENCH_SCHEMA:
        return (
            f"baseline schema {schema!r} does not match {BENCH_SCHEMA!r}; "
            f"regenerate it with `repro bench`"
        )
    base_suites = baseline.get("suites")
    if not isinstance(base_suites, dict) or not base_suites:
        return "baseline has no suite results"
    if not any(n in base_suites for n in doc.get("suites", {})):
        return (
            "baseline shares no suites with this run; "
            "regenerate it with `repro bench`"
        )
    return None


def baseline_skipped(doc: dict, baseline: dict) -> list[str]:
    """Suites this run produced that ``baseline`` predates (ungated)."""
    base_suites = baseline.get("suites")
    if not isinstance(base_suites, dict):
        return sorted(doc.get("suites", {}))
    return sorted(n for n in doc.get("suites", {}) if n not in base_suites)


def compare_results(
    doc: dict, baseline: dict, max_regression_pct: float
) -> list[str]:
    """Regressions of ``doc`` vs ``baseline`` beyond the threshold.

    Compares ``ops_per_sec`` for every suite present in both documents
    (suites only one side ran are skipped — a ``--suite`` subset or a
    baseline predating a new suite is not a failure).  Returns
    human-readable violation lines; empty means the gate passes.
    """
    violations: list[str] = []
    base_suites = baseline.get("suites", {})
    for name, result in doc.get("suites", {}).items():
        base = base_suites.get(name)
        if base is None:
            continue
        old = base.get("ops_per_sec")
        new = result.get("ops_per_sec")
        if not old or not new:
            continue
        drop_pct = (old - new) / old * 100.0
        if drop_pct > max_regression_pct:
            violations.append(
                f"{name}: {new:,.2f} {result.get('unit', 'ops')}/s is "
                f"{drop_pct:.1f}% below baseline {old:,.2f} "
                f"(threshold {max_regression_pct:g}%)"
            )
    return violations


def render_text(doc: dict) -> str:
    """A fixed-width table of the result document, for terminals and CI logs."""
    lines = [
        f"bench schema {doc['schema']}  rev {doc['git_rev'][:12]}"
        f"{'  (quick)' if doc['quick'] else ''}",
        f"{'suite':24s} {'ops/sec':>12s} {'p50 ms':>10s} {'p95 ms':>10s} unit",
    ]
    for name, r in doc["suites"].items():
        lines.append(
            f"{name:24s} {r['ops_per_sec']:>12,.2f} {r['p50_ms']:>10.2f} "
            f"{r['p95_ms']:>10.2f} {r['unit']}"
        )
    return "\n".join(lines)


def write_results(doc: dict, path: str | Path) -> Path:
    """Write the result document as pretty-printed JSON (trailing newline)."""
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
