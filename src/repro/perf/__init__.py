"""Performance layer: compiled plans, parallel evaluation, benchmarks.

The paper's premise (Section 6 / Figure 6) is that triage only wins if its
own machinery is cheap — the shedding infrastructure must respect the very
latency bound it protects.  This package keeps the hot paths honest:

* :mod:`repro.perf.compile` — code-generates bound queries into flat Python
  closures and a reusable operator tree (build once, re-bind per window).
* :mod:`repro.perf.parallel` — process-pool evaluation of independent
  windows (``PipelineConfig.parallel_windows``).
* :mod:`repro.perf.bench` — the ``repro bench`` regression harness that
  emits ``BENCH_pipeline.json`` so every PR has a throughput trajectory.
"""

from repro.perf.compile import CompileError, compile_query, compile_scalar

__all__ = [
    "BENCH_SCHEMA",
    "CompileError",
    "compile_query",
    "compile_scalar",
    "run_bench_suites",
]


def __getattr__(name):
    # Lazy: the bench suite pulls in the service/CLI stack, which plan
    # compilation (imported inside pool workers) must not pay for.
    if name in ("BENCH_SCHEMA", "run_bench_suites"):
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
