"""Tests for RMS-error scoring."""

import pytest

from repro.quality import ErrorSummary, group_errors, rms, window_rms


class TestRms:
    def test_empty(self):
        assert rms([]) == 0.0

    def test_known_value(self):
        assert rms([3.0, 4.0]) == pytest.approx((12.5) ** 0.5)

    def test_sign_insensitive(self):
        assert rms([-5.0]) == pytest.approx(5.0)


class TestGroupErrors:
    def test_matched_groups(self):
        ideal = {(1,): {"n": 10.0}, (2,): {"n": 5.0}}
        actual = {(1,): {"n": 8.0}, (2,): {"n": 6.0}}
        errs = sorted(group_errors(ideal, actual, "n"))
        assert errs == [-2.0, 1.0]

    def test_missing_group_counts_fully(self):
        ideal = {(1,): {"n": 10.0}}
        assert group_errors(ideal, {}, "n") == [-10.0]

    def test_spurious_group_counts_fully(self):
        actual = {(9,): {"n": 3.0}}
        assert group_errors({}, actual, "n") == [3.0]

    def test_none_treated_as_zero(self):
        ideal = {(1,): {"n": None}}
        actual = {(1,): {"n": 2.0}}
        assert group_errors(ideal, actual, "n") == [2.0]

    def test_window_rms(self):
        ideal = {(1,): {"n": 10.0}}
        actual = {(1,): {"n": 7.0}}
        assert window_rms(ideal, actual, "n") == pytest.approx(3.0)


class TestOtherMetrics:
    from repro.quality import mean_absolute_error, total_relative_error

    def test_mae(self):
        from repro.quality import mean_absolute_error

        ideal = {(1,): {"n": 10.0}, (2,): {"n": 5.0}}
        actual = {(1,): {"n": 7.0}, (2,): {"n": 6.0}}
        assert mean_absolute_error(ideal, actual, "n") == pytest.approx(2.0)

    def test_mae_empty(self):
        from repro.quality import mean_absolute_error

        assert mean_absolute_error({}, {}, "n") == 0.0

    def test_total_relative_error(self):
        from repro.quality import total_relative_error

        ideal = {(1,): {"n": 10.0}, (2,): {"n": 10.0}}
        actual = {(1,): {"n": 5.0}}  # reported half the mass
        assert total_relative_error(ideal, actual, "n") == pytest.approx(0.75)

    def test_total_relative_error_conserving_estimator(self):
        from repro.quality import total_relative_error

        # Misplaced but mass-conserving estimate: zero total error.
        ideal = {(1,): {"n": 10.0}}
        actual = {(2,): {"n": 10.0}}
        assert total_relative_error(ideal, actual, "n") == 0.0

    def test_total_relative_error_zero_ideal(self):
        from repro.quality import total_relative_error

        assert total_relative_error({}, {(1,): {"n": 5.0}}, "n") == 0.0


class TestErrorSummary:
    def test_mean_std(self):
        s = ErrorSummary.from_values([1.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.n_runs == 2

    def test_single_run(self):
        s = ErrorSummary.from_values([5.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_values([])

    def test_dominates(self):
        low = ErrorSummary.from_values([1.0, 1.1, 0.9] * 3)
        high = ErrorSummary.from_values([10.0, 11.0, 9.0] * 3)
        assert low.dominates(high)
        assert not high.dominates(low)
        assert not low.dominates(low)
