"""Extension — aggregates beyond COUNT(*) (merging SUM and AVG under load).

The paper's experiments report only grouped COUNTs; its merge machinery
(Section 8.1) explicitly anticipates other aggregates.  This bench reruns
the Figure 8 setup with::

    SELECT a, COUNT(*), SUM(S.c), AVG(S.c) ... GROUP BY a

and scores each aggregate independently, verifying that the synopsis
estimates compose: SUM merges additively, AVG recombines via the counts.
Expected: triage beats drop-only on every aggregate; AVG (a ratio) is far
more forgiving of shedding than SUM (a mass).
"""

from __future__ import annotations

import pytest

from conftest import BENCH_PARAMS
from repro.core import ShedStrategy
from repro.experiments import run_constant_rate
from repro.quality import ErrorSummary, run_rms

SUM_QUERY = (
    "SELECT a, COUNT(*) AS n, SUM(S.c) AS total_c, AVG(S.c) AS mean_c "
    "FROM R, S, T WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
)
RATE = 1800.0
N_RUNS = 5


def summaries(strategy) -> dict[str, ErrorSummary]:
    per_agg: dict[str, list[float]] = {"n": [], "total_c": [], "mean_c": []}
    for seed in range(N_RUNS):
        run = run_constant_rate(strategy, RATE, BENCH_PARAMS, seed, query=SUM_QUERY)
        for agg in per_agg:
            per_agg[agg].append(run_rms(run, aggregate=agg))
    return {agg: ErrorSummary.from_values(v) for agg, v in per_agg.items()}


@pytest.fixture(scope="module")
def results():
    return {
        strategy: summaries(strategy)
        for strategy in (ShedStrategy.DATA_TRIAGE, ShedStrategy.DROP_ONLY)
    }


def test_ext_aggregate_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print(f"\nSUM/AVG extension at {RATE:.0f} tuples/sec ({N_RUNS} runs):")
    print(f"{'aggregate':10s} {'triage RMS':>16s} {'drop-only RMS':>18s}")
    for agg in ("n", "total_c", "mean_c"):
        t = results[ShedStrategy.DATA_TRIAGE][agg]
        d = results[ShedStrategy.DROP_ONLY][agg]
        print(
            f"{agg:10s} {t.mean:10.1f} ± {t.std:4.1f}"
            f" {d.mean:11.1f} ± {d.std:5.1f}"
        )


def test_ext_aggregate_shapes(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    triage = results[ShedStrategy.DATA_TRIAGE]
    drop = results[ShedStrategy.DROP_ONLY]
    # Triage beats drop-only on the mass aggregates.
    assert triage["n"].mean < drop["n"].mean
    assert triage["total_c"].mean < drop["total_c"].mean
    # AVG is a ratio: drop-only's unbiased sampling keeps it roughly right,
    # and triage must not be (meaningfully) worse.
    assert triage["mean_c"].mean <= drop["mean_c"].mean * 1.25
    # Internal consistency: for each strategy the SUM error dwarfs the AVG
    # error (values are ~50x the count scale).
    assert triage["total_c"].mean > triage["mean_c"].mean
