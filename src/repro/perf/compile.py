"""Code-generated query plans: the engine hot path without interpretation.

The interpreted executor (:mod:`repro.engine.executor`) pays two per-window
costs the paper's overhead budget (Section 6, Figure 6) cannot ignore: the
physical plan tree is re-instantiated for every window, and every expression
evaluates through a tree of nested ``Evaluator`` closures — one Python call
per operator node per row.

This module removes both.  :func:`compile_query` lowers a bound query into

* **flat row closures** — each expression tree becomes one generated Python
  function (SSA-style statements, common subexpressions shared), so a
  predicate or projection is a single call per row regardless of depth; and
* **a reusable operator tree** — compiled nodes hold positions and closures
  only; per window they are *re-bound* to the new input bags via
  ``iterate(inputs)`` instead of being rebuilt.

Semantics are the interpreted path's, verbatim: SQL three-valued logic with
both operands always evaluated (no short-circuit, so error behaviour
matches), identical join order (the shared
:func:`repro.engine.executor.join_schedule`), identical schema derivation,
and identical NULL handling in joins and aggregates.  The equivalence test
suite (``tests/engine/test_compiled_equivalence.py``) holds the two paths
result-identical over the paper workloads and a randomized SPJ corpus.

Any construct this compiler cannot express raises :class:`CompileError`;
:class:`~repro.engine.executor.QueryExecutor` then falls back to the
interpreted path permanently for that query.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterator
from typing import Any

from repro.algebra.multiset import Multiset
from repro.engine.catalog import Catalog  # noqa: F401 - re-exported context
from repro.engine.executor import (
    QueryResult,
    _dequalify,
    _order_rows,
    _qualify,
    join_schedule,
)
from repro.engine.operators import _infer_type
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
    conjoin,
    resolve_column,
)
from repro.engine.types import Column, ColumnType, Schema


class CompileError(RuntimeError):
    """Raised when a query shape cannot be lowered to generated code."""


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------
_PY_OPS = {
    "=": "==",
    "!=": "!=",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
}

#: Literal types safe to inline as source text (repr round-trips exactly).
_INLINE_LITERALS = (bool, int, str, type(None))


class _Emitter:
    """Lowers expression trees into SSA-style Python statements.

    Nodes are emitted post-order into numbered temporaries; structurally
    equal subtrees (expressions are frozen dataclasses, hence hashable)
    share one temporary, so ``R.a = S.b AND R.a > 5`` loads ``R.a`` once.
    """

    def __init__(self, schema: Schema, functions) -> None:
        self.schema = schema
        self.functions = functions or {}
        self.lines: list[str] = []
        self.env: dict[str, Any] = {}
        self._n = 0
        self._cse: dict[Expression, str] = {}
        self._lit: dict[str, Any] = {}  # inline-literal atom -> its value

    def _fresh(self) -> str:
        self._n += 1
        return f"_t{self._n}"

    def _stmt(
        self, target: str, body: str, deps: tuple = (), volatile: bool = False
    ) -> None:
        """Emit one SSA statement ``target = body``.

        ``deps`` lists every atom the body references — unused here, but
        the vectorizing subclass (:mod:`repro.perf.vector`) rewrites the
        statement into a list comprehension over its vector-valued deps.
        ``volatile`` marks bodies that must run once per row even with no
        row-dependent inputs (user function calls may be impure).
        """
        self.lines.append(f"{target} = {body}")

    def _const(self, value: Any) -> str:
        name = f"_c{len(self.env)}"
        self.env[name] = value
        return name

    def emit(self, expr: Expression) -> str:
        """Return an atom (temp name or inline source) holding ``expr``."""
        atom = self._cse.get(expr)
        if atom is None:
            atom = self._lower(expr)
            self._cse[expr] = atom
        return atom

    def _lower(self, expr: Expression) -> str:
        if isinstance(expr, ColumnRef):
            return f"row[{resolve_column(expr, self.schema)}]"
        if isinstance(expr, Literal):
            if type(expr.value) in _INLINE_LITERALS:
                atom = repr(expr.value)
                self._lit.setdefault(atom, expr.value)
                return atom
            return self._const(expr.value)
        if isinstance(expr, BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, UnaryOp):
            a = self.emit(expr.operand)
            t = self._fresh()
            op = expr.op.upper()
            if op == "NOT":
                val = f"not ({a})"
            elif expr.op == "-":
                val = f"-({a})"
            else:
                raise CompileError(f"unknown unary operator {expr.op!r}")
            nt = self._null_test(a)
            if nt == "False":
                body = val
            elif nt == "True":
                body = "None"
            else:
                body = f"None if {nt} else {val}"
            self._stmt(t, body, (a,))
            return t
        if isinstance(expr, FunctionCall):
            try:
                fn = self.functions[expr.name.lower()]
            except KeyError:
                raise CompileError(f"unknown function {expr.name!r}") from None
            args = [self.emit(a) for a in expr.args]
            fvar = self._const(fn)
            t = self._fresh()
            self._stmt(t, f"{fvar}({', '.join(args)})", tuple(args), volatile=True)
            return t
        raise CompileError(f"cannot compile {type(expr).__name__} nodes")

    def _null_test(self, *atoms: str) -> str:
        """Source for "any operand is NULL"; folds statically-known atoms.

        Returns ``"True"``/``"False"`` when decidable at compile time so no
        ``<literal> is None`` comparison ever reaches the generated code.
        """
        parts = []
        for x in atoms:
            if x in self._lit:
                if self._lit[x] is None:
                    return "True"
                continue  # a non-None literal can never be NULL
            parts.append(f"{x} is None")
        return " or ".join(parts) if parts else "False"

    def _is_test(self, atom: str, const: bool) -> str:
        """Source for ``atom is True/False``; folds literal atoms."""
        if atom in self._lit:
            return "True" if self._lit[atom] is const else "False"
        return f"{atom} is {const}"

    def _lower_binary(self, expr: BinaryOp) -> str:
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        # Post-order: both operands are materialized before the combiner,
        # exactly like the interpreted evaluator (no short-circuit — a
        # raising right operand raises here too).
        a = self.emit(expr.left)
        b = self.emit(expr.right)
        t = self._fresh()
        nt = self._null_test(a, b)
        if op in ("AND", "OR"):
            const = False if op == "AND" else True
            word = "and" if op == "AND" else "or"
            absorb = " or ".join(
                p for p in (self._is_test(a, const), self._is_test(b, const))
                if p != "False"
            ) or "False"
            if absorb == "True":
                body = f"{const}"
            elif nt == "True":
                body = f"{const} if {absorb} else None"
            else:
                inner = (
                    f"bool({a}) {word} bool({b})"
                    if nt == "False"
                    else f"None if {nt} else bool({a}) {word} bool({b})"
                )
                if absorb == "False":
                    body = inner
                else:
                    body = f"{const} if {absorb} else ({inner})"
        else:
            try:
                py = _PY_OPS[expr.op]
            except KeyError:
                raise CompileError(
                    f"unknown binary operator {expr.op!r}"
                ) from None
            if nt == "False":
                body = f"{a} {py} {b}"
            elif nt == "True":
                body = "None"
            else:
                body = f"None if {nt} else {a} {py} {b}"
        self._stmt(t, body, (a, b))
        return t


def _finish(em: _Emitter, return_expr: str, name: str) -> Callable:
    body = "\n    ".join(em.lines) if em.lines else "pass"
    src = f"def {name}(row):\n    {body}\n    return {return_expr}\n"
    namespace = dict(em.env)
    exec(compile(src, f"<repro.perf.compile:{name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__repro_source__ = src  # introspection / EXPLAIN / debugging
    return fn


def compile_scalar(
    expr: Expression, schema: Schema, functions=None
) -> Callable[[tuple], Any]:
    """Compile one expression into a flat ``row -> value`` closure."""
    em = _Emitter(schema, functions)
    return _finish(em, em.emit(expr), "_compiled_scalar")


def compile_tuple(
    exprs: list[Expression], schema: Schema, functions=None
) -> Callable[[tuple], tuple]:
    """Compile expressions into one ``row -> (v0, v1, ...)`` closure."""
    em = _Emitter(schema, functions)
    atoms = [em.emit(e) for e in exprs]
    return _finish(em, "(" + "".join(a + ", " for a in atoms) + ")", "_compiled_tuple")


# ---------------------------------------------------------------------------
# Compiled operator tree
# ---------------------------------------------------------------------------
def _try_vector_pred(expr, schema, functions) -> Callable | None:
    """A vectorized predicate kernel, or None (row fallback) on failure."""
    from repro.perf.vector import compile_filter_vector

    try:
        return compile_filter_vector(expr, schema, functions)
    except CompileError:
        return None


def _try_vector_tuple(exprs, schema, functions) -> Callable | None:
    """A vectorized tuple kernel, or None (row fallback) on failure."""
    from repro.perf.vector import compile_tuple_vector

    try:
        return compile_tuple_vector(exprs, schema, functions)
    except CompileError:
        return None


def _pure_key_positions(exprs, schema) -> frozenset | None:
    """Column positions read by ``exprs``, or None when ineligible.

    Eligible expressions are pure (no user function calls) and built from
    column refs, literals, and unary/binary operators — the analysis behind
    the COUNT(*)-over-join pushdown, which re-evaluates key expressions per
    *left* row instead of per joined row.
    """
    acc: set[int] = set()

    def walk(e) -> bool:
        if isinstance(e, ColumnRef):
            acc.add(resolve_column(e, schema))
            return True
        if isinstance(e, Literal):
            return True
        if isinstance(e, BinaryOp):
            return walk(e.left) and walk(e.right)
        if isinstance(e, UnaryOp):
            return walk(e.operand)
        return False

    for e in exprs:
        if not walk(e):
            return None
    return frozenset(acc)


def _rows_of(node, inputs) -> list[tuple]:
    """All of a node's output rows as one list.

    Prefers the node's ``batch`` method; profiling proxies
    (:mod:`repro.obs.profile` wraps nodes with iterate-only counters) and
    any other iterate-only node fall back to draining ``iterate`` — same
    rows, same order.
    """
    batch = getattr(node, "batch", None)
    if batch is not None:
        return batch(inputs)
    return list(node.iterate(inputs))


class CompiledNode:
    """A plan node bound to schemas and closures, re-bindable to inputs.

    Unlike :class:`~repro.engine.operators.PhysicalOperator` (which holds a
    window's rows), a compiled node is content-free: ``iterate(inputs)``
    binds it to one window's input bags, so the tree is built once per query
    and reused for every window.  ``batch(inputs)`` returns the same rows
    in the same order as draining ``iterate(inputs)``, but whole-batch:
    filters/projections run vectorized kernels, joins build output lists
    without generator resumption.
    """

    __slots__ = ("schema",)

    schema: Schema

    def iterate(self, inputs: dict[str, Multiset]) -> Iterator[tuple]:
        raise NotImplementedError

    def batch(self, inputs: dict[str, Multiset]) -> list[tuple]:
        return list(self.iterate(inputs))


class _CScan(CompiledNode):
    __slots__ = ("key_lower", "key")

    def __init__(self, stream_name: str, schema: Schema) -> None:
        self.key_lower = stream_name.lower()
        self.key = stream_name
        self.schema = schema

    def iterate(self, inputs):
        rows = inputs.get(self.key_lower)
        if rows is None:
            rows = inputs.get(self.key)
        return iter(rows) if rows is not None else iter(())

    def batch(self, inputs):
        rows = inputs.get(self.key_lower)
        if rows is None:
            rows = inputs.get(self.key)
        if rows is None:
            return []
        if isinstance(rows, Multiset):
            return rows.rows_list()
        return list(rows)


class _CSubquery(CompiledNode):
    __slots__ = ("inner",)

    def __init__(self, inner: "CompiledQuery | CompiledUnion", schema: Schema) -> None:
        self.inner = inner
        self.schema = schema

    def iterate(self, inputs):
        return iter(self.inner.execute(inputs).rows)

    def batch(self, inputs):
        return self.inner.execute(inputs).rows.rows_list()


class _CFilter(CompiledNode):
    __slots__ = ("child", "pred", "vpred")

    def __init__(
        self, child: CompiledNode, pred: Callable, vpred: Callable | None = None
    ) -> None:
        self.child = child
        self.pred = pred
        self.vpred = vpred
        self.schema = child.schema

    def iterate(self, inputs):
        pred = self.pred
        for row in self.child.iterate(inputs):
            if pred(row) is True:
                yield row

    def batch(self, inputs):
        rows = _rows_of(self.child, inputs)
        if not rows:
            return rows
        vpred = self.vpred
        if vpred is not None:
            return [rows[i] for i in vpred(rows)]
        pred = self.pred
        return [row for row in rows if pred(row) is True]


class _CProject(CompiledNode):
    __slots__ = ("child", "row_fn", "vrow_fn")

    def __init__(
        self,
        child: CompiledNode,
        row_fn: Callable,
        schema: Schema,
        vrow_fn: Callable | None = None,
    ) -> None:
        self.child = child
        self.row_fn = row_fn
        self.vrow_fn = vrow_fn
        self.schema = schema

    def iterate(self, inputs):
        row_fn = self.row_fn
        for row in self.child.iterate(inputs):
            yield row_fn(row)

    def batch(self, inputs):
        rows = _rows_of(self.child, inputs)
        if not rows:
            return rows
        vrow_fn = self.vrow_fn
        if vrow_fn is not None:
            return vrow_fn(rows)
        row_fn = self.row_fn
        return [row_fn(row) for row in rows]


class _CHashJoin(CompiledNode):
    """Hash equijoin with empty-build short-circuit and NULL-probe skip.

    Single-key joins (the paper query's shape) use scalar keys to avoid a
    tuple allocation per row on both the build and probe sides.
    """

    __slots__ = ("left", "right", "lpos", "rpos")

    def __init__(
        self,
        left: CompiledNode,
        right: CompiledNode,
        lpos: list[int],
        rpos: list[int],
    ) -> None:
        self.left = left
        self.right = right
        self.lpos = tuple(lpos)
        self.rpos = tuple(rpos)
        self.schema = left.schema.concat(right.schema)

    def iterate(self, inputs):
        if len(self.rpos) == 1:
            yield from self._iterate_single(inputs)
            return
        table: dict[tuple, list[tuple]] = {}
        rpos = self.rpos
        setdefault = table.setdefault
        for row in self.right.iterate(inputs):
            key = tuple(row[p] for p in rpos)
            if None not in key:
                setdefault(key, []).append(row)
        if not table:
            return
        lpos = self.lpos
        get = table.get
        for lrow in self.left.iterate(inputs):
            key = tuple(lrow[p] for p in lpos)
            if None in key:
                continue
            matches = get(key)
            if matches is not None:
                for rrow in matches:
                    yield lrow + rrow

    def _iterate_single(self, inputs):
        rp = self.rpos[0]
        table: dict[Any, list[tuple]] = {}
        setdefault = table.setdefault
        for row in self.right.iterate(inputs):
            key = row[rp]
            if key is not None:
                setdefault(key, []).append(row)
        if not table:
            return
        lp = self.lpos[0]
        get = table.get
        for lrow in self.left.iterate(inputs):
            key = lrow[lp]
            if key is None:
                continue
            matches = get(key)
            if matches is not None:
                for rrow in matches:
                    yield lrow + rrow

    def batch(self, inputs):
        # Same pairs, same order as iterate, but output rows land in one
        # list via extend-with-listcomp instead of per-row generator
        # resumption — the dominant cost of wide joins.
        out: list[tuple] = []
        right_rows = _rows_of(self.right, inputs)
        if len(self.rpos) == 1:
            rp = self.rpos[0]
            table: dict[Any, list[tuple]] = {}
            setdefault = table.setdefault
            for row in right_rows:
                key = row[rp]
                if key is not None:
                    setdefault(key, []).append(row)
            if not table:
                return out
            lp = self.lpos[0]
            get = table.get
            append = out.append
            extend = out.extend
            for lrow in _rows_of(self.left, inputs):
                key = lrow[lp]
                if key is None:
                    continue
                matches = get(key)
                if matches is not None:
                    if len(matches) == 1:
                        append(lrow + matches[0])
                    else:
                        extend([lrow + rrow for rrow in matches])
            return out
        rpos = self.rpos
        mtable: dict[tuple, list[tuple]] = {}
        msetdefault = mtable.setdefault
        for row in right_rows:
            key = tuple(row[p] for p in rpos)
            if None not in key:
                msetdefault(key, []).append(row)
        if not mtable:
            return out
        lpos = self.lpos
        mget = mtable.get
        append = out.append
        extend = out.extend
        for lrow in _rows_of(self.left, inputs):
            key = tuple(lrow[p] for p in lpos)
            if None in key:
                continue
            matches = mget(key)
            if matches is not None:
                if len(matches) == 1:
                    append(lrow + matches[0])
                else:
                    extend([lrow + rrow for rrow in matches])
        return out

    def left_match_counts(self, inputs) -> tuple[list[tuple], list[int]]:
        """Factored probe: matching left rows and their join fan-out.

        Returns ``(lrows, mult)`` where ``lrows`` are the probe-order left
        rows with at least one match and ``mult[i]`` is how many joined
        rows ``lrows[i]`` would produce.  The COUNT(*) aggregate pushdown
        consumes this instead of :meth:`batch`, so wide joins never
        materialize their output (concatenating ``lrow + rrow`` per pair
        is most of a join-heavy plan's cost).
        """
        right_rows = _rows_of(self.right, inputs)
        lrows: list[tuple] = []
        mult: list[int] = []
        if len(self.rpos) == 1:
            rp = self.rpos[0]
            counts: dict[Any, int] = {}
            cget = counts.get
            for row in right_rows:
                key = row[rp]
                if key is not None:
                    counts[key] = cget(key, 0) + 1
            if not counts:
                return lrows, mult
            lp = self.lpos[0]
            get = counts.get
            la = lrows.append
            ma = mult.append
            for lrow in _rows_of(self.left, inputs):
                key = lrow[lp]
                if key is None:
                    continue
                m = get(key)
                if m is not None:
                    la(lrow)
                    ma(m)
            return lrows, mult
        rpos = self.rpos
        mcounts: dict[tuple, int] = {}
        mcget = mcounts.get
        for row in right_rows:
            key = tuple(row[p] for p in rpos)
            if None not in key:
                mcounts[key] = mcget(key, 0) + 1
        if not mcounts:
            return lrows, mult
        lpos = self.lpos
        get = mcounts.get
        la = lrows.append
        ma = mult.append
        for lrow in _rows_of(self.left, inputs):
            key = tuple(lrow[p] for p in lpos)
            if None in key:
                continue
            m = get(key)
            if m is not None:
                la(lrow)
                ma(m)
        return lrows, mult


class _CNestedLoop(CompiledNode):
    __slots__ = ("left", "right", "pred")

    def __init__(
        self,
        left: CompiledNode,
        right: CompiledNode,
        pred: Callable | None,
    ) -> None:
        self.left = left
        self.right = right
        self.pred = pred
        self.schema = left.schema.concat(right.schema)

    def iterate(self, inputs):
        right_rows = list(self.right.iterate(inputs))
        pred = self.pred
        for lrow in self.left.iterate(inputs):
            for rrow in right_rows:
                row = lrow + rrow
                if pred is None or pred(row) is True:
                    yield row

    def batch(self, inputs):
        right_rows = _rows_of(self.right, inputs)
        out: list[tuple] = []
        if not right_rows:
            # iterate() still drains the left side in this case; keep any
            # error behaviour of the left subtree identical.
            _rows_of(self.left, inputs)
            return out
        pred = self.pred
        extend = out.extend
        for lrow in _rows_of(self.left, inputs):
            if pred is None:
                extend([lrow + rrow for rrow in right_rows])
            else:
                extend(
                    [
                        row
                        for rrow in right_rows
                        if pred(row := lrow + rrow) is True
                    ]
                )
        return out


class _CAggregate(CompiledNode):
    """GROUP BY + aggregates via one compiled key/argument closure.

    The running-state layout and finalization mirror
    :class:`~repro.engine.operators.HashAggregate` exactly (totals start at
    ``0.0`` so SUM of integers stays float; NULL arguments are skipped by
    everything except ``COUNT(*)``; empty input yields no groups).
    """

    __slots__ = (
        "child", "row_fn", "vrow_fn", "n_keys", "agg_slots", "functions_",
        "key_positions",
    )

    def __init__(
        self,
        child: CompiledNode,
        group_by: list[tuple[str, Expression]],
        aggregates,
        functions,
    ) -> None:
        self.child = child
        exprs = [e for _, e in group_by]
        slots: list[int | None] = []  # value index per aggregate; None = COUNT(*)
        for spec in aggregates:
            if spec.argument is None:
                slots.append(None)
            else:
                slots.append(len(exprs))
                exprs.append(spec.argument)
        self.row_fn = compile_tuple(exprs, child.schema, functions)
        self.vrow_fn = _try_vector_tuple(exprs, child.schema, functions)
        self.n_keys = len(group_by)
        self.key_positions = _pure_key_positions(
            [e for _, e in group_by], child.schema
        )
        self.agg_slots = tuple(slots)
        self.functions_ = [spec.function.lower() for spec in aggregates]
        cols = [
            Column(name, _infer_type(expr, child.schema)) for name, expr in group_by
        ]
        for spec in aggregates:
            t = (
                ColumnType.INTEGER
                if spec.function.lower() == "count"
                else ColumnType.FLOAT
            )
            cols.append(Column(spec.output_name, t))
        self.schema = Schema(cols)

    def iterate(self, inputs):
        row_fn = self.row_fn
        nk = self.n_keys
        slots = self.agg_slots
        n = len(slots)
        if all(slot is None for slot in slots):
            # Pure COUNT(*) (the paper query's shape): the per-row work
            # collapses to one dict bump — no slot scan, no key slicing.
            counts: dict[tuple, int] = {}
            cget = counts.get
            for row in self.child.iterate(inputs):
                key = row_fn(row)
                counts[key] = cget(key, 0) + 1
            for key, count in counts.items():
                yield key + (count,) * n
            return
        # state: [count, nonnull[], total[], min[], max[]]
        groups: dict[tuple, list] = {}
        get = groups.get
        for row in self.child.iterate(inputs):
            vals = row_fn(row)
            key = vals[:nk]
            state = get(key)
            if state is None:
                state = groups[key] = [0, [0] * n, [0.0] * n, [None] * n, [None] * n]
            state[0] += 1
            nonnull, total, minimum, maximum = state[1], state[2], state[3], state[4]
            for i, slot in enumerate(slots):
                if slot is None:
                    continue
                v = vals[slot]
                if v is None:
                    continue
                nonnull[i] += 1
                total[i] += v
                if minimum[i] is None or v < minimum[i]:
                    minimum[i] = v
                if maximum[i] is None or v > maximum[i]:
                    maximum[i] = v
        fns = self.functions_
        for key, state in groups.items():
            out = list(key)
            count, nonnull, total, minimum, maximum = state
            for i, fn in enumerate(fns):
                if fn == "count":
                    out.append(count if slots[i] is None else nonnull[i])
                elif fn == "sum":
                    out.append(total[i] if nonnull[i] else None)
                elif fn == "avg":
                    out.append(total[i] / nonnull[i] if nonnull[i] else None)
                elif fn == "min":
                    out.append(minimum[i])
                else:  # max
                    out.append(maximum[i])
            yield tuple(out)

    def batch(self, inputs):
        slots = self.agg_slots
        n = len(slots)
        if all(slot is None for slot in slots):
            child = self.child
            kp = self.key_positions
            # Duck-typed on left_match_counts so profiling proxies (which
            # wrap _CHashJoin and forward the method with row accounting)
            # keep the pushdown instead of silently falling off it.
            lmc = getattr(child, "left_match_counts", None)
            if (
                kp is not None
                and lmc is not None
                and all(p < len(child.left.schema) for p in kp)
            ):
                # Factored COUNT(*)-over-join: the group keys only read
                # left-side columns, so count each left row's join fan-out
                # instead of materializing the concatenated output.  Group
                # first-occurrence order equals probe order, which is the
                # order iterate() first bumps each key.
                lrows, mult = lmc(inputs)
                if not lrows:
                    return []
                vrow_fn = self.vrow_fn
                if vrow_fn is not None:
                    keys = vrow_fn(lrows)
                else:
                    row_fn = self.row_fn
                    keys = [row_fn(row) for row in lrows]
                counts: dict[tuple, int] = {}
                cget = counts.get
                for key, m in zip(keys, mult):
                    counts[key] = cget(key, 0) + m
                return [key + (c,) * n for key, c in counts.items()]
            rows = _rows_of(child, inputs)
            # Pure COUNT(*): vectorized key computation + Counter's C-level
            # counting loop.  Counter preserves first-occurrence order, so
            # group order matches the dict-bump loop in iterate().
            if not rows:
                return []
            vrow_fn = self.vrow_fn
            if vrow_fn is not None:
                keys = vrow_fn(rows)
            else:
                row_fn = self.row_fn
                keys = [row_fn(row) for row in rows]
            return [key + (c,) * n for key, c in Counter(keys).items()]
        rows = _rows_of(self.child, inputs)
        if rows and self.vrow_fn is not None:
            vals_list = self.vrow_fn(rows)
        else:
            row_fn = self.row_fn
            vals_list = [row_fn(row) for row in rows]
        nk = self.n_keys
        groups: dict[tuple, list] = {}
        get = groups.get
        for vals in vals_list:
            key = vals[:nk]
            state = get(key)
            if state is None:
                state = groups[key] = [0, [0] * n, [0.0] * n, [None] * n, [None] * n]
            state[0] += 1
            nonnull, total, minimum, maximum = state[1], state[2], state[3], state[4]
            for i, slot in enumerate(slots):
                if slot is None:
                    continue
                v = vals[slot]
                if v is None:
                    continue
                nonnull[i] += 1
                total[i] += v
                if minimum[i] is None or v < minimum[i]:
                    minimum[i] = v
                if maximum[i] is None or v > maximum[i]:
                    maximum[i] = v
        fns = self.functions_
        results: list[tuple] = []
        for key, state in groups.items():
            out = list(key)
            count, nonnull, total, minimum, maximum = state
            for i, fn in enumerate(fns):
                if fn == "count":
                    out.append(count if slots[i] is None else nonnull[i])
                elif fn == "sum":
                    out.append(total[i] if nonnull[i] else None)
                elif fn == "avg":
                    out.append(total[i] / nonnull[i] if nonnull[i] else None)
                elif fn == "min":
                    out.append(minimum[i])
                else:  # max
                    out.append(maximum[i])
            results.append(tuple(out))
        return results


class _CDistinct(CompiledNode):
    __slots__ = ("child",)

    def __init__(self, child: CompiledNode) -> None:
        self.child = child
        self.schema = child.schema

    def iterate(self, inputs):
        seen: set[tuple] = set()
        add = seen.add
        for row in self.child.iterate(inputs):
            if row not in seen:
                add(row)
                yield row

    def batch(self, inputs):
        # dict.fromkeys keeps first occurrences in order — same rows, same
        # order as the seen-set loop in iterate().
        return list(dict.fromkeys(_rows_of(self.child, inputs)))


# ---------------------------------------------------------------------------
# Query-level wrappers
# ---------------------------------------------------------------------------
class CompiledQuery:
    """A compiled single SELECT block: build once, execute per window."""

    __slots__ = ("root", "bound", "schema", "_functions")

    def __init__(self, root: CompiledNode, bound, functions) -> None:
        self.root = root
        self.bound = bound
        self.schema = root.schema
        self._functions = functions

    def execute(self, inputs: dict[str, Multiset]) -> QueryResult:
        bound = self.bound
        rows = _rows_of(self.root, inputs)
        if not bound.order_by and bound.limit is None:
            return QueryResult(rows=Multiset(rows), schema=self.schema)
        if bound.order_by:
            rows = _order_rows(rows, self.schema, bound.order_by, self._functions)
        if bound.limit is not None:
            rows = rows[: bound.limit]
        return QueryResult(rows=Multiset(rows), schema=self.schema, ordered_rows=rows)


class CompiledUnion:
    """A compiled UNION ALL chain (bag union of member results)."""

    __slots__ = ("queries", "schema")

    def __init__(self, queries: list["CompiledQuery | CompiledUnion"]) -> None:
        self.queries = queries
        self.schema = queries[0].schema

    def execute(self, inputs: dict[str, Multiset]) -> QueryResult:
        results = [q.execute(inputs) for q in self.queries]
        rows = Multiset()
        for r in results:
            rows = rows + r.rows
        return QueryResult(rows=rows, schema=results[0].schema)


# ---------------------------------------------------------------------------
# Planning (mirrors QueryExecutor._plan, sharing its schedule + helpers)
# ---------------------------------------------------------------------------
def compile_query(bound, functions) -> "CompiledQuery | CompiledUnion":
    """Lower a bound query (or UNION ALL chain) into a compiled plan."""
    from repro.sql.binder import BoundQuery, BoundUnion

    if isinstance(bound, BoundUnion):
        return CompiledUnion([compile_query(q, functions) for q in bound.queries])
    if not isinstance(bound, BoundQuery):
        raise CompileError(f"cannot compile {type(bound).__name__}")
    return CompiledQuery(_compile_select(bound, functions), bound, functions)


def _compile_source(src, functions) -> CompiledNode:
    if src.subquery is not None:
        inner = compile_query(src.subquery, functions)
        schema = _qualify(_dequalify(inner.schema), src.name)
        return _CSubquery(inner, schema)
    return _CScan(src.stream_name, _qualify(src.schema, src.name))


def _compile_select(bound, functions) -> CompiledNode:
    per_source: dict[str, CompiledNode] = {
        src.name: _compile_source(src, functions) for src in bound.sources
    }
    for name, preds in bound.local_predicates.items():
        pred = conjoin(preds)
        if pred is not None:
            node = per_source[name]
            per_source[name] = _CFilter(
                node,
                compile_scalar(pred, node.schema, functions),
                _try_vector_pred(pred, node.schema, functions),
            )

    order = [src.name for src in bound.sources]
    current = per_source[order[0]]
    for step in join_schedule(bound):
        right = per_source[step.source]
        if step.is_cross:
            current = _CNestedLoop(current, right, None)
        else:
            lpos = [current.schema.position(k) for k in step.keys_left]
            rpos = [right.schema.position(k) for k in step.keys_right]
            current = _CHashJoin(current, right, lpos, rpos)

    residual = conjoin(bound.residual_predicates)
    if residual is not None:
        current = _CFilter(
            current,
            compile_scalar(residual, current.schema, functions),
            _try_vector_pred(residual, current.schema, functions),
        )

    if bound.is_aggregate:
        current = _CAggregate(current, bound.group_by, bound.aggregates, functions)
        if bound.having is not None:
            current = _CFilter(
                current,
                compile_scalar(bound.having, current.schema, functions),
                _try_vector_pred(bound.having, current.schema, functions),
            )
    elif not bound.select_star:
        outputs = bound.outputs
        exprs = [e for _, e in outputs]
        row_fn = compile_tuple(exprs, current.schema, functions)
        types = [_infer_type(expr, current.schema) for _, expr in outputs]
        schema = Schema(
            [Column(name, t) for (name, _), t in zip(outputs, types)]
        )
        current = _CProject(
            current,
            row_fn,
            schema,
            _try_vector_tuple(exprs, current.schema, functions),
        )

    if bound.distinct:
        current = _CDistinct(current)
    return current
