"""Tests for the interactive shell."""

import pytest

from repro.shell import Shell


@pytest.fixture
def shell():
    sh = Shell(seed=1)
    sh.feed("CREATE STREAM R (a integer);")
    sh.feed("CREATE STREAM S (b integer, c integer);")
    return sh


class TestMetaCommands:
    def test_help(self, shell):
        assert "CREATE STREAM" in shell.feed("\\help")

    def test_streams_listing(self, shell):
        out = shell.feed("\\streams")
        assert "R (a integer)" in out
        assert "0 tuples buffered" in out

    def test_gen(self, shell):
        out = shell.feed("\\gen R 50")
        assert "generated 50 gaussian tuples" in out
        assert "50 tuples buffered" in shell.feed("\\streams")

    def test_gen_zipf(self, shell):
        assert "zipf" in shell.feed("\\gen R 10 zipf")

    def test_gen_unknown_family(self, shell):
        assert "unknown value family" in shell.feed("\\gen R 10 cauchy")

    def test_clear(self, shell):
        shell.feed("\\gen R 5")
        assert "cleared" in shell.feed("\\clear R")
        assert "0 tuples buffered" in shell.feed("\\streams")

    def test_save_and_load(self, shell, tmp_path):
        shell.feed("\\gen R 7")
        path = tmp_path / "r.trace"
        assert "saved 7" in shell.feed(f"\\save R {path}")
        shell.feed("\\clear R")
        assert "loaded 7" in shell.feed(f"\\load R {path}")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.feed("\\quit")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.feed("\\frobnicate")

    def test_explain(self, shell):
        out = shell.feed("\\explain SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        assert "HashAggregate" in out
        assert "Data Triage rewrite" in out

    def test_rewrite(self, shell):
        out = shell.feed("\\rewrite SELECT * FROM R, S WHERE R.a = S.b")
        assert "CREATE VIEW Q_dropped_syn" in out


class TestSql:
    def test_multiline_accumulation(self, shell):
        assert shell.feed("SELECT a") is None
        assert shell.wants_more
        out = shell.feed("FROM R;")
        assert "(0 rows)" in out

    def test_select_over_generated_data(self, shell):
        shell.feed("\\gen R 100")
        out = shell.feed("SELECT COUNT(*) AS n FROM R;")
        assert "100" in out

    def test_join_query(self, shell):
        shell.feed("\\gen R 50")
        shell.feed("\\gen S 50")
        out = shell.feed(
            "SELECT a, COUNT(*) AS n FROM R, S WHERE R.a = S.b GROUP BY a;"
        )
        assert "a | n" in out

    def test_order_and_limit_respected(self, shell):
        shell.feed("\\gen R 30")
        out = shell.feed("SELECT a FROM R ORDER BY a DESC LIMIT 3;")
        assert "(3 rows)" in out
        values = [
            int(line) for line in out.splitlines() if line.strip().isdigit()
        ]
        assert values == sorted(values, reverse=True)

    def test_windowed_query(self, shell):
        shell.feed("\\gen R 100")  # 0.01s apart: 1 second spans 100 tuples
        out = shell.feed(
            "SELECT a, COUNT(*) AS n FROM R GROUP BY a WINDOW R ['0.5'];"
        )
        assert "-- window 0" in out
        assert "-- window 1" in out

    def test_create_view_and_query_it(self, shell):
        shell.feed("\\gen R 10")
        shell.feed("CREATE VIEW small AS SELECT a FROM R WHERE a < 50;")
        out = shell.feed("SELECT COUNT(*) AS n FROM small;")
        assert "n" in out

    def test_error_reported_not_raised(self, shell):
        out = shell.feed("SELECT nope FROM R;")
        assert out.startswith("error:")

    def test_parse_error_reported(self, shell):
        out = shell.feed("SELEKT * FROM R;")
        assert out.startswith("error:")
