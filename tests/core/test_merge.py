"""Tests for merging exact grouped aggregates with synopsis estimates."""

import pytest

from repro.algebra import Multiset
from repro.core import MergeSpec, estimate_groups, exact_groups, merge_groups
from repro.engine import ColumnType, Schema
from repro.rewrite import RewriteError, SPJPlan
from repro.sql import Binder, parse_statement
from repro.synopses import Dimension, SparseCubicHistogram


def spec_for(catalog, sql):
    return MergeSpec.from_plan(
        SPJPlan.from_bound(Binder(catalog).bind(parse_statement(sql)))
    )


@pytest.fixture
def count_spec(paper_catalog):
    return spec_for(
        paper_catalog,
        "SELECT a, COUNT(*) AS n FROM R, S WHERE R.a = S.b GROUP BY a",
    )


class TestMergeSpec:
    def test_group_and_agg_dims_qualified(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, COUNT(*) AS n, SUM(c) AS s FROM R, S "
            "WHERE R.a = S.b GROUP BY a",
        )
        assert spec.group_dims == ("R.a",)
        assert spec.agg_dims == (None, "S.c")

    def test_qualified_group_column(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT S.c, COUNT(*) AS n FROM R, S WHERE R.a = S.b GROUP BY S.c",
        )
        assert spec.group_dims == ("S.c",)

    def test_non_aggregate_query_rejected(self, paper_catalog):
        with pytest.raises(RewriteError, match="grouped aggregate"):
            spec_for(paper_catalog, "SELECT a FROM R")


class TestExactGroups:
    def test_reads_rows(self, count_spec):
        schema = Schema.of(("a", ColumnType.INTEGER), ("n", ColumnType.INTEGER))
        rows = Multiset([(1, 5), (2, 7)])
        groups = exact_groups(rows, schema, count_spec)
        assert groups == {(1,): {"n": 5}, (2,): {"n": 7}}

    def test_duplicate_group_rows_rejected(self, count_spec):
        schema = Schema.of(("a", ColumnType.INTEGER), ("n", ColumnType.INTEGER))
        rows = Multiset([(1, 5), (1, 5)])
        with pytest.raises(ValueError):
            exact_groups(rows, schema, count_spec)


def hist(dims, rows, width=1):
    syn = SparseCubicHistogram(dims, bucket_width=width)
    syn.insert_many(rows)
    return syn


class TestEstimateGroups:
    def test_count_from_marginal(self, count_spec):
        syn = hist([Dimension("R.a", 1, 10)], [(1,), (1,), (3,)])
        est = estimate_groups(syn, count_spec)
        assert est == {(1,): {"n": 2.0}, (3,): {"n": 1.0}}

    def test_none_synopsis_empty(self, count_spec):
        assert estimate_groups(None, count_spec) == {}

    def test_sum_avg_min_max(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, COUNT(*) AS n, SUM(c) AS s, AVG(c) AS m, "
            "MIN(c) AS lo, MAX(c) AS hi "
            "FROM R, S WHERE R.a = S.b GROUP BY a",
        )
        syn = hist(
            [Dimension("R.a", 1, 10), Dimension("S.c", 1, 10)],
            [(1, 2), (1, 4), (3, 9)],
        )
        est = estimate_groups(syn, spec)
        g1 = est[(1,)]
        assert g1["n"] == pytest.approx(2.0)
        assert g1["s"] == pytest.approx(6.0)
        assert g1["m"] == pytest.approx(3.0)
        assert g1["lo"] == pytest.approx(2.0)
        assert g1["hi"] == pytest.approx(4.0)
        assert est[(3,)]["s"] == pytest.approx(9.0)

    def test_two_group_columns(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT b, c, COUNT(*) AS n FROM S GROUP BY b, c",
        )
        syn = hist(
            [Dimension("S.b", 1, 10), Dimension("S.c", 1, 10)],
            [(1, 2), (1, 2), (1, 3)],
        )
        est = estimate_groups(syn, spec)
        assert est[(1, 2)]["n"] == pytest.approx(2.0)
        assert est[(1, 3)]["n"] == pytest.approx(1.0)


class TestMergeGroups:
    def test_counts_and_sums_add(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, COUNT(*) AS n, SUM(c) AS s FROM R, S "
            "WHERE R.a = S.b GROUP BY a",
        )
        exact = {(1,): {"n": 2, "s": 10.0}}
        est = {(1,): {"n": 3.0, "s": 5.0}, (2,): {"n": 1.0, "s": 7.0}}
        merged = merge_groups(exact, est, spec)
        assert merged[(1,)] == {"n": 5.0, "s": 15.0}
        assert merged[(2,)] == {"n": 1.0, "s": 7.0}  # estimate-only group

    def test_min_max_extremes(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, COUNT(*) AS n, MIN(c) AS lo, MAX(c) AS hi "
            "FROM R, S WHERE R.a = S.b GROUP BY a",
        )
        exact = {(1,): {"n": 1, "lo": 5.0, "hi": 6.0}}
        est = {(1,): {"n": 1.0, "lo": 2.0, "hi": 9.0}}
        merged = merge_groups(exact, est, spec)
        assert merged[(1,)]["lo"] == 2.0
        assert merged[(1,)]["hi"] == 9.0

    def test_avg_recombined_by_counts(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, COUNT(*) AS n, AVG(c) AS m FROM R, S "
            "WHERE R.a = S.b GROUP BY a",
        )
        exact = {(1,): {"n": 2, "m": 10.0}}
        est = {(1,): {"n": 2.0, "m": 20.0}}
        merged = merge_groups(exact, est, spec)
        assert merged[(1,)]["m"] == pytest.approx(15.0)

    def test_avg_without_count_rejected(self, paper_catalog):
        spec = spec_for(
            paper_catalog,
            "SELECT a, AVG(c) AS m FROM R, S WHERE R.a = S.b GROUP BY a",
        )
        with pytest.raises(RewriteError, match="COUNT"):
            merge_groups({(1,): {"m": 1.0}}, {(1,): {"m": 2.0}}, spec)

    def test_exact_only_passthrough(self, count_spec):
        merged = merge_groups({(1,): {"n": 4}}, {}, count_spec)
        assert merged == {(1,): {"n": 4.0}}

    def test_none_values(self, count_spec):
        merged = merge_groups({(1,): {"n": None}}, {}, count_spec)
        assert merged[(1,)]["n"] is None
