"""Data Triage proper: queues, policies, strategies, merging, pipeline.

The package wires the substrates together exactly as paper Figure 1 does:
sources push into :class:`TriageQueue` instances, the engine drains them,
overflow is synopsized per window and estimated by the shadow plan
(:mod:`repro.rewrite.shadow`), and :mod:`repro.core.merge` produces the
composite per-window answer.  :class:`DataTriagePipeline` runs the whole
thing on a virtual clock; :class:`PipelineConfig` / :class:`ShedStrategy`
select between Data Triage and the drop-only / summarize-only baselines on
the single shared code path (paper Section 5.2.1).
"""

from repro.core.controller import LoadController, LoadEstimate
from repro.core.gateway import (
    DeliveredTuple,
    GatewayExperimentResult,
    GatewayOutput,
    TriageGateway,
    run_gateway_experiment,
)
from repro.core.merge import (
    Groups,
    MergeSpec,
    estimate_groups,
    exact_groups,
    merge_groups,
)
from repro.core.multi_query import SharedRunResult, SharedTriageRuntime
from repro.core.pipeline import DataTriagePipeline, RunResult, WindowOutcome
from repro.core.policies import (
    DROP_INCOMING,
    POLICIES,
    DropPolicy,
    FrequencyBiasedPolicy,
    HeadDropPolicy,
    PolicyContext,
    RandomDropPolicy,
    SynergisticPolicy,
    TailDropPolicy,
)
from repro.core.strategies import PipelineConfig, ShedStrategy
from repro.core.triage_queue import QueueStats, TriageQueue, WindowSynopsis

__all__ = [
    "DataTriagePipeline",
    "RunResult",
    "WindowOutcome",
    "PipelineConfig",
    "ShedStrategy",
    "TriageQueue",
    "WindowSynopsis",
    "QueueStats",
    "DropPolicy",
    "PolicyContext",
    "RandomDropPolicy",
    "TailDropPolicy",
    "HeadDropPolicy",
    "FrequencyBiasedPolicy",
    "SynergisticPolicy",
    "POLICIES",
    "DROP_INCOMING",
    "MergeSpec",
    "Groups",
    "exact_groups",
    "estimate_groups",
    "merge_groups",
    "LoadController",
    "LoadEstimate",
    "TriageGateway",
    "GatewayOutput",
    "GatewayExperimentResult",
    "DeliveredTuple",
    "run_gateway_experiment",
    "SharedTriageRuntime",
    "SharedRunResult",
]
