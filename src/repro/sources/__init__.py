"""Workload generation: value distributions, arrival processes, traces."""

from repro.sources.arrival import (
    Arrival,
    ArrivalProcess,
    MarkovBurstArrival,
    ParetoBurstArrival,
    SteadyArrival,
    generate_stream,
)
from repro.sources.network import NetworkLink
from repro.sources.generators import (
    GaussianValues,
    RowGenerator,
    UniformValues,
    ValueGenerator,
    ZipfValues,
    paper_row_generators,
)
from repro.sources.trace import (
    TraceError,
    dump_trace,
    load_trace,
    load_trace_file,
    rescale_trace,
    save_trace_file,
)

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "SteadyArrival",
    "MarkovBurstArrival",
    "ParetoBurstArrival",
    "NetworkLink",
    "generate_stream",
    "ValueGenerator",
    "GaussianValues",
    "UniformValues",
    "ZipfValues",
    "RowGenerator",
    "paper_row_generators",
    "TraceError",
    "dump_trace",
    "load_trace",
    "save_trace_file",
    "load_trace_file",
    "rescale_trace",
]
