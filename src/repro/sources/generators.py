"""Tuple value generators for the experiment workloads.

Paper Section 6.2.1: *"We generated equal numbers of random tuples for each
of the streams R, S, and T from Gaussian distributions.  The fields in the
tuples took on values ranging from 1 to 100, inclusive."*  Section 6.2.2:
burst tuples are *"drawn from Gaussian distributions with means at different
locations."*

Generators produce integer values clamped to a domain; a
:class:`RowGenerator` assembles one generator per column into stream rows.
"""

from __future__ import annotations

import abc
import math
import random
from collections.abc import Sequence
from dataclasses import dataclass


class ValueGenerator(abc.ABC):
    """Draws one integer column value per call."""

    @abc.abstractmethod
    def draw(self, rng: random.Random) -> int:
        ...


@dataclass(frozen=True)
class GaussianValues(ValueGenerator):
    """Rounded Gaussian, clamped into [lo, hi] (the paper's distribution)."""

    mean: float = 50.0
    std: float = 15.0
    lo: int = 1
    hi: int = 100

    def draw(self, rng: random.Random) -> int:
        v = int(round(rng.gauss(self.mean, self.std)))
        return min(self.hi, max(self.lo, v))

    def shifted(self, delta: float) -> "GaussianValues":
        """The same distribution with its mean moved (burst-mode data)."""
        return GaussianValues(self.mean + delta, self.std, self.lo, self.hi)


@dataclass(frozen=True)
class UniformValues(ValueGenerator):
    """Uniform over [lo, hi]."""

    lo: int = 1
    hi: int = 100

    def draw(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


@dataclass(frozen=True)
class ZipfValues(ValueGenerator):
    """Zipf-distributed ranks mapped onto [lo, hi] (skewed workloads).

    Uses inverse-CDF sampling over the truncated Zipf distribution with
    exponent ``s``; rank 1 (the most common value) maps to ``lo``.
    """

    s: float = 1.2
    lo: int = 1
    hi: int = 100

    def _weights(self) -> list[float]:
        n = self.hi - self.lo + 1
        return [1.0 / math.pow(k, self.s) for k in range(1, n + 1)]

    def draw(self, rng: random.Random) -> int:
        weights = self._weights()
        total = sum(weights)
        u = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if u <= acc:
                return self.lo + i
        return self.hi


class RowGenerator:
    """One :class:`ValueGenerator` per column -> full stream rows."""

    def __init__(self, columns: Sequence[ValueGenerator]) -> None:
        if not columns:
            raise ValueError("need at least one column generator")
        self.columns = list(columns)

    def draw(self, rng: random.Random) -> tuple[int, ...]:
        return tuple(g.draw(rng) for g in self.columns)

    def shifted(self, delta: float) -> "RowGenerator":
        """Shift every Gaussian column (burst-mode variant of this stream)."""
        return RowGenerator(
            [
                g.shifted(delta) if isinstance(g, GaussianValues) else g
                for g in self.columns
            ]
        )


def paper_row_generators() -> dict[str, RowGenerator]:
    """The experiment's stream generators: R(a), S(b, c), T(d), all N(50, 15²)."""
    g = GaussianValues()
    return {
        "R": RowGenerator([g]),
        "S": RowGenerator([g, g]),
        "T": RowGenerator([g]),
    }
