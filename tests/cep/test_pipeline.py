"""Pattern pipeline: determinism, equal-drop policy comparison, recall."""

import pytest

from repro.cep import (
    DEMO_PATTERN,
    PatternConfig,
    PatternPipeline,
    PatternUtilityPolicy,
    bursty_pattern_workload,
    canonical_match_bytes,
    demo_catalog,
    merge_streams,
)
from repro.core.policies import make_policy
from repro.engine.types import StreamTuple

EVENTS = bursty_pattern_workload(n_events=2000, seed=0)


def run(policy_name: str, seed: int = 0):
    config = PatternConfig(policy=make_policy(policy_name), seed=seed)
    return PatternPipeline(demo_catalog(), DEMO_PATTERN, config).run(EVENTS)


class TestDeterminism:
    def test_repeated_runs_byte_identical(self):
        pipeline = PatternPipeline(
            demo_catalog(),
            DEMO_PATTERN,
            PatternConfig(policy=PatternUtilityPolicy()),
        )
        first = pipeline.run(EVENTS)
        second = pipeline.run(EVENTS)
        assert canonical_match_bytes(first.matches) == canonical_match_bytes(
            second.matches
        )
        assert first.dropped == second.dropped

    def test_fresh_pipeline_instances_agree(self):
        assert canonical_match_bytes(run("random").matches) == (
            canonical_match_bytes(run("random").matches)
        )

    def test_different_seed_changes_random_outcome(self):
        a = run("random", seed=0)
        b = run("random", seed=1)
        assert canonical_match_bytes(a.matches) != canonical_match_bytes(
            b.matches
        )


class TestEqualDropComparison:
    def test_drop_count_is_policy_independent(self):
        # The merged queue's length trajectory does not depend on victim
        # choice, so every policy sheds exactly the same number of tuples.
        drops = {
            name: run(name).dropped
            for name in ("random", "head", "tail", "pattern-utility")
        }
        assert len(set(drops.values())) == 1, drops

    def test_pattern_utility_beats_random_recall(self):
        random_result = run("random")
        utility_result = run("pattern-utility")
        assert utility_result.drop_fraction == random_result.drop_fraction
        assert utility_result.recall > random_result.recall

    def test_overload_actually_sheds(self):
        assert run("random").drop_fraction > 0.05

    def test_ideal_recall_is_one(self):
        result = PatternPipeline(
            demo_catalog(),
            DEMO_PATTERN,
            PatternConfig(queue_capacity=1 << 20),
        ).run(EVENTS)
        assert result.dropped == 0
        assert result.recall == pytest.approx(1.0)


class TestMergeStreams:
    def test_orders_by_timestamp_then_rank(self):
        streams = {
            "B": [StreamTuple(1.0, (2,))],
            "A": [StreamTuple(1.0, (1,)), StreamTuple(2.0, (3,))],
        }
        merged = merge_streams(streams, ("A", "B"))
        assert [(s, t.row) for s, t in merged] == [
            ("A", (1,)),
            ("B", (2,)),
            ("A", (3,)),
        ]
