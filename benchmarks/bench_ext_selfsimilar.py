"""Extension — self-similar (Pareto on/off) traffic.

The paper motivates bursts with the self-similarity literature (Leland et
al.; Paxson & Floyd) but evaluates with a two-state Markov model, whose
burst lengths are geometric (light-tailed).  This bench reruns the Figure 9
comparison under Pareto-distributed on/off periods — burstiness at every
time scale, occasional enormous bursts — and checks that Data Triage's
dominance is not an artifact of the Markov model.
"""

from __future__ import annotations

import random

import pytest

from conftest import BENCH_PARAMS
from repro.core import DataTriagePipeline, PipelineConfig, ShedStrategy
from repro.engine import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.quality import ErrorSummary, run_rms
from repro.sources import ParetoBurstArrival, generate_stream, paper_row_generators

N_RUNS = 5
PEAKS = [1500, 4000]


def run_once(strategy, peak, seed):
    per_stream_base = peak / 100 / 3
    arrival = ParetoBurstArrival(
        base_rate=per_stream_base, burst_speedup=100.0, alpha=1.4
    )
    rng = random.Random(seed)
    gens = paper_row_generators()
    burst_gens = {k: g.shifted(25.0) for k, g in gens.items()}
    streams = {
        name: generate_stream(
            BENCH_PARAMS.tuples_per_stream, arrival, gens[name], burst_gens[name], rng
        )
        for name in ("R", "S", "T")
    }
    duration = max(s[-1].timestamp for s in streams.values())
    window = WindowSpec(width=duration / BENCH_PARAMS.n_windows)
    config = PipelineConfig(
        strategy=strategy,
        window=window,
        queue_capacity=BENCH_PARAMS.queue_capacity,
        service_time=BENCH_PARAMS.service_time,
        seed=seed,
    )
    return DataTriagePipeline(paper_catalog(), PAPER_QUERY, config).run(streams)


def summarize(strategy, peak) -> ErrorSummary:
    return ErrorSummary.from_values(
        [run_rms(run_once(strategy, peak, seed)) for seed in range(N_RUNS)]
    )


@pytest.mark.parametrize("peak", PEAKS)
def test_ext_selfsimilar(benchmark, peak):
    def measure():
        return {
            s: summarize(s, peak)
            for s in (
                ShedStrategy.DATA_TRIAGE,
                ShedStrategy.DROP_ONLY,
                ShedStrategy.SUMMARIZE_ONLY,
            )
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    triage = results[ShedStrategy.DATA_TRIAGE]
    drop = results[ShedStrategy.DROP_ONLY]
    summ = results[ShedStrategy.SUMMARIZE_ONLY]
    print(
        f"\nPareto on/off, peak {peak:.0f}: triage {triage.mean:.1f} ± "
        f"{triage.std:.1f}, drop-only {drop.mean:.1f} ± {drop.std:.1f}, "
        f"summarize-only {summ.mean:.1f} ± {summ.std:.1f}"
    )
    # The Figure 9 dominance must survive the heavier-tailed burst model.
    assert triage.mean <= drop.mean
    assert triage.mean <= summ.mean * 1.15
