"""Tracer ring buffer, event shapes, exports, validation, no-op path."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceError,
    Tracer,
    validate_chrome_trace,
)


class FakeClock:
    """A controllable clock so span durations are exact."""

    def __init__(self):
        self.t = 100.0

    def advance(self, dt):
        self.t += dt

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(capacity=16, clock=clock)


def test_span_records_complete_event(tracer, clock):
    with tracer.span("exact", cat="window", window=3):
        clock.advance(0.002)
    (e,) = tracer.events()
    assert e["ph"] == "X"
    assert e["name"] == "exact"
    assert e["cat"] == "window"
    assert e["ts"] == 0.0  # span opened at tracer start
    assert e["dur"] == pytest.approx(2000.0)  # 2ms in µs
    assert e["args"] == {"window": 3}


def test_complete_pairs_with_now(tracer, clock):
    t0 = tracer.now()
    clock.advance(0.5)
    t1 = tracer.now()
    clock.advance(1.0)  # work after t1 must not leak into the span
    tracer.complete("drain", t0, t1, polled=7)
    (e,) = tracer.events()
    assert e["dur"] == pytest.approx(500_000.0)
    assert e["args"]["polled"] == 7


def test_complete_defaults_end_to_current_clock(tracer, clock):
    t0 = tracer.now()
    clock.advance(0.25)
    tracer.complete("drain", t0)
    assert tracer.events()[0]["dur"] == pytest.approx(250_000.0)


def test_instant_and_counter_shapes(tracer):
    tracer.instant("window_close", cat="window", window=1)
    tracer.counter("queue_depth", 42.0, stream="R")
    close, depth = tracer.events()
    assert close["ph"] == "i" and close["s"] == "t"
    assert depth["ph"] == "C"
    assert depth["args"] == {"stream": "R", "queue_depth": 42.0}


def test_tuple_event_stamps_wall_clock_and_stream_time(tracer, clock):
    clock.advance(3.0)
    tracer.tuple_event("shed", "R", 17.5)
    (e,) = tracer.events()
    assert e["cat"] == "tuple"
    assert e["ts"] == pytest.approx(3e6)  # wall clock, µs since start
    assert e["args"] == {"source": "R", "t": 17.5}


def test_tuple_events_flag_silences_lifecycle_only(clock):
    tracer = Tracer(capacity=16, tuple_events=False, clock=clock)
    tracer.tuple_event("ingest", "R", 0.0)
    tracer.instant("window_close")
    assert [e["name"] for e in tracer.events()] == ["window_close"]


def test_ring_buffer_evicts_oldest_and_counts_dropped(tracer):
    for i in range(20):
        tracer.instant(f"e{i}")
    assert len(tracer) == 16
    assert tracer.emitted == 20
    assert tracer.dropped == 4
    assert tracer.events()[0]["name"] == "e4"  # oldest four evicted


def test_clear_resets_buffer_and_counts(tracer):
    tracer.instant("x")
    tracer.clear()
    assert len(tracer) == 0 and tracer.emitted == 0 and tracer.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_to_chrome_validates_and_roundtrips(tracer, clock):
    with tracer.span("merge"):
        clock.advance(0.001)
    tracer.tuple_event("enqueue", "S", 1.0)
    doc = tracer.to_chrome()
    events = validate_chrome_trace(doc)
    assert len(events) == 2
    assert doc["otherData"]["generator"] == "repro.obs.trace"
    # The document must survive a JSON round trip unchanged.
    assert json.loads(json.dumps(doc)) == doc


def test_to_jsonl_one_object_per_line(tracer):
    tracer.instant("a")
    tracer.instant("b")
    lines = tracer.to_jsonl().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


def test_write_both_formats(tracer, tmp_path):
    tracer.instant("a")
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    tracer.write(chrome, fmt="chrome")
    tracer.write(jsonl, fmt="jsonl")
    validate_chrome_trace(json.loads(chrome.read_text()))
    assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "a"
    with pytest.raises(ValueError):
        tracer.write(tmp_path / "t", fmt="xml")


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert isinstance(NULL_TRACER, NullTracer)
    with NULL_TRACER.span("anything"):
        pass
    NULL_TRACER.complete("drain", NULL_TRACER.now())
    NULL_TRACER.instant("x")
    NULL_TRACER.tuple_event("ingest", "R", 0.0)
    NULL_TRACER.counter("depth", 1.0)
    assert len(NULL_TRACER) == 0 and NULL_TRACER.emitted == 0


@pytest.mark.parametrize(
    "doc",
    [
        {},
        {"traceEvents": {}},
        {"traceEvents": ["nope"]},
        {"traceEvents": [{"name": "", "cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": -1, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": 0, "pid": "1", "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "X", "ts": 0, "pid": 1, "tid": 0}]},
        {"traceEvents": [{"name": "n", "cat": "c", "ph": "i", "ts": 0, "pid": 1, "tid": 0, "args": [1]}]},
    ],
)
def test_validate_rejects_malformed(doc):
    with pytest.raises(TraceError):
        validate_chrome_trace(doc)
