"""Load measurement and adaptive triage-queue sizing.

The "adaptive" in the paper's title is the architecture's behaviour — the
triage queue absorbs load changes instantly, with no mode switch — but a
deployment still has to pick the queue capacity.  This controller closes
that loop: it tracks the arrival rate and drop fraction with exponential
moving averages and recommends a capacity that (a) rides out bursts up to a
target length without dropping, while (b) bounding the staleness that a full
queue imposes on results (a queue of ``C`` tuples delays the engine by
``C * service_time`` seconds).

Used by the queue-capacity ablation and exposed through the public API; the
paper-figure experiments use fixed capacities as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.triage_queue import QueueStats

#: Observer callback signature: ``observer(metric_name, value)``.  Emitted
#: metrics: ``"arrival_rate"`` / ``"drop_fraction"`` after each
#: :meth:`LoadController.observe`, ``"recommended_capacity"`` after each
#: :meth:`LoadController.recommended_capacity`.  The service's telemetry
#: layer turns these into gauges; ``None`` costs nothing.
ControllerObserver = Callable[[str, float], None]


@dataclass
class LoadEstimate:
    """Smoothed view of one stream's load."""

    arrival_rate: float = 0.0  # tuples/sec, EWMA
    drop_fraction: float = 0.0  # EWMA of per-interval drop share
    shedding: bool = False


@dataclass
class LoadController:
    """EWMA load tracker + capacity recommendation.

    Call :meth:`observe` once per control interval with the interval's
    arrival count; read :meth:`recommended_capacity` to resize the queue
    between windows (resizing mid-window would skew per-window results).
    """

    alpha: float = 0.3  # EWMA smoothing factor
    max_staleness: float = 2.0  # seconds of backlog a full queue may hold
    min_capacity: int = 16
    max_capacity: int = 100_000
    estimate: LoadEstimate = field(default_factory=LoadEstimate)
    shrink_factor: float = 0.75  # capacity may drop at most this much per step
    observer: ControllerObserver | None = None
    _last_stats: tuple[int, int] = (0, 0)  # (offered, dropped) at last observe
    _last_capacity: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.max_staleness <= 0:
            raise ValueError("max_staleness must be positive")

    # ------------------------------------------------------------------
    def observe(self, interval_seconds: float, stats: QueueStats) -> LoadEstimate:
        """Fold one control interval's queue counters into the estimate."""
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        offered_before, dropped_before = self._last_stats
        offered = stats.offered - offered_before
        dropped = stats.dropped - dropped_before
        self._last_stats = (stats.offered, stats.dropped)

        rate = offered / interval_seconds
        frac = dropped / offered if offered else 0.0
        est = self.estimate
        est.arrival_rate = self.alpha * rate + (1 - self.alpha) * est.arrival_rate
        est.drop_fraction = self.alpha * frac + (1 - self.alpha) * est.drop_fraction
        est.shedding = est.drop_fraction > 1e-6
        if self.observer is not None:
            self.observer("arrival_rate", est.arrival_rate)
            self.observer("drop_fraction", est.drop_fraction)
        return est

    # ------------------------------------------------------------------
    def recommended_capacity(self, service_time: float) -> int:
        """Largest capacity whose full-queue backlog stays inside the bound.

        A queue of ``C`` tuples takes ``C * service_time`` engine-seconds to
        drain; capping that at ``max_staleness`` keeps triage from trading
        unbounded latency for accuracy.  While the queue is actively
        shedding, buffering is too scarce by definition, so the controller
        grows straight to that ceiling; when idle, capacity shrinks to one
        ``max_staleness`` worth of (mean) arrivals — smaller queues mean
        fresher results.
        """
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        staleness_cap = int(self.max_staleness / service_time)
        if self.estimate.shedding:
            capacity = staleness_cap
        else:
            arrival_cap = (
                int(self.estimate.arrival_rate * self.max_staleness)
                or staleness_cap
            )
            capacity = min(staleness_cap, max(arrival_cap, self.min_capacity))
        capacity = max(self.min_capacity, min(self.max_capacity, capacity))
        # Grow immediately, shrink gradually (hysteresis): one quiet control
        # interval between bursts must not collapse the buffer the next
        # burst needs.
        if self._last_capacity is not None and capacity < self._last_capacity:
            capacity = max(capacity, int(self._last_capacity * self.shrink_factor))
        self._last_capacity = capacity
        if self.observer is not None:
            self.observer("recommended_capacity", float(capacity))
        return capacity
