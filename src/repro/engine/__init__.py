"""The mini continuous-query engine (TelegraphCQ stand-in).

Schemas and stream tuples, scalar expressions, physical operators, time
windows, an object-relational UDF/UDT registry, a catalog, and a
window-at-a-time executor.  The Data Triage layer sits entirely *outside*
this engine, exactly as the paper's implementation sits outside the
TelegraphCQ core.
"""

from repro.engine.catalog import SYNOPSIS_STREAM_SCHEMA, Catalog, CatalogError, StreamDef
from repro.engine.executor import (
    ContinuousQuery,
    ExecutionError,
    QueryExecutor,
    QueryResult,
    WindowResult,
)
from repro.engine.explain import explain
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    ExpressionError,
    FunctionCall,
    Literal,
    UnaryOp,
    conjoin,
    conjuncts,
)
from repro.engine.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalOperator,
    Project,
    Scan,
    UnionAll,
)
from repro.engine.types import (
    Column,
    ColumnType,
    Schema,
    SchemaError,
    StreamTuple,
    parse_type_name,
)
from repro.engine.udf import FunctionSignature, UDFError, UDFRegistry
from repro.engine.window import WindowSpec, assign_windows, parse_window_clause

__all__ = [
    "Catalog",
    "CatalogError",
    "StreamDef",
    "SYNOPSIS_STREAM_SCHEMA",
    "ContinuousQuery",
    "ExecutionError",
    "QueryExecutor",
    "QueryResult",
    "WindowResult",
    "BinaryOp",
    "ColumnRef",
    "Expression",
    "ExpressionError",
    "FunctionCall",
    "Literal",
    "UnaryOp",
    "conjoin",
    "conjuncts",
    "AggregateSpec",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "NestedLoopJoin",
    "PhysicalOperator",
    "Project",
    "Scan",
    "UnionAll",
    "Column",
    "ColumnType",
    "Schema",
    "SchemaError",
    "StreamTuple",
    "parse_type_name",
    "FunctionSignature",
    "UDFError",
    "UDFRegistry",
    "WindowSpec",
    "assign_windows",
    "parse_window_clause",
    "explain",
]
