"""Service-level objectives with multi-window burn-rate alerting.

The paper's delay constraint and RMS-error curves (Figures 8-9) are
service-level objectives in all but name: "99% of windows answer within X
seconds", "at most 10% of windows exceed the error budget".  This module
states such targets declaratively and continuously scores a running system
against them, Google-SRE style:

* an :class:`SLO` names one measurement, a *threshold* that classifies each
  observation good or bad, and an *objective* — the fraction of
  observations that must be good;
* a :class:`SLOEngine` ingests observations (one per closed window, fed by
  the service) and evaluates **multi-window burn rates**: the error-budget
  consumption rate over a *fast* window (default 5x budget burn to fire)
  AND a *slow* window (default 1x).  Requiring both makes alerts respond
  within a couple of evaluation windows to real overload while one
  stray bad window inside a long quiet stretch stays silent;
* evaluation exports Prometheus gauges (``slo_burn_rate``,
  ``slo_error_budget_remaining``, ``slo_alert_firing``) and returns
  :class:`Alert` transition events that the service pushes to TELEMETRY
  subscribers.

Burn rate is the standard normalization: with error budget ``1 -
objective``, ``burn = bad_fraction / budget``.  A burn rate held at 1.0
spends exactly the budget over the objective's compliance period; 5.0
exhausts it five times as fast.

All time is injected (the service's window clock), so tests and
deterministic deployments drive evaluation explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SLO",
    "Alert",
    "SLOEngine",
    "default_service_slos",
    "audit_service_slos",
]


@dataclass(frozen=True)
class SLO:
    """One objective: ``value <= threshold`` is good; be good
    ``objective`` of the time."""

    name: str
    #: An observation strictly above this is a bad event.
    threshold: float
    #: Required good fraction (error budget = 1 - objective).
    objective: float = 0.9
    #: Burn-rate evaluation windows, seconds of service clock.
    fast_window: float = 30.0
    slow_window: float = 120.0
    #: Burn-rate thresholds; the alert fires only when BOTH are exceeded.
    fast_burn: float = 5.0
    slow_burn: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError(
                f"fast window ({self.fast_window}) must not exceed the "
                f"slow window ({self.slow_window})"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """The error budget: the tolerable bad-event fraction."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class Alert:
    """One SLO state transition (``firing`` or ``resolved``)."""

    slo: str
    state: str  # "firing" | "resolved"
    at: float
    burn_fast: float
    burn_slow: float
    budget_remaining: float
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "state": self.state,
            "at": self.at,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "budget_remaining": self.budget_remaining,
            "description": self.description,
        }


@dataclass
class _Tracked:
    slo: SLO
    #: (timestamp, bad) observations, oldest first, pruned to slow_window.
    events: deque = field(default_factory=deque)
    firing_since: float | None = None
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    budget_remaining: float = 1.0


def _burn(events, horizon: float, now: float, budget: float) -> float:
    """Budget burn rate over ``(now - horizon, now]`` (0.0 with no events)."""
    total = bad = 0
    for t, is_bad in reversed(events):
        if t <= now - horizon:
            break
        total += 1
        bad += is_bad
    if total == 0:
        return 0.0
    return (bad / total) / budget


class SLOEngine:
    """Evaluate a set of SLOs against observed measurements.

    ``registry`` (optional) receives the gauge/counter exports; without one
    the engine still tracks state and returns alerts.  ``max_events`` bounds
    per-SLO memory — windows close at a bounded rate, so the default holds
    far more history than any sane burn window needs.
    """

    def __init__(
        self,
        slos,
        registry: MetricsRegistry | None = None,
        *,
        max_events: int = 4096,
    ) -> None:
        self._tracked: dict[str, _Tracked] = {}
        for slo in slos:
            if slo.name in self._tracked:
                raise ValueError(f"duplicate SLO name {slo.name!r}")
            self._tracked[slo.name] = _Tracked(
                slo, deque(maxlen=max_events)
            )
        self.registry = registry
        self._g_burn = self._g_budget = self._g_firing = self._c_alerts = None
        if registry is not None:
            self._g_burn = registry.gauge(
                "slo_burn_rate",
                "Error-budget burn rate per SLO and evaluation window",
                ("slo", "window"),
            )
            self._g_budget = registry.gauge(
                "slo_error_budget_remaining",
                "Fraction of the error budget left over the slow window",
                ("slo",),
            )
            self._g_firing = registry.gauge(
                "slo_alert_firing", "1 while the SLO's alert is firing", ("slo",)
            )
            self._c_alerts = registry.counter(
                "slo_alerts_total", "Alert firings per SLO", ("slo",)
            )

    # ------------------------------------------------------------------
    @property
    def slos(self) -> list[SLO]:
        return [t.slo for t in self._tracked.values()]

    def observe(self, name: str, value: float, now: float) -> None:
        """Record one measurement for SLO ``name`` at service time ``now``.

        Unknown names are ignored (a feeder may emit more measurements than
        this engine tracks — e.g. ``rms_error`` when no error SLO is set).
        """
        tracked = self._tracked.get(name)
        if tracked is None:
            return
        tracked.events.append((now, 1 if value > tracked.slo.threshold else 0))
        self._prune(tracked, now)

    @staticmethod
    def _prune(tracked: _Tracked, now: float) -> None:
        horizon = now - tracked.slo.slow_window
        events = tracked.events
        while events and events[0][0] <= horizon:
            events.popleft()

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list[Alert]:
        """Score every SLO at ``now``; returns state *transitions* only.

        The currently-firing set stays available as :attr:`firing` — the
        telemetry payload ships both, so a subscriber that joined late
        still sees active alerts.
        """
        alerts: list[Alert] = []
        for tracked in self._tracked.values():
            slo = tracked.slo
            self._prune(tracked, now)
            events = tracked.events
            fast = _burn(events, slo.fast_window, now, slo.budget)
            slow = _burn(events, slo.slow_window, now, slo.budget)
            tracked.burn_fast = fast
            tracked.burn_slow = slow
            tracked.budget_remaining = max(0.0, 1.0 - slow)
            should_fire = fast >= slo.fast_burn and slow >= slo.slow_burn
            transition: str | None = None
            if should_fire and tracked.firing_since is None:
                tracked.firing_since = now
                transition = "firing"
                if self._c_alerts is not None:
                    self._c_alerts.inc(slo=slo.name)
            elif not should_fire and tracked.firing_since is not None:
                tracked.firing_since = None
                transition = "resolved"
            if self._g_burn is not None:
                self._g_burn.set(fast, slo=slo.name, window="fast")
                self._g_burn.set(slow, slo=slo.name, window="slow")
                self._g_budget.set(tracked.budget_remaining, slo=slo.name)
                self._g_firing.set(
                    1.0 if tracked.firing_since is not None else 0.0,
                    slo=slo.name,
                )
            if transition is not None:
                alerts.append(
                    Alert(
                        slo=slo.name,
                        state=transition,
                        at=now,
                        burn_fast=fast,
                        burn_slow=slow,
                        budget_remaining=tracked.budget_remaining,
                        description=slo.description,
                    )
                )
        return alerts

    @property
    def firing(self) -> list[str]:
        """Names of SLOs whose alert is currently firing (sorted)."""
        return sorted(
            name
            for name, t in self._tracked.items()
            if t.firing_since is not None
        )

    def status(self) -> dict:
        """JSON-safe snapshot: per-SLO burn rates, budget, firing state."""
        return {
            name: {
                "threshold": t.slo.threshold,
                "objective": t.slo.objective,
                "burn_fast": t.burn_fast,
                "burn_slow": t.burn_slow,
                "budget_remaining": t.budget_remaining,
                "firing": t.firing_since is not None,
                "firing_since": t.firing_since,
            }
            for name, t in sorted(self._tracked.items())
        }


def default_service_slos(window_width: float) -> list[SLO]:
    """The triage service's stock objectives, scaled to the window width.

    * ``window_staleness`` — a window's result must land within one extra
      window width of its close (the queue-sizing bound the paper argues
      for); 90% compliance, so a sustained overload fires within a couple
      of windows while an isolated stall does not.
    * ``result_latency_p99`` — the tight tail target: results within a
      quarter window width, 99% of windows.
    * ``shed_ratio`` — shedding more than half a window's arrivals is a
      bad window; 90% compliance (the error-budget side of Figure 9's
      accuracy curve).
    """
    width = float(window_width)
    if width <= 0:
        raise ValueError(f"window width must be positive: {window_width}")
    fast, slow = 4 * width, 16 * width
    return [
        SLO(
            "window_staleness",
            threshold=width,
            objective=0.9,
            fast_window=fast,
            slow_window=slow,
            description="window close -> result emission delay",
        ),
        SLO(
            "result_latency_p99",
            threshold=0.25 * width,
            objective=0.99,
            fast_window=fast,
            slow_window=slow,
            description="tail latency of per-window results",
        ),
        SLO(
            "shed_ratio",
            threshold=0.5,
            objective=0.9,
            fast_window=fast,
            slow_window=slow,
            description="fraction of a window's arrivals shed to synopses",
        ),
    ]


def audit_service_slos(window_width: float) -> list[SLO]:
    """Objectives over the audit ledger's attributed error, scaled like
    :func:`default_service_slos`.

    * ``attributed_error_burn`` — a window whose ledger-attributed error
      basis (RMS error when the pipeline computes ideals, shed fraction
      on the live service) exceeds 0.25 is a bad window; 90% compliance.
      This turns the attribution join into a burn-rate signal: sustained
      quality loss from shedding fires an alert even when raw drop
      counters look steady.

    Appended to the service's SLO set only when auditing is enabled, so
    an audit-off server's SLO state is byte-identical to before.
    """
    width = float(window_width)
    if width <= 0:
        raise ValueError(f"window width must be positive: {window_width}")
    return [
        SLO(
            "attributed_error_burn",
            threshold=0.25,
            objective=0.9,
            fast_window=4 * width,
            slow_window=16 * width,
            description="ledger-attributed per-window quality cost",
        ),
    ]
