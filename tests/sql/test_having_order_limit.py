"""Tests for HAVING / ORDER BY / LIMIT across parser, binder, executor."""

import pytest

from repro.algebra import Multiset
from repro.engine import QueryExecutor
from repro.sql import Binder, BindError, ParseError, parse_statement, render_statement


@pytest.fixture
def execute(paper_catalog):
    def _run(sql, inputs):
        bound = Binder(paper_catalog).bind(parse_statement(sql))
        return QueryExecutor(paper_catalog).execute(bound, inputs)

    return _run


INPUTS = {
    "s": Multiset(
        [(1, 10), (1, 20), (2, 30), (2, 40), (2, 50), (3, None), (3, 60)]
    )
}


class TestParsing:
    def test_full_clause_order(self):
        q = parse_statement(
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b "
            "HAVING n > 1 ORDER BY n DESC, b LIMIT 5"
        )
        assert q.having is not None
        assert [(o.ascending) for o in q.order_by] == [False, True]
        assert q.limit == 5

    def test_asc_keyword(self):
        q = parse_statement("SELECT b FROM S ORDER BY b ASC")
        assert q.order_by[0].ascending

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT b FROM S LIMIT 2.5")

    def test_render_roundtrip(self):
        sql = (
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b "
            "HAVING (n > 1) ORDER BY n DESC LIMIT 3;"
        )
        first = render_statement(parse_statement(sql))
        assert "HAVING" in first and "ORDER BY" in first and "LIMIT 3" in first
        assert render_statement(parse_statement(first)) == first


class TestBinding:
    def test_having_without_aggregate_rejected(self, paper_catalog):
        with pytest.raises(BindError, match="HAVING"):
            Binder(paper_catalog).bind(
                parse_statement("SELECT b FROM S HAVING b > 1")
            )


class TestExecution:
    def test_having_filters_groups(self, execute):
        res = execute(
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b HAVING n > 2", INPUTS
        )
        assert res.rows == Multiset([(2, 3)])

    def test_having_references_group_key(self, execute):
        res = execute(
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b HAVING b >= 2", INPUTS
        )
        assert res.rows == Multiset([(2, 3), (3, 2)])

    def test_order_by_asc(self, execute):
        res = execute("SELECT c FROM S ORDER BY c", INPUTS)
        values = [r[0] for r in res.ordered_rows]
        assert values == [10, 20, 30, 40, 50, 60, None]  # NULLs last

    def test_order_by_desc(self, execute):
        res = execute("SELECT c FROM S ORDER BY c DESC", INPUTS)
        values = [r[0] for r in res.ordered_rows]
        assert values == [60, 50, 40, 30, 20, 10, None]

    def test_multi_key_order(self, execute):
        res = execute("SELECT b, c FROM S ORDER BY b DESC, c ASC", INPUTS)
        assert res.ordered_rows[0][0] == 3
        twos = [r for r in res.ordered_rows if r[0] == 2]
        assert [r[1] for r in twos] == [30, 40, 50]

    def test_limit(self, execute):
        res = execute("SELECT c FROM S ORDER BY c LIMIT 2", INPUTS)
        assert res.ordered_rows == [(10,), (20,)]
        assert len(res.rows) == 2

    def test_limit_zero(self, execute):
        res = execute("SELECT c FROM S LIMIT 0", INPUTS)
        assert res.ordered_rows == []
        assert len(res.rows) == 0

    def test_limit_without_order(self, execute):
        res = execute("SELECT c FROM S LIMIT 3", INPUTS)
        assert len(res.ordered_rows) == 3

    def test_top_k_aggregate(self, execute):
        res = execute(
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b ORDER BY n DESC LIMIT 1",
            INPUTS,
        )
        assert res.ordered_rows == [(2, 3)]

    def test_no_order_no_limit_has_no_ordered_rows(self, execute):
        res = execute("SELECT c FROM S", INPUTS)
        assert res.ordered_rows is None
