"""Per-operator profiling: EXPLAIN ANALYZE for both execution modes.

:func:`profile_execution` runs a bound query over one window's inputs and
returns the result together with an :class:`OperatorProfile` tree — rows
out, invocations, and inclusive wall time per plan node — for either
executor mode:

* **compiled** — the cached :class:`~repro.perf.compile.CompiledNode` tree
  is *never mutated* (it is shared across windows and cached per executor);
  instead each node is shallow-copied and its child links are replaced with
  counting proxies, so the profiled tree is a throwaway parallel structure;
* **interpreted** — the physical plan is built fresh for the call (exactly
  as :meth:`~repro.engine.executor.QueryExecutor.execute_interpreted`
  does per window) and wrapped the same way.

Timing is *inclusive*: a node's seconds cover everything spent producing
its rows, children included — the same convention as PostgreSQL's
``EXPLAIN ANALYZE`` actual-time column.  :func:`render_profile` derives the
exclusive ("self") share by subtracting the children.

Profiling wraps every ``next()`` in a clock read, so a profiled execution
is slower than a plain one; use it to find *where* time goes, and the bench
harness (:mod:`repro.perf.bench`) to measure *how fast* the plain path is.
"""

from __future__ import annotations

import copy
import io
import time
from dataclasses import dataclass, field

from repro.algebra.multiset import Multiset
from repro.engine.executor import QueryResult, _order_rows

__all__ = ["OperatorProfile", "ProfileReport", "profile_execution", "render_profile"]


@dataclass
class OperatorProfile:
    """One plan node's counters: rows out, invocations, inclusive seconds."""

    name: str
    detail: str = ""
    rows_out: int = 0
    invocations: int = 0
    seconds: float = 0.0
    children: list["OperatorProfile"] = field(default_factory=list)

    @property
    def rows_in(self) -> int:
        """Rows the node consumed: the sum of its children's outputs."""
        return sum(c.rows_out for c in self.children)

    @property
    def self_seconds(self) -> float:
        """Exclusive time: inclusive minus the children's inclusive time."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def find(self, name: str) -> "OperatorProfile | None":
        """First node named ``name`` in pre-order (self, then children)."""
        if self.name == name:
            return self
        for c in self.children:
            hit = c.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "detail": self.detail,
            "rows_out": self.rows_out,
            "rows_in": self.rows_in,
            "invocations": self.invocations,
            "seconds": self.seconds,
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class ProfileReport:
    """One profiled execution: the window result, the tree, and the mode."""

    result: QueryResult
    root: OperatorProfile
    mode: str  # "compiled" | "interpreted"

    @property
    def seconds(self) -> float:
        return self.root.seconds


# ---------------------------------------------------------------------------
# Counting proxies
# ---------------------------------------------------------------------------
_CLOCK = time.perf_counter


class _ProfiledIter:
    """Wraps an iterable: counts rows and charges pull time to ``prof``.

    The clock brackets each ``next()`` on the wrapped iterator, so a node is
    charged for its own work *and* its subtree's — inclusive time.  Children
    are themselves wrapped, so the exclusive share falls out by subtraction.
    """

    __slots__ = ("_inner", "_prof")

    def __init__(self, inner, prof: OperatorProfile) -> None:
        self._inner = inner
        self._prof = prof

    def __iter__(self):
        prof = self._prof
        prof.invocations += 1
        it = iter(self._inner)
        clock = _CLOCK
        while True:
            t0 = clock()
            try:
                row = next(it)
            except StopIteration:
                prof.seconds += clock() - t0
                return
            prof.seconds += clock() - t0
            prof.rows_out += 1
            yield row


class _CompiledProxy:
    """Stands in for a compiled node's child: same rows, counted.

    Forwards both execution faces — ``iterate`` (per-row, wrapped in the
    per-``next()`` clock) and ``batch`` (the PR 7 vectorized whole-window
    path, bracketed once) — so parents that prefer ``batch`` via
    :func:`~repro.perf.compile._rows_of` still report the rows that flowed
    through this node.
    """

    __slots__ = ("_node", "_prof")

    def __init__(self, node, prof: OperatorProfile) -> None:
        self._node = node
        self._prof = prof

    @property
    def schema(self):
        return self._node.schema

    def iterate(self, inputs):
        return iter(_ProfiledIter(_BoundIterate(self._node, inputs), self._prof))

    def batch(self, inputs):
        prof = self._prof
        prof.invocations += 1
        t0 = _CLOCK()
        rows = self._node.batch(inputs)
        prof.seconds += _CLOCK() - t0
        prof.rows_out += len(rows)
        return rows


class _CompiledJoinProxy(_CompiledProxy):
    """Join proxy additionally forwarding the COUNT(*) pushdown probe.

    ``left_match_counts`` never materializes joined rows, so the proxy
    charges its time and counts the *logical* fan-out (``sum(mult)``) as
    rows out — the same cardinality ``batch`` would have reported.  The
    ``left`` forward lets the aggregate's key-position check see the join's
    left schema through the proxy.
    """

    __slots__ = ()

    @property
    def left(self):
        return self._node.left

    def left_match_counts(self, inputs):
        prof = self._prof
        prof.invocations += 1
        t0 = _CLOCK()
        lrows, mult = self._node.left_match_counts(inputs)
        prof.seconds += _CLOCK() - t0
        prof.rows_out += sum(mult)
        return lrows, mult


class _BoundIterate:
    """Adapter giving ``node.iterate(inputs)`` an ``__iter__`` face."""

    __slots__ = ("_node", "_inputs")

    def __init__(self, node, inputs) -> None:
        self._node = node
        self._inputs = inputs

    def __iter__(self):
        return iter(self._node.iterate(self._inputs))


# ---------------------------------------------------------------------------
# Node labelling
# ---------------------------------------------------------------------------
_NODE_NAMES = {
    "Scan": "Scan",
    "_CScan": "Scan",
    "Filter": "Filter",
    "_CFilter": "Filter",
    "Project": "Project",
    "_CProject": "Project",
    "HashJoin": "HashJoin",
    "_CHashJoin": "HashJoin",
    "NestedLoopJoin": "NestedLoopJoin",
    "_CNestedLoop": "NestedLoopJoin",
    "HashAggregate": "HashAggregate",
    "_CAggregate": "HashAggregate",
    "_Distinct": "Distinct",
    "_CDistinct": "Distinct",
    "UnionAll": "UnionAll",
    "_CSubquery": "Subquery",
}


def _label(node) -> tuple[str, str]:
    cls = type(node).__name__
    name = _NODE_NAMES.get(cls, cls)
    detail = ""
    if name == "Scan":
        key = getattr(node, "key", None)  # compiled scans carry the stream
        detail = key if key else ""
    return name, detail


# ---------------------------------------------------------------------------
# Compiled-tree wrapping (shallow-copy, never mutate the cached plan)
# ---------------------------------------------------------------------------
def _wrap_compiled_node(node) -> tuple[_CompiledProxy, OperatorProfile]:
    name, detail = _label(node)
    prof = OperatorProfile(name=name, detail=detail)
    clone = copy.copy(node)
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            proxy, child_prof = _wrap_compiled_node(child)
            setattr(clone, attr, proxy)
            prof.children.append(child_prof)
    inner = getattr(node, "inner", None)
    if inner is not None:  # _CSubquery: its body is a whole compiled query
        wrapped, inner_prof = _wrap_compiled_plan(inner)
        clone.inner = wrapped
        prof.children.append(inner_prof)
    proxy_cls = (
        _CompiledJoinProxy
        if hasattr(node, "left_match_counts")
        else _CompiledProxy
    )
    return proxy_cls(clone, prof), prof


def _wrap_compiled_plan(plan) -> tuple[object, OperatorProfile]:
    """A profiled stand-in for a CompiledQuery / CompiledUnion."""
    queries = getattr(plan, "queries", None)
    if queries is not None:  # CompiledUnion
        clone = copy.copy(plan)
        prof = OperatorProfile(name="UnionAll", invocations=1)
        wrapped = []
        for q in queries:
            wq, qp = _wrap_compiled_plan(q)
            wrapped.append(wq)
            prof.children.append(qp)
        clone.queries = wrapped
        return clone, prof
    clone = copy.copy(plan)  # CompiledQuery
    proxy, prof = _wrap_compiled_node(plan.root)
    clone.root = proxy
    return clone, prof


# ---------------------------------------------------------------------------
# Interpreted-tree wrapping
# ---------------------------------------------------------------------------
def _wrap_physical(node) -> tuple[_ProfiledIter, OperatorProfile]:
    name, detail = _label(node)
    prof = OperatorProfile(name=name, detail=detail)
    clone = copy.copy(node)
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if child is not None:
            proxy, child_prof = _wrap_physical(child)
            setattr(clone, attr, proxy)
            prof.children.append(child_prof)
    children = getattr(node, "children", None)
    if children is not None:  # UnionAll
        wrapped = []
        for child in children:
            proxy, child_prof = _wrap_physical(child)
            wrapped.append(proxy)
            prof.children.append(child_prof)
        clone.children = wrapped
    return _ProfiledIter(clone, prof), prof


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def profile_execution(executor, bound, inputs) -> ProfileReport:
    """Run ``bound`` over ``inputs`` with per-operator counters.

    Takes the same path :meth:`QueryExecutor.execute` would — the cached
    compiled plan when the executor runs compiled and the query compiled
    successfully, the interpreted plan otherwise — so the profile describes
    the plan that actually runs in production, and the returned result is
    identical to an unprofiled execution.
    """
    if executor.compiled:
        plan = executor._compiled_plan(bound)
        if plan is not None:
            wrapped, root = _wrap_compiled_plan(plan)
            t0 = _CLOCK()
            result = wrapped.execute(inputs)
            elapsed = _CLOCK() - t0
            _finish_synthetic(root, result, elapsed)
            return ProfileReport(result=result, root=root, mode="compiled")
    result, root = _profile_interpreted(executor, bound, inputs)
    return ProfileReport(result=result, root=root, mode="interpreted")


def _finish_synthetic(prof: OperatorProfile, result: QueryResult, elapsed: float) -> None:
    """Fill counters for container nodes that never iterate rows themselves."""
    if prof.name == "UnionAll" and prof.rows_out == 0:
        prof.rows_out = len(result.rows)
        prof.seconds = elapsed


def _profile_interpreted(executor, bound, inputs) -> tuple[QueryResult, OperatorProfile]:
    from repro.sql.binder import BoundQuery, BoundUnion

    if isinstance(bound, BoundUnion):
        prof = OperatorProfile(name="UnionAll", invocations=1)
        rows = Multiset()
        schema = None
        t0 = _CLOCK()
        for q in bound.queries:
            r, arm = _profile_interpreted(executor, q, inputs)
            prof.children.append(arm)
            rows = rows + r.rows
            schema = schema or r.schema
        prof.seconds = _CLOCK() - t0
        prof.rows_out = len(rows)
        return QueryResult(rows=rows, schema=schema), prof
    if not isinstance(bound, BoundQuery):
        raise TypeError(f"cannot profile {type(bound).__name__}")
    plan = executor._plan(bound, inputs)
    proxy, prof = _wrap_physical(plan)
    # Replicate execute_interpreted's tail over the wrapped tree.
    if not bound.order_by and bound.limit is None:
        return QueryResult(rows=Multiset(iter(proxy)), schema=plan.schema), prof
    rows = list(proxy)
    if bound.order_by:
        rows = _order_rows(rows, plan.schema, bound.order_by, executor._functions)
    if bound.limit is not None:
        rows = rows[: bound.limit]
    return (
        QueryResult(rows=Multiset(rows), schema=plan.schema, ordered_rows=rows),
        prof,
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def render_profile(report: ProfileReport) -> str:
    """EXPLAIN ANALYZE text: the profiled tree plus a totals line."""
    out = io.StringIO()
    out.write(f"EXPLAIN ANALYZE ({report.mode})\n")

    def render(prof: OperatorProfile, indent: int) -> None:
        label = prof.name + (f" {prof.detail}" if prof.detail else "")
        out.write(
            "  " * indent
            + f"{label}  (rows={prof.rows_out} loops={prof.invocations} "
            + f"time={_fmt_ms(prof.seconds)} self={_fmt_ms(prof.self_seconds)})\n"
        )
        for c in prof.children:
            render(c, indent + 1)

    render(report.root, 1)
    out.write(
        f"Execution: {len(report.result.rows)} row(s) in {_fmt_ms(report.seconds)}\n"
    )
    return out.getvalue()
