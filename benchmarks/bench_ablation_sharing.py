"""Ablation — sharing dropped-tuple synopses across queries (Future Work §8.1).

*"We have not explored the possibility of sharing synopses of the dropped
tuples across queries.  With inexpensive synopsis schemes this may be
unnecessary, but with more complex synopses this may become an important
optimization."*

Three concurrent queries over the shared R/S/T streams run through one
:class:`SharedTriageRuntime`.  Reported per synopsis scheme: the sharing
ratio (synopsis cells a per-query deployment would need / cells the shared
deployment stores) and the shared run's accuracy, confirming the paper's
conjecture: cheap sparse histograms barely care, larger MHISTs benefit
substantially.
"""

from __future__ import annotations

import random

import pytest

from repro.core import PipelineConfig, ShedStrategy, SharedTriageRuntime
from repro.engine import WindowSpec
from repro.experiments import paper_catalog
from repro.quality import run_rms
from repro.sources import SteadyArrival, generate_stream, paper_row_generators
from repro.synopses import MHistFactory, SparseHistogramFactory

QUERIES = {
    "three_way": (
        "SELECT a, COUNT(*) AS n FROM R, S, T "
        "WHERE R.a = S.b AND S.c = T.d GROUP BY a;"
    ),
    "two_way": "SELECT c, COUNT(*) AS n FROM S, T WHERE S.c = T.d GROUP BY c;",
    "single": "SELECT d, COUNT(*) AS n FROM T GROUP BY d;",
}

SCHEMES = {
    "sparse_hist(w=5)": SparseHistogramFactory(bucket_width=5),
    "mhist(b=60)": MHistFactory(max_buckets=60, grid=5),
}


def build_streams(seed):
    rng = random.Random(seed)
    gens = paper_row_generators()
    return {
        name: generate_stream(600, SteadyArrival(250.0), gens[name], None, rng)
        for name in ("R", "S", "T")
    }


def run_shared(factory):
    config = PipelineConfig(
        strategy=ShedStrategy.DATA_TRIAGE,
        window=WindowSpec(width=0.5),
        queue_capacity=30,
        service_time=1 / 400.0,
        synopsis_factory=factory,
        seed=3,
    )
    runtime = SharedTriageRuntime(paper_catalog(), QUERIES, config)
    return runtime.run(build_streams(seed=5))


@pytest.mark.parametrize("scheme", list(SCHEMES))
def test_ablation_sharing(benchmark, scheme):
    result = benchmark.pedantic(
        run_shared, args=(SCHEMES[scheme],), rounds=1, iterations=1
    )
    errors = {qid: run_rms(run) for qid, run in result.per_query.items()}
    print(
        f"\n{scheme}: sharing ratio {result.sharing_ratio:.2f}x "
        f"({result.unshared_synopsis_cells} cells unshared vs "
        f"{result.shared_synopsis_cells} shared); "
        + "  ".join(f"{q}: RMS {e:.1f}" for q, e in errors.items())
    )
    assert result.total_dropped > 0  # the workload actually sheds
    assert result.sharing_ratio > 1.5  # three queries share two streams+
    # Every query still gets a usable composite answer.
    for qid, run in result.per_query.items():
        for w in run.windows:
            ideal_total = sum(v["n"] or 0 for v in w.ideal.values())
            merged_total = sum(v["n"] or 0 for v in w.merged.values())
            if ideal_total > 20:
                assert merged_total == pytest.approx(ideal_total, rel=0.5), qid
