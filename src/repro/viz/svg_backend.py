"""SVG rendering of detail-in-context scenes.

Produces a standalone SVG document matching Figure 3's visual encoding:
blue circles for exact result tuples, red rectangles with opacity
proportional to estimated lost-result mass.
"""

from __future__ import annotations

import io

from repro.viz.scene import Scene

POINT_COLOR = "#1f4e9c"  # blue
RECT_COLOR = "#c22f2f"  # red
MARGIN = 40


def render_svg(scene: Scene, width: int = 480, height: int = 360) -> str:
    """Render a scene as an SVG document string."""
    x0, x1 = scene.x_domain
    y0, y1 = scene.y_domain
    if x1 <= x0 or y1 <= y0:
        raise ValueError("degenerate scene domain")
    plot_w = width - 2 * MARGIN
    plot_h = height - 2 * MARGIN

    def sx(x: float) -> float:
        return MARGIN + (x - x0) / (x1 - x0) * plot_w

    def sy(y: float) -> float:
        return MARGIN + plot_h - (y - y0) / (y1 - y0) * plot_h

    out = io.StringIO()
    out.write(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
    )
    out.write(f'  <title>{_escape(scene.title)}</title>\n')
    out.write(
        f'  <rect x="{MARGIN}" y="{MARGIN}" width="{plot_w}" height="{plot_h}" '
        'fill="white" stroke="#444"/>\n'
    )
    for rect in scene.rects:
        rx, ry = sx(rect.x0), sy(rect.y1)
        rw = sx(rect.x1) - sx(rect.x0)
        rh = sy(rect.y0) - sy(rect.y1)
        opacity = 0.15 + 0.75 * rect.intensity
        out.write(
            f'  <rect x="{rx:.2f}" y="{ry:.2f}" width="{rw:.2f}" '
            f'height="{rh:.2f}" fill="{RECT_COLOR}" '
            f'fill-opacity="{opacity:.3f}" stroke="none"/>\n'
        )
    for p in scene.points:
        r = 2.0 + min(3.0, 0.5 * (p.weight - 1))
        out.write(
            f'  <circle cx="{sx(p.x):.2f}" cy="{sy(p.y):.2f}" r="{r:.2f}" '
            f'fill="{POINT_COLOR}"/>\n'
        )
    out.write(
        f'  <text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        f'font-size="12">{_escape(scene.x_label)}</text>\n'
    )
    out.write(
        f'  <text x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'font-size="12" transform="rotate(-90 14 {height / 2:.0f})">'
        f"{_escape(scene.y_label)}</text>\n"
    )
    out.write(
        f'  <text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="13" font-weight="bold">{_escape(scene.title)}</text>\n'
    )
    out.write("</svg>\n")
    return out.getvalue()


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
