"""Render AST nodes back to SQL text.

Used by the Data Triage rewriter to emit the CREATE VIEW statements of paper
Figures 4 and 5, and by round-trip tests (parse → render → parse).
"""

from __future__ import annotations

from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.sql.ast import (
    CreateStreamStmt,
    CreateViewStmt,
    Query,
    SelectStmt,
    Star,
    Statement,
    SubquerySource,
    TableRef,
    UnionAllStmt,
)


def render_expression(expr: Expression | Star) -> str:
    """SQL text of an expression tree."""
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, ColumnRef):
        return expr.qualified
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if expr.value is True:
            return "TRUE"
        if expr.value is False:
            return "FALSE"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(expr.value)
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op.isalpha() else expr.op
        return f"({render_expression(expr.left)} {op} {render_expression(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op.upper()} {render_expression(expr.operand)})"
    if isinstance(expr, FunctionCall):
        if (
            len(expr.args) == 1
            and isinstance(expr.args[0], Literal)
            and expr.args[0].value == "*"
        ):
            return f"{expr.name}(*)"
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def render_query(query: Query, indent: int = 0) -> str:
    """SQL text of a SELECT / UNION ALL tree, lightly pretty-printed."""
    pad = "  " * indent
    if isinstance(query, UnionAllStmt):
        parts = []
        for q in query.queries:
            parts.append(f"{pad}({render_query(q, indent + 1).lstrip()})")
        return ("\n" + pad + "UNION ALL\n").join(parts)
    assert isinstance(query, SelectStmt)
    items = ", ".join(
        render_expression(i.expr) + (f" AS {i.alias}" if i.alias else "")
        for i in query.items
    )
    sources = []
    for s in query.from_sources:
        if isinstance(s, TableRef):
            sources.append(s.name + (f" {s.alias}" if s.alias else ""))
        else:
            assert isinstance(s, SubquerySource)
            inner = render_query(s.query, indent + 1)
            sources.append(f"({inner})" + (f" {s.alias}" if s.alias else ""))
    text = f"{pad}SELECT {'DISTINCT ' if query.distinct else ''}{items}"
    text += f"\n{pad}FROM " + ", ".join(sources)
    if query.where is not None:
        text += f"\n{pad}WHERE {render_expression(query.where)}"
    if query.group_by:
        text += f"\n{pad}GROUP BY " + ", ".join(
            render_expression(e) for e in query.group_by
        )
    if query.having is not None:
        text += f"\n{pad}HAVING {render_expression(query.having)}"
    if query.order_by:
        text += f"\n{pad}ORDER BY " + ", ".join(
            render_expression(o.expr) + ("" if o.ascending else " DESC")
            for o in query.order_by
        )
    if query.limit is not None:
        text += f"\n{pad}LIMIT {query.limit}"
    if query.windows:
        text += f"\n{pad}WINDOW " + ", ".join(
            f"{w.table} ['{w.interval}']" for w in query.windows
        )
    return text


def render_statement(stmt: Statement) -> str:
    """SQL text of a full statement, semicolon-terminated."""
    if isinstance(stmt, CreateStreamStmt):
        cols = ", ".join(f"{c.name} {c.type_name}" for c in stmt.columns)
        return f"CREATE STREAM {stmt.name} ({cols});"
    if isinstance(stmt, CreateViewStmt):
        return f"CREATE VIEW {stmt.name} AS\n{render_query(stmt.query, 1)};"
    if isinstance(stmt, (SelectStmt, UnionAllStmt)):
        return render_query(stmt) + ";"
    raise TypeError(f"cannot render {type(stmt).__name__}")
