"""Pattern-engine semantics: Kleene, WITHIN, run shedding, protection."""

import pytest

from repro.cep import PatternEngine, UtilityModel, demo_catalog, match_identity
from repro.engine.types import StreamTuple
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement

FULL = "PATTERN SEQ(A a, B+ b, C c) WHERE a.k = b.k AND b.k = c.k WITHIN 2"


def bind(text: str):
    return Binder(demo_catalog()).bind_pattern(parse_statement(text))


def feed(engine, events):
    matches = []
    for stream, ts, key in events:
        matches.extend(engine.consume(stream, StreamTuple(ts, (key,))))
    return matches


class TestMatching:
    def test_full_sequence_with_kleene(self):
        engine = PatternEngine(bind(FULL))
        matches = feed(
            engine,
            [("A", 0.1, 7), ("B", 0.2, 7), ("B", 0.3, 7), ("C", 0.4, 7)],
        )
        assert len(matches) == 1
        # (match_start, match_end, a_k, b_count, b_k, c_k)
        assert matches[0].row == (0.1, 0.4, 7, 2, 7, 7)

    def test_key_mismatch_blocks_match(self):
        engine = PatternEngine(bind(FULL))
        matches = feed(
            engine, [("A", 0.1, 7), ("B", 0.2, 7), ("C", 0.3, 8)]
        )
        assert matches == []

    def test_within_expiry(self):
        engine = PatternEngine(bind(FULL))
        matches = feed(
            engine,
            [("A", 0.0, 7), ("B", 0.5, 7), ("C", 3.0, 7)],
        )
        assert matches == []
        assert engine.stats.runs_expired >= 1

    def test_skip_till_next_match_overlap(self):
        # Two open A's with the same key: one closing C completes both runs.
        engine = PatternEngine(bind(FULL))
        matches = feed(
            engine,
            [("A", 0.1, 7), ("A", 0.15, 7), ("B", 0.2, 7), ("C", 0.3, 7)],
        )
        assert len(matches) == 2
        assert sorted(m.row[0] for m in matches) == [0.1, 0.15]

    def test_trailing_kleene_emits_at_first_absorb(self):
        engine = PatternEngine(
            bind("PATTERN SEQ(A a, B+ b) WHERE a.k = b.k WITHIN 2")
        )
        matches = feed(engine, [("A", 0.1, 7), ("B", 0.2, 7), ("B", 0.3, 7)])
        assert len(matches) == 1
        assert matches[0].row[:2] == (0.1, 0.2)

    def test_single_step_pattern(self):
        engine = PatternEngine(bind("PATTERN SEQ(A a) WITHIN 1"))
        matches = feed(engine, [("A", 0.1, 1), ("A", 0.2, 2)])
        assert [m.row for m in matches] == [(0.1, 0.1, 1), (0.2, 0.2, 2)]

    def test_ignores_unrelated_stream_events(self):
        engine = PatternEngine(bind(FULL))
        matches = feed(
            engine,
            [("A", 0.1, 7), ("B", 0.2, 9), ("B", 0.25, 7), ("C", 0.3, 7)],
        )
        assert len(matches) == 1
        assert matches[0].row[3] == 1  # only the k=7 B absorbed

    def test_match_identity_robust_to_kleene_count(self):
        pattern = bind(FULL)
        one = PatternEngine(pattern)
        two = PatternEngine(pattern)
        (m1,) = feed(one, [("A", 0.1, 7), ("B", 0.2, 7), ("C", 0.4, 7)])
        (m2,) = feed(
            two, [("A", 0.1, 7), ("B", 0.2, 7), ("B", 0.3, 7), ("C", 0.4, 7)]
        )
        assert m1.row != m2.row
        assert match_identity(pattern, m1.row) == match_identity(pattern, m2.row)


class TestMemoryBound:
    def test_max_runs_sheds_lowest_utility(self):
        engine = PatternEngine(bind(FULL), max_runs=2)
        feed(engine, [("A", 0.0, 1), ("A", 0.1, 2), ("A", 0.2, 3)])
        assert engine.active_runs == 2
        assert engine.stats.runs_shed == 1
        # Equal progress: the oldest run (least remaining lifetime) goes.
        assert [rid for rid, _, _ in engine.run_snapshot()] == [1, 2]

    def test_max_runs_validation(self):
        with pytest.raises(ValueError):
            PatternEngine(bind(FULL), max_runs=0)


class TestProtection:
    def test_keyed_protection_from_equijoin(self):
        engine = PatternEngine(bind(FULL))
        feed(engine, [("A", 0.1, 7)])
        protection = engine.protection_index()
        assert protection.protects("B", (7,))
        assert not protection.protects("B", (8,))
        assert not protection.protects("C", (7,))  # C not reachable yet

    def test_open_kleene_protects_next_step_too(self):
        engine = PatternEngine(bind(FULL))
        feed(engine, [("A", 0.1, 7), ("B", 0.2, 7)])
        protection = engine.protection_index()
        assert protection.protects("B", (7,))  # more Kleene absorbs
        assert protection.protects("C", (7,))  # or advance to the close
        assert not protection.protects("C", (8,))

    def test_unkeyed_step_protects_whole_stream(self):
        engine = PatternEngine(bind("PATTERN SEQ(A a, C c) WITHIN 2"))
        feed(engine, [("A", 0.1, 7)])
        protection = engine.protection_index()
        assert protection.protects("C", (123,))

    def test_index_is_a_live_view(self):
        # The protection index is maintained incrementally on run
        # transitions: one stable object whose answers track engine state,
        # never a rebuilt snapshot.
        engine = PatternEngine(bind(FULL))
        feed(engine, [("A", 0.1, 7)])
        first = engine.protection_index()
        assert engine.protection_index() is first
        assert not first.protects("B", (8,))
        feed(engine, [("A", 0.2, 8)])
        assert engine.protection_index() is first
        assert first.protects("B", (8,))  # same object, updated answer


class TestObserverAndUtility:
    def test_observer_event_counts_match_stats(self):
        events: dict[str, float] = {}
        engine = PatternEngine(
            bind(FULL),
            observer=lambda e, v: events.__setitem__(e, events.get(e, 0) + v),
        )
        feed(
            engine,
            [("A", 0.0, 7), ("B", 0.1, 7), ("C", 0.2, 7), ("A", 5.0, 9)],
        )
        stats = engine.stats
        assert events.get("run_start", 0) == stats.runs_started
        assert events.get("run_extend", 0) == stats.runs_extended
        assert events.get("match", 0) == stats.matches == 1
        assert events.get("run_expire", 0) == stats.runs_expired

    def test_utility_model_learns_contribution(self):
        model = UtilityModel(within=2.0, bins=4)
        engine = PatternEngine(bind(FULL), utility=model)
        feed(engine, [("A", 0.1, 7), ("B", 0.2, 7), ("C", 0.4, 7)])
        # Every A seen so far contributed; with Laplace smoothing the
        # probability is strictly above the uninformed prior of 0.5.
        assert model.probability("A", 0.1) > 0.5

    def test_utility_prior_is_half(self):
        model = UtilityModel(within=2.0, bins=4)
        assert model.probability("A", 0.3) == pytest.approx(0.5)
