"""offer_bulk must equal an offer loop even when DROP_INCOMING fires mid-batch."""

import dataclasses

from repro.core.policies import DROP_INCOMING, DropPolicy
from repro.core.triage_queue import TriageQueue
from repro.engine.types import StreamTuple
from repro.engine.window import WindowSpec
from repro.synopses import Dimension, SparseHistogramFactory


class AlternatingPolicy(DropPolicy):
    """Deterministically alternates DROP_INCOMING with head eviction.

    Stateful on purpose: the decision sequence depends only on how many
    overflows happened, so the offer loop and offer_bulk face identical
    decision streams and any divergence in bookkeeping shows up.
    """

    def __init__(self):
        self.calls = 0

    def select_victim(self, buffer, incoming, context):
        self.calls += 1
        return DROP_INCOMING if self.calls % 2 else 0


def make_queue(observer=None):
    return TriageQueue(
        name="R",
        dimensions=[Dimension("R.a", 0, 100)],
        dim_positions=[0],
        capacity=4,
        policy=AlternatingPolicy(),
        synopsis_factory=SparseHistogramFactory(bucket_width=5),
        window=WindowSpec(width=1.0),
        summarize=True,
        seed=7,
        observer=observer,
    )


def workload():
    # 3 windows, 30 tuples against capacity 4: plenty of mid-batch
    # overflows, with both decision branches taken repeatedly.
    return [StreamTuple(i * 0.1, (i % 20, i)) for i in range(30)]


class TestOfferBulkParity:
    def test_stats_buffer_and_observer_match_offer_loop(self):
        observed: dict[str, dict[str, float]] = {"loop": {}, "bulk": {}}
        dispatches: dict[str, int] = {"loop": 0, "bulk": 0}

        def observer_for(tag):
            def observe(name, event, value):
                assert name == "R"
                observed[tag][event] = observed[tag].get(event, 0.0) + value
                dispatches[tag] += 1

            return observe

        loop_q = make_queue(observer_for("loop"))
        bulk_q = make_queue(observer_for("bulk"))

        batch = workload()
        for tup in batch:
            loop_q.offer(tup)
        dropped = bulk_q.offer_bulk(batch)

        assert dataclasses.asdict(loop_q.stats) == dataclasses.asdict(
            bulk_q.stats
        )
        assert dropped == loop_q.stats.dropped > 0
        # Both decision branches actually fired mid-batch.
        assert observed["loop"]["drop_incoming"] > 0
        assert observed["loop"]["evict_buffered"] > 0
        # Same aggregated event totals, via fewer bulk dispatches.
        assert observed["loop"] == observed["bulk"]
        assert dispatches["bulk"] < dispatches["loop"]
        assert loop_q.drain() == bulk_q.drain()

    def test_window_accounting_matches_offer_loop(self):
        loop_q = make_queue()
        bulk_q = make_queue()
        batch = workload()
        for tup in batch:
            loop_q.offer(tup)
        bulk_q.offer_bulk(batch)
        assert loop_q.windows_with_drops() == bulk_q.windows_with_drops()
        for wid in loop_q.windows_with_drops():
            loop_w = loop_q.window_synopsis(wid)
            bulk_w = bulk_q.window_synopsis(wid)
            assert loop_w.dropped_count == bulk_w.dropped_count
            assert (loop_w.earliest, loop_w.latest) == (
                bulk_w.earliest,
                bulk_w.latest,
            )
            assert loop_w.synopsis._buckets == bulk_w.synopsis._buckets
