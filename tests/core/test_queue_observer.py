"""Queue observer events: exactly-once accounting, including the heap-drain
path with head evictions (which force lazy heap revalidation in the
pipeline's virtual-clock runner)."""

from collections import Counter

from repro.core import HeadDropPolicy, TriageQueue
from repro.core.policies import RandomDropPolicy, TailDropPolicy
from repro.core.strategies import ShedStrategy
from repro.engine import StreamTuple, WindowSpec
from repro.experiments import ExperimentParams, bursty_pipeline
from repro.obs import Observability
from repro.obs.metrics import global_registry
from repro.synopses import Dimension, SparseHistogramFactory


def make_queue(capacity=3, policy=None, observer=None, summarize=True):
    return TriageQueue(
        name="R",
        dimensions=[Dimension("R.a", 1, 100)],
        dim_positions=[0],
        capacity=capacity,
        policy=policy or TailDropPolicy(),
        synopsis_factory=SparseHistogramFactory(bucket_width=1),
        window=WindowSpec(width=1.0),
        summarize=summarize,
        seed=1,
        observer=observer,
    )


def t(ts, v):
    return StreamTuple(ts, (v,))


class TestUnitEvents:
    def test_exactly_once_per_tuple(self):
        events = Counter()
        q = make_queue(capacity=2, observer=lambda n, e, v: events.update([e]))
        for i in range(5):
            q.offer(t(0.1 * i, i + 1))
        while q.poll() is not None:
            pass
        assert events["offer"] == 5
        assert events["drop"] == 3
        assert events["summarize"] == 3
        assert events["shed_bytes"] == 3
        assert events["poll"] == 2
        assert events["offer"] == events["poll"] + events["drop"]

    def test_policy_decision_events(self):
        events = Counter()
        q = make_queue(
            capacity=1,
            policy=HeadDropPolicy(),
            observer=lambda n, e, v: events.update([e]),
        )
        q.offer(t(0.0, 1))
        q.offer(t(0.1, 2))  # head (1) evicted, incoming buffered
        assert events["evict_buffered"] == 1
        tail_events = Counter()
        q2 = make_queue(
            capacity=1,
            policy=TailDropPolicy(),
            observer=lambda n, e, v: tail_events.update([e]),
        )
        q2.offer(t(0.0, 1))
        q2.offer(t(0.1, 2))  # TailDrop sheds the incoming tuple
        assert tail_events["drop_incoming"] == 1

    def test_shed_bytes_carries_row_size(self):
        sizes = []

        def observer(name, event, value):
            if event == "shed_bytes":
                sizes.append(value)

        q = make_queue(capacity=1, observer=observer)
        q.offer(t(0.0, 1))
        q.offer(t(0.1, 2))
        assert len(sizes) == 1 and sizes[0] > 0

    def test_no_summarize_event_when_summarize_off(self):
        events = Counter()
        q = make_queue(
            capacity=1, summarize=False, observer=lambda n, e, v: events.update([e])
        )
        q.offer(t(0.0, 1))
        q.offer(t(0.1, 2))
        assert events["drop"] == 1
        assert events["summarize"] == 0

    def test_raising_observer_is_counted_not_fatal(self):
        def bad_observer(name, event, value):
            raise RuntimeError("observer bug")

        counter = global_registry().counter(
            "obs_hook_errors_total",
            "Exceptions raised by user-supplied observers/hooks (swallowed)",
            ("site",),
        )
        before = counter.value(site="queue_observer")
        q = make_queue(capacity=1, observer=bad_observer)
        q.offer(t(0.0, 1))
        q.offer(t(0.1, 2))
        assert q.poll() is not None  # queue still functions
        assert q.stats.offered == 2 and q.stats.dropped == 1
        assert counter.value(site="queue_observer") > before


class TestHeapDrainPath:
    """The pipeline's heap-driven drain revalidates queue heads lazily after
    drop-policy evictions; observer events must still fire exactly once per
    tuple."""

    def run_with_policy(self, policy):
        obs = Observability()
        params = ExperimentParams(tuples_per_window=60, n_windows=3, policy=policy)
        pipeline, streams = bursty_pipeline(
            ShedStrategy.DATA_TRIAGE, 4500.0, params, 0, obs=obs
        )
        return obs, pipeline.run(streams)

    def test_head_evictions_keep_exactly_once_accounting(self):
        # HeadDropPolicy evicts buffered heads, invalidating heap entries
        # the drain loop already holds — the adversarial case for the
        # lazy-revalidation logic.
        obs, result = self.run_with_policy(HeadDropPolicy())
        assert result.total_dropped > 0, "peak rate should force evictions"
        reg = obs.registry
        offered = reg.get("triage_offered_total").total()
        polled = reg.get("triage_polled_total").total()
        dropped = reg.get("triage_drops_total").total()
        assert offered == result.total_arrived
        assert polled == result.total_kept
        assert dropped == result.total_dropped
        assert offered == polled + dropped
        decisions = reg.get("triage_policy_decisions_total")
        assert decisions.value(stream="R", decision="evict_buffered") > 0
        assert decisions.total() == dropped

    def test_random_policy_accounting_matches(self):
        obs, result = self.run_with_policy(RandomDropPolicy())
        reg = obs.registry
        assert reg.get("triage_offered_total").total() == result.total_arrived
        assert (
            reg.get("triage_polled_total").total()
            + reg.get("triage_drops_total").total()
            == result.total_arrived
        )

    def test_results_identical_with_and_without_observer(self):
        params = ExperimentParams(
            tuples_per_window=60, n_windows=3, policy=HeadDropPolicy()
        )
        p1, s1 = bursty_pipeline(ShedStrategy.DATA_TRIAGE, 4500.0, params, 0)
        plain = p1.run(s1)
        obs, instrumented = self.run_with_policy(HeadDropPolicy())
        assert instrumented.total_dropped == plain.total_dropped
        for a, b in zip(instrumented.windows, plain.windows):
            assert a.merged == b.merged
