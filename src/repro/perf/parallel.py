"""Process-pool evaluation of independent query windows.

Window evaluation — exact query over kept bags, shadow plan over synopses,
merge — touches no shared state between windows, so a batch of closed
windows is embarrassingly parallel.  :class:`ParallelWindowEvaluator` chunks
the batch contiguously across a ``ProcessPoolExecutor`` and concatenates the
per-chunk outcomes, so results come back in exactly the caller's window-id
order: ``config.parallel_windows = N`` must never change a
:class:`~repro.core.pipeline.RunResult`, only its wall-clock cost.

Workers are primed once (pool initializer) with a pickled
(catalog, bound query, config, domains) tuple from which each rebuilds its
own :class:`~repro.core.pipeline.DataTriagePipeline`; per-batch traffic is
then only the window slices and their outcomes.  The pool uses the ``fork``
start method where available so workers inherit loaded modules instead of
re-importing the world.

Callers must treat any exception as "evaluate serially instead" — pool
breakage (a killed worker, an unpicklable synopsis) is a performance event,
not a correctness event.  :meth:`DataTriagePipeline.evaluate_windows` does
exactly that.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

# Worker-side pipeline, rebuilt once per worker by _init_worker.
_WORKER_PIPELINE = None


def fork_context():
    """The ``fork`` multiprocessing context, or the platform default.

    Forked workers inherit loaded modules instead of re-importing the
    world; shared by the window-evaluation pool here and the shard workers
    of :mod:`repro.service.shard`.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def pipeline_payload(pipeline) -> bytes:
    """Pickle the recipe a worker needs to rebuild ``pipeline``.

    The payload is (catalog, bound query, config, domains) — config with
    ``parallel_windows`` stripped, because a worker that fans out again
    forks uncontrollably.  Observability never crosses the process
    boundary: workers run uninstrumented and ship results back.
    """
    config = replace(pipeline.config, parallel_windows=None)
    return pickle.dumps(
        (pipeline.catalog, pipeline.bound, config, pipeline._domains)
    )


def build_pipeline_from_payload(payload: bytes):
    """Worker side of :func:`pipeline_payload`."""
    from repro.core.pipeline import DataTriagePipeline

    catalog, bound, config, domains = pickle.loads(payload)
    return DataTriagePipeline(catalog, bound, config, domains)


def _init_worker(payload: bytes) -> None:
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = build_pipeline_from_payload(payload)


def _eval_chunk(kwargs: dict):
    return _WORKER_PIPELINE._evaluate_windows_serial(**kwargs)


def _slice(nested, wids):
    """Restrict a {source: {window_id: value}} map to ``wids``."""
    if nested is None:
        return None
    return {
        s: {w: per_window[w] for w in wids if w in per_window}
        for s, per_window in nested.items()
    }


class ParallelWindowEvaluator:
    """Chunked, order-preserving fan-out of window evaluation.

    One instance is held (lazily) by a pipeline; the pool spins up on first
    use and is reused across batches until :meth:`shutdown`.
    """

    def __init__(self, pipeline, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"parallel evaluation needs >= 2 workers: {workers}")
        self.workers = workers
        self._payload = pipeline_payload(pipeline)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = fork_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def evaluate(
        self,
        window_ids,
        kept_rows,
        kept_synopses,
        dropped_synopses,
        dropped_counts,
        arrived,
        ideal_inputs=None,
    ):
        """Evaluate ``window_ids`` across the pool, preserving their order."""
        pool = self._ensure_pool()
        n = len(window_ids)
        chunk_size = -(-n // self.workers)  # ceil division
        tasks = []
        for lo in range(0, n, chunk_size):
            wids = list(window_ids[lo : lo + chunk_size])
            tasks.append(
                {
                    "window_ids": wids,
                    "kept_rows": _slice(kept_rows, wids),
                    "kept_synopses": _slice(kept_synopses, wids),
                    "dropped_synopses": _slice(dropped_synopses, wids),
                    "dropped_counts": _slice(dropped_counts, wids),
                    "arrived": _slice(arrived, wids),
                    "ideal_inputs": _slice(ideal_inputs, wids),
                }
            )
        out = []
        # map() yields chunk results in submission order: chunks are
        # contiguous slices of window_ids, so concatenation preserves the
        # caller's ordering exactly.
        for chunk_outcomes in pool.map(_eval_chunk, tasks):
            out.extend(chunk_outcomes)
        return out
