"""Detail-in-context scenes: exact results as points, lost results as boxes.

Paper Figure 3 shows the TelegraphCQ web interface rendering *"query results
as blue points and the system's estimate of lost result tuples as rectangles
in varying shades of red"* — an instance of the detail-in-context
visualization problem (Section 8.1).  A :class:`Scene` is the
backend-independent form of that picture; the ASCII and SVG backends render
it.

Scenes are built straight from pipeline outputs: the window's exact result
rows become points, the shadow synopsis's buckets become intensity-weighted
rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.multiset import Multiset
from repro.engine.types import Schema
from repro.synopses.base import Synopsis


@dataclass(frozen=True)
class PointMark:
    """One exact result tuple (blue point in the paper's UI)."""

    x: float
    y: float
    weight: int = 1


@dataclass(frozen=True)
class RectMark:
    """One synopsis bucket (red rectangle); intensity in [0, 1]."""

    x0: float
    x1: float
    y0: float
    y1: float
    intensity: float


@dataclass
class Scene:
    """A 2-D detail-in-context picture."""

    title: str
    x_label: str
    y_label: str
    x_domain: tuple[float, float]
    y_domain: tuple[float, float]
    points: list[PointMark] = field(default_factory=list)
    rects: list[RectMark] = field(default_factory=list)

    @property
    def max_rect_mass(self) -> float:
        return max((r.intensity for r in self.rects), default=0.0)


class SceneError(ValueError):
    """Raised when inputs cannot be turned into a scene."""


def _bucket_items(synopsis: Synopsis):
    items = getattr(synopsis, "bucket_items", None)
    if items is None:
        raise SceneError(
            f"{type(synopsis).__name__} does not expose bucket geometry; "
            "use a histogram synopsis for visualization"
        )
    return items()


def build_scene(
    exact_rows: Multiset,
    schema: Schema,
    lost: Synopsis | None,
    x_column: str,
    y_column: str,
    title: str = "query results + estimated losses",
) -> Scene:
    """Assemble a scene from a window's exact rows and its loss synopsis.

    ``x_column``/``y_column`` name the two result attributes to plot; they
    must be columns of ``schema`` and (when ``lost`` is given) dimensions of
    the synopsis.  Rectangle intensity is each bucket's share of the largest
    bucket mass — "varying shades of red."
    """
    xp = schema.position(x_column)
    yp = schema.position(y_column)
    points = [
        PointMark(x=row[xp], y=row[yp], weight=mult)
        for row, mult in exact_rows.items()
    ]

    rects: list[RectMark] = []
    x_dom: tuple[float, float] | None = None
    y_dom: tuple[float, float] | None = None
    if lost is not None and lost.total() > 0:
        xi = lost.dim_index(x_column)
        yi = lost.dim_index(y_column)
        dx, dy = lost.dimensions[xi], lost.dimensions[yi]
        x_dom, y_dom = (dx.lo, dx.hi), (dy.lo, dy.hi)
        flat = lost.project([dx.name, dy.name])
        items = _bucket_items(flat)
        max_mass = max((m for _, m in items), default=0.0)
        for box, mass in items:
            if mass <= 0:
                continue
            (x0, x1), (y0, y1) = box[0], box[1]
            rects.append(
                RectMark(
                    x0=x0,
                    x1=x1 + 1,  # inclusive value range -> half-open extent
                    y0=y0,
                    y1=y1 + 1,
                    intensity=mass / max_mass if max_mass else 0.0,
                )
            )
    if x_dom is None:
        xs = [p.x for p in points] or [0.0, 1.0]
        ys = [p.y for p in points] or [0.0, 1.0]
        x_dom = (min(xs), max(xs) + 1)
        y_dom = (min(ys), max(ys) + 1)
    return Scene(
        title=title,
        x_label=x_column,
        y_label=y_column,
        x_domain=x_dom,
        y_domain=y_dom,
        points=points,
        rects=rects,
    )
