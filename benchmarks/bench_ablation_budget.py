"""Ablation — synopsis resolution budget vs. accuracy and cost.

Sweeps the sparse histogram's bucket width (the paper's only tuning knob
for its production synopsis): width 1 is value-resolution (shadow estimates
become exact counts of lost results), wide buckets are cheap but blur the
burst.  Reports RMS error and per-run time at each width, plus the
summarize-only floor for reference — the "more advanced synopsis will
improve result quality under heavy load" claim of Future Work §8.1, made
quantitative.
"""

from __future__ import annotations

import time

import pytest

from conftest import BENCH_PARAMS
from repro.core import ShedStrategy
from repro.experiments import ExperimentParams, run_constant_rate
from repro.quality import ErrorSummary, run_rms
from repro.synopses import SparseHistogramFactory

RATE = 1800.0
N_RUNS = 5
WIDTHS = [1, 2, 5, 10, 25, 50]


def run_width(width: int, strategy=ShedStrategy.DATA_TRIAGE):
    params = ExperimentParams(
        tuples_per_window=BENCH_PARAMS.tuples_per_window,
        n_windows=BENCH_PARAMS.n_windows,
        engine_capacity=BENCH_PARAMS.engine_capacity,
        queue_capacity=BENCH_PARAMS.queue_capacity,
        synopsis_factory=SparseHistogramFactory(bucket_width=width),
    )
    t0 = time.perf_counter()
    summary = ErrorSummary.from_values(
        [
            run_rms(run_constant_rate(strategy, RATE, params, seed))
            for seed in range(N_RUNS)
        ]
    )
    return summary, time.perf_counter() - t0


@pytest.mark.parametrize("width", WIDTHS)
def test_ablation_bucket_width(benchmark, width):
    summary, _ = benchmark.pedantic(run_width, args=(width,), rounds=1, iterations=1)
    print(f"\nwidth {width:3d}: RMS {summary.mean:7.2f} ± {summary.std:5.2f}")


def test_ablation_budget_shape(benchmark):
    results = benchmark.pedantic(
        lambda: {w: run_width(w) for w in WIDTHS}, rounds=1, iterations=1
    )
    print(f"\nBucket-width ablation at {RATE:.0f} tuples/sec ({N_RUNS} runs):")
    print(f"{'width':>6s} {'buckets/dim':>12s} {'mean RMS':>10s} {'secs':>7s}")
    for w, (summary, secs) in results.items():
        print(f"{w:6d} {100 // w:12d} {summary.mean:10.2f} {secs:7.2f}")
    means = [results[w][0].mean for w in WIDTHS]
    # Finer buckets are at least as accurate (allow seed noise).
    assert means[0] <= means[-1]
    # Value-resolution triage beats the coarsest setting clearly.
    assert means[0] < means[-1] * 0.9
