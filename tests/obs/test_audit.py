"""DropLedger unit tests: recording, bounds, shipping, attribution, JSONL.

The ledger's core contract is exact partition: every recorded event lands
in exactly one window bucket (the youngest window of its victim) or the
unattributed pool, so ``sum(buckets) + unattributed == counts`` always —
that is what makes ledger↔counter reconciliation possible downstream.
"""

import io
import json

import pytest

from repro.obs.audit import (
    AUDIT_SCHEMA,
    DropLedger,
    ShedEvent,
    attribute_reports,
    attribute_window,
    read_ledger_jsonl,
    render_scorecard,
    scorecard_rollup,
    validate_ledger_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import WindowReport


def _fill(ledger, n=10, *, kind="evict_buffered", window=3, stream="R"):
    for i in range(n):
        ledger.record(
            kind,
            policy="random",
            stream=stream,
            windows=(window,),
            timestamp=float(i),
            depth=i,
            score=float(i) / 10,
            row=(i, "x"),
        )


# ---------------------------------------------------------------------------
# Recording + bounds
# ---------------------------------------------------------------------------
def test_record_counts_and_window_buckets():
    ledger = DropLedger()
    _fill(ledger, 5, window=2)
    _fill(ledger, 3, kind="drop_incoming", window=2)
    ledger.record("edge_shed", policy="admission", stream="S", count=4)
    assert ledger.counts == {
        "evict_buffered": 5,
        "drop_incoming": 3,
        "edge_shed": 4,
    }
    assert ledger.total == 12
    assert ledger.pending_windows() == [2]
    (loose,) = ledger.unattributed()
    assert loose["kind"] == "edge_shed" and loose["count"] == 4


def test_multiwindow_victim_charged_to_youngest_window_only():
    ledger = DropLedger()
    ledger.record(
        "evict_buffered", policy="tail", stream="R", windows=(4, 5, 6)
    )
    assert ledger.pending_windows() == [6]
    taken = ledger.take_windows([4, 5, 6])
    assert list(taken) == [6]
    assert taken[6][0]["count"] == 1


def test_ring_is_bounded_and_eviction_counted():
    ledger = DropLedger(capacity=4)
    _fill(ledger, 10)
    assert len(ledger.ring) == 4
    assert ledger.summary()["ring_evicted"] == 6
    # Aggregates stay exact even after ring eviction.
    assert ledger.counts["evict_buffered"] == 10


def test_reservoir_keeps_first_k_and_is_deterministic():
    a, b = DropLedger(exemplars=2, seed=7), DropLedger(exemplars=2, seed=7)
    for ledger in (a, b):
        _fill(ledger, 50)
    kept_a = [e.seq for e in a.ring if e.exemplar is not None]
    kept_b = [e.seq for e in b.ring if e.exemplar is not None]
    assert kept_a == kept_b  # same seed, same sample
    early = DropLedger(exemplars=2, seed=7)
    _fill(early, 2)
    assert all(e.exemplar is not None for e in early.ring)  # first k kept


def test_exemplars_zero_disables_sampling():
    ledger = DropLedger(exemplars=0)
    _fill(ledger, 5)
    assert all(e.exemplar is None for e in ledger.ring)


def test_ambient_trace_context():
    ledger = DropLedger()
    ledger.set_trace("t-123")
    ledger.record("edge_shed", policy="admission", stream="R")
    ledger.set_trace(None)
    ledger.record("edge_shed", policy="admission", stream="R")
    first, second = ledger.ring
    assert first.trace_id == "t-123" and second.trace_id is None


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        DropLedger(capacity=0)


# ---------------------------------------------------------------------------
# take_windows partition
# ---------------------------------------------------------------------------
def test_take_windows_partitions_event_stream():
    ledger = DropLedger()
    _fill(ledger, 5, window=1)
    _fill(ledger, 7, window=2, stream="S")
    ledger.record("edge_shed", policy="admission", stream="T", count=2)
    taken = ledger.take_windows([1, 2, 99])
    bucketed = sum(
        e["count"] for entries in taken.values() for e in entries
    )
    loose = sum(e["count"] for e in ledger.unattributed())
    assert bucketed + loose == ledger.total
    assert ledger.pending_windows() == []  # popped
    # Counts stay monotonic after the pop.
    assert ledger.total == 14


# ---------------------------------------------------------------------------
# ship / absorb (the shard protocol)
# ---------------------------------------------------------------------------
def test_ship_absorb_preserves_totals_and_buckets():
    worker = DropLedger(seed=3)
    _fill(worker, 6, window=4)
    worker.record("edge_shed", policy="admission", stream="S", count=2)
    coordinator = DropLedger()
    coordinator.absorb(worker.ship([4]))
    assert coordinator.counts == {"evict_buffered": 6, "edge_shed": 2}
    taken = coordinator.take_windows([4])
    assert taken[4][0]["count"] == 6
    # The worker's ring drained into the shipment.
    assert worker.ring == []
    # A second ship reports only the delta (here: nothing new).
    again = worker.ship()
    assert again["counts"] == {} and again["events"] == []


def test_ship_delta_counts_across_shipments():
    worker = DropLedger()
    _fill(worker, 3, window=1)
    coordinator = DropLedger()
    coordinator.absorb(worker.ship([1]))
    _fill(worker, 2, window=2)
    coordinator.absorb(worker.ship([2]))
    assert coordinator.counts["evict_buffered"] == 5


def test_absorb_resequences_events():
    a, b = DropLedger(), DropLedger()
    _fill(a, 2, window=1)
    _fill(b, 2, window=1, stream="S")
    coordinator = DropLedger()
    coordinator.absorb(a.ship())
    coordinator.absorb(b.ship())
    seqs = [e.seq for e in coordinator.ring]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
def test_attribute_window_shares_sum_to_basis():
    entries = [
        {"stream": "R", "policy": "random", "kind": "evict_buffered",
         "count": 6, "mean_score": 0.5},
        {"stream": "S", "policy": "random", "kind": "drop_incoming",
         "count": 2, "mean_score": None},
    ]
    record = attribute_window(9, entries, rms_error=0.4)
    assert record["basis"] == "rms" and record["error"] == 0.4
    assert record["events"] == 8
    costs = [p["quality_cost"] for p in record["policies"]]
    assert abs(sum(costs) - 0.4) < 1e-9
    assert record["policies"][0]["count"] == 6  # biggest share first


def test_attribute_window_falls_back_to_shed_fraction():
    entries = [{"stream": "R", "policy": "tail", "kind": "evict_buffered",
                "count": 5, "mean_score": None}]
    record = attribute_window(1, entries, arrived=100, dropped=25)
    assert record["basis"] == "shed_fraction"
    assert record["error"] == 0.25


def test_attribute_reports_joins_by_window_id():
    taken = {
        7: [{"stream": "R", "policy": "random", "kind": "evict_buffered",
             "count": 3, "mean_score": None}],
    }
    report = WindowReport(
        window_id=7, start=7.0, end=8.0, arrived=50, kept=47,
        dropped=3, result_latency=0.1, rms_error=0.125,
    )
    (record,) = attribute_reports(taken, [report])
    assert record["window"] == 7
    assert record["basis"] == "rms" and record["error"] == 0.125


# ---------------------------------------------------------------------------
# JSONL round-trip + validation
# ---------------------------------------------------------------------------
def test_export_and_validate_roundtrip():
    ledger = DropLedger(seed=1)
    _fill(ledger, 4, window=2)
    taken = ledger.take_windows([2])
    reports = [
        WindowReport(window_id=2, start=2.0, end=3.0, arrived=20, kept=16,
                     dropped=4, result_latency=0.0, rms_error=0.3)
    ]
    attributions = attribute_reports(taken, reports)
    buf = io.StringIO()
    lines = ledger.export_jsonl(buf, attributions)
    assert lines == 1 + 4 + 1
    doc = validate_ledger_jsonl(buf.getvalue().splitlines())
    assert doc["header"]["schema"] == AUDIT_SCHEMA
    assert len(doc["events"]) == 4
    assert all(isinstance(e, ShedEvent) for e in doc["events"])
    assert doc["attributions"][0]["window"] == 2


def test_read_ledger_jsonl(tmp_path):
    ledger = DropLedger()
    _fill(ledger, 2)
    path = tmp_path / "ledger.jsonl"
    with open(path, "w", encoding="utf-8") as fp:
        ledger.export_jsonl(fp)
    doc = read_ledger_jsonl(path)
    assert len(doc["events"]) == 2


@pytest.mark.parametrize(
    "lines, message",
    [
        (["{not json"], "not valid JSON"),
        (['["a list"]'], "expected an object"),
        (['{"type": "event", "seq": 1}'], "event before header"),
        ([], "no header"),
        (
            ['{"type": "header", "schema": "other/v9"}'],
            "is not",
        ),
        (
            [
                json.dumps({"type": "header", "schema": AUDIT_SCHEMA}),
                json.dumps({"type": "mystery"}),
            ],
            "unknown record type",
        ),
        (
            [
                json.dumps({"type": "header", "schema": AUDIT_SCHEMA}),
                json.dumps({"type": "attribution", "window": 1}),
            ],
            "attribution missing",
        ),
        (
            [
                json.dumps({"type": "header", "schema": AUDIT_SCHEMA}),
                json.dumps(
                    {"type": "event", "seq": 1, "kind": "nope",
                     "policy": "p", "stream": "R"}
                ),
            ],
            "unknown event kind",
        ),
    ],
)
def test_validate_rejects_malformed(lines, message):
    with pytest.raises(ValueError, match=message):
        validate_ledger_jsonl(lines)


# ---------------------------------------------------------------------------
# Metrics + scorecard
# ---------------------------------------------------------------------------
def test_audit_counters_flow_through_registry():
    registry = MetricsRegistry()
    ledger = DropLedger(capacity=2, exemplars=1, metrics=registry)
    _fill(ledger, 5, window=1)
    ledger.take_windows([1])
    text = registry.render_prometheus()
    assert 'audit_events_total{kind="evict_buffered"} 5' in text
    assert "audit_windows_attributed_total 1" in text
    assert "audit_attributed_events_total 5" in text
    assert "audit_ring_evictions_total 3" in text


def test_scorecard_renders_rollup_and_recent_windows():
    ledger = DropLedger()
    _fill(ledger, 4, window=2)
    taken = ledger.take_windows([2])
    attributions = attribute_reports(taken, [])
    rollup = scorecard_rollup(attributions)
    assert rollup[0]["events"] == 4
    text = render_scorecard(ledger.summary(), attributions)
    assert "shed provenance scorecard" in text
    assert "events: 4" in text
    assert "recent windows:" in text
