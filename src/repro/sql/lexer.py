"""Tokenizer for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AS",
    "AND",
    "OR",
    "NOT",
    "UNION",
    "ALL",
    "CREATE",
    "STREAM",
    "VIEW",
    "WINDOW",
    "HAVING",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "NULL",
    "TRUE",
    "FALSE",
    "PATTERN",
    "SEQ",
    "WITHIN",
}

# Multi-character symbols must come first so they win the scan.
SYMBOLS = ["<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", "[", "]", ",", ";", ".", "+", "-", "*", "/", "%"]


class LexError(ValueError):
    """Raised on unrecognisable input."""


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with a single EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):  # SQL line comment
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            j = i + 1
            chunks: list[str] = []
            while True:
                k = text.find("'", j)
                if k < 0:
                    raise LexError(f"unterminated string literal at offset {i}")
                if k + 1 < n and text[k + 1] == "'":  # escaped quote
                    chunks.append(text[j : k + 1])
                    j = k + 2
                    continue
                chunks.append(text[j:k])
                break
            yield Token("STRING", "".join(chunks), i)
            i = k + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow a dot that isn't followed by a digit
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token("NUMBER", text[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                yield Token("KEYWORD", word.upper(), i)
            else:
                yield Token("IDENT", word, i)
            i = j
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                yield Token("SYMBOL", sym, i)
                i += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at offset {i}")
    yield Token("EOF", "", n)
