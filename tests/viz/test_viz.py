"""Tests for the detail-in-context visualization layer."""

import pytest

from repro.algebra import Multiset
from repro.engine import Column, ColumnType, Schema
from repro.synopses import CountMinSynopsis, Dimension, SparseCubicHistogram
from repro.viz import (
    PointMark,
    RectMark,
    Scene,
    SceneError,
    build_scene,
    render_ascii,
    render_svg,
)

SCHEMA = Schema(
    [Column("R.a", ColumnType.INTEGER), Column("S.c", ColumnType.INTEGER)]
)


def make_lost(rows, width=10):
    syn = SparseCubicHistogram(
        [Dimension("R.a", 1, 100), Dimension("S.c", 1, 100)], bucket_width=width
    )
    syn.insert_many(rows)
    return syn


class TestBuildScene:
    def test_points_from_exact_rows(self):
        rows = Multiset([(10, 20), (10, 20), (30, 40)])
        scene = build_scene(rows, SCHEMA, None, "R.a", "S.c")
        weights = {(p.x, p.y): p.weight for p in scene.points}
        assert weights == {(10, 20): 2, (30, 40): 1}

    def test_rects_from_synopsis_buckets(self):
        lost = make_lost([(5, 5), (95, 95), (95, 95)])
        scene = build_scene(Multiset(), SCHEMA, lost, "R.a", "S.c")
        assert len(scene.rects) == 2
        big = max(scene.rects, key=lambda r: r.intensity)
        assert big.intensity == pytest.approx(1.0)
        small = min(scene.rects, key=lambda r: r.intensity)
        assert small.intensity == pytest.approx(0.5)

    def test_domain_from_synopsis(self):
        lost = make_lost([(5, 5)])
        scene = build_scene(Multiset(), SCHEMA, lost, "R.a", "S.c")
        assert scene.x_domain == (1, 100)
        assert scene.y_domain == (1, 100)

    def test_domain_from_points_when_no_synopsis(self):
        rows = Multiset([(10, 20), (30, 40)])
        scene = build_scene(rows, SCHEMA, None, "R.a", "S.c")
        assert scene.x_domain == (10, 31)

    def test_3d_synopsis_projected(self):
        syn = SparseCubicHistogram(
            [
                Dimension("R.a", 1, 100),
                Dimension("S.c", 1, 100),
                Dimension("T.d", 1, 100),
            ],
            bucket_width=10,
        )
        syn.insert((5, 5, 5))
        scene = build_scene(Multiset(), SCHEMA, syn, "R.a", "S.c")
        assert len(scene.rects) == 1

    def test_synopsis_without_geometry_rejected(self):
        syn = CountMinSynopsis(
            [Dimension("R.a", 1, 100), Dimension("S.c", 1, 100)]
        )
        syn.insert((1, 1))
        with pytest.raises(SceneError, match="geometry"):
            build_scene(Multiset(), SCHEMA, syn, "R.a", "S.c")


class TestAsciiBackend:
    def scene(self):
        return Scene(
            title="t",
            x_label="x",
            y_label="y",
            x_domain=(0, 10),
            y_domain=(0, 10),
            points=[PointMark(5, 5)],
            rects=[RectMark(0, 5, 0, 5, 1.0)],
        )

    def test_render_contains_marks(self):
        out = render_ascii(self.scene(), width=20, height=10)
        assert "o" in out
        assert "@" in out  # full-intensity shading
        assert "t" in out.splitlines()[0]

    def test_grid_dimensions(self):
        out = render_ascii(self.scene(), width=20, height=10)
        body = [l for l in out.splitlines() if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 22 for l in body)

    def test_too_small_canvas(self):
        with pytest.raises(ValueError):
            render_ascii(self.scene(), width=2, height=2)

    def test_degenerate_domain(self):
        s = self.scene()
        s.x_domain = (5, 5)
        with pytest.raises(ValueError):
            render_ascii(s)


class TestSeriesChart:
    def make_series(self):
        from repro.quality import ErrorSummary, Series

        s = Series(title="Figure <8>", x_label="rate", methods=["a", "b"])
        s.add_point(
            100,
            {
                "a": ErrorSummary.from_values([1.0, 2.0]),
                "b": ErrorSummary.from_values([10.0, 12.0]),
            },
        )
        s.add_point(
            200,
            {
                "a": ErrorSummary.from_values([3.0, 4.0]),
                "b": ErrorSummary.from_values([11.0, 13.0]),
            },
        )
        return s

    def test_render_series_svg(self):
        from repro.viz import render_series_svg

        svg = render_series_svg(self.make_series())
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == 2  # one per method
        assert svg.count("<circle") == 4  # one marker per point
        assert "Figure &lt;8&gt;" in svg  # escaped title
        assert "rate" in svg

    def test_error_bars_drawn(self):
        from repro.viz import render_series_svg

        svg = render_series_svg(self.make_series())
        # 4 error bars + 2 legend lines + 5 gridlines.
        assert svg.count("<line") == 11

    def test_empty_series_rejected(self):
        from repro.quality import Series
        from repro.viz import render_series_svg

        with pytest.raises(ValueError, match="no data"):
            render_series_svg(Series(title="x", x_label="x", methods=["m"]))

    def test_all_zero_series_renders(self):
        from repro.quality import ErrorSummary, Series
        from repro.viz import render_series_svg

        s = Series(title="flat", x_label="rate", methods=["m"])
        s.add_point(1, {"m": ErrorSummary.from_values([0.0, 0.0])})
        s.add_point(2, {"m": ErrorSummary.from_values([0.0])})
        svg = render_series_svg(s)
        assert "<polyline" in svg  # degenerate y-domain handled

    def test_ascii_chart_all_zero(self):
        from repro.quality import ErrorSummary, Series

        s = Series(title="flat", x_label="rate", methods=["m"])
        s.add_point(5, {"m": ErrorSummary.from_values([0.0])})
        text = s.to_ascii_chart()
        assert "legend:" in text


class TestSvgBackend:
    def test_valid_svg_with_marks(self):
        scene = Scene(
            title="demo <scene>",
            x_label="x",
            y_label="y",
            x_domain=(0, 10),
            y_domain=(0, 10),
            points=[PointMark(5, 5)],
            rects=[RectMark(1, 3, 1, 3, 0.5)],
        )
        svg = render_svg(scene)
        assert svg.startswith("<svg")
        assert svg.count("<circle") == 1
        assert svg.count("<rect") == 2  # plot frame + one mark
        assert "&lt;scene&gt;" in svg  # escaping

    def test_opacity_scales_with_intensity(self):
        scene = Scene(
            title="t", x_label="x", y_label="y",
            x_domain=(0, 10), y_domain=(0, 10),
            rects=[RectMark(0, 1, 0, 1, 0.0), RectMark(2, 3, 2, 3, 1.0)],
        )
        svg = render_svg(scene)
        assert 'fill-opacity="0.150"' in svg
        assert 'fill-opacity="0.900"' in svg
