#!/usr/bin/env python
"""The triage service live: a bursty publisher against a real TCP server.

Paper Figure 1 puts the triage queues between the data sources and the
query processor.  ``repro.service`` makes that boundary a network server:
publishers PUBLISH tuple batches over TCP, triage queues absorb what the
engine can take and synopsize the rest, and every closed window fans a
merged exact+approximate result out to subscribers.

This script stages the paper's burst story over three windows of the
Figure 7 query (R ⋈ S ⋈ T, COUNT(*) GROUP BY a):

* window 0 — steady load, the engine keeps up, results are exact;
* window 1 — a 20x burst on R; the triage queue sheds most of it into a
  synopsis, and the shadow query recovers the lost counts;
* window 2 — steady again.

Window time is driven by an injected clock so the run is deterministic;
the sockets, framing, and backpressure are the real thing.

Run:  python examples/live_service.py
"""

from __future__ import annotations

import asyncio

from repro.core.strategies import PipelineConfig
from repro.engine.window import WindowSpec
from repro.experiments import PAPER_QUERY, paper_catalog
from repro.service import ServiceConfig, TriageClient, TriageServer

STEADY_R, BURST_R = 150, 3000
PER_WINDOW_S = PER_WINDOW_T = 200


def spread(window: int, n: int) -> list[float]:
    """n timestamps evenly through window ``w`` of width 1."""
    return [window + i / n for i in range(n)]


async def main() -> None:
    clock = {"t": 0.0}
    config = PipelineConfig(
        window=WindowSpec(width=1.0),
        queue_capacity=250,
        service_time=0.001,
        compute_ideal=False,
    )
    service = ServiceConfig(tick_interval=None, clock=lambda: clock["t"])
    server = TriageServer(paper_catalog(), PAPER_QUERY, config, service)
    await server.start()
    print(f"service listening on 127.0.0.1:{server.port}")
    print(f"query: {PAPER_QUERY}")

    client = await TriageClient.connect("127.0.0.1", server.port, client_name="demo")
    for stream in ("R", "S", "T"):
        await client.declare(stream)
    await client.subscribe()

    for window, n_r in enumerate((STEADY_R, BURST_R, STEADY_R)):
        ack = await client.publish(
            "R",
            [[1 + (i % 10)] for i in range(n_r)],
            timestamps=spread(window, n_r),
        )
        print(
            f"window {window}: published {n_r:>4} R tuples -> "
            f"queue depth {ack['queue_depth']}, shed so far "
            f"{ack['queue_dropped_total']}"
        )
        await client.publish(
            "S",
            [[1 + (i % 10), 5] for i in range(PER_WINDOW_S)],
            timestamps=spread(window, PER_WINDOW_S),
        )
        await client.publish(
            "T", [[5]] * PER_WINDOW_T, timestamps=spread(window, PER_WINDOW_T)
        )
        clock["t"] = window + 1.0
        await server.tick()
        result = await client.next_result()
        merged = sum(g["aggs"]["count"] for g in result["groups"])
        exact = sum((g["exact"] or {}).get("count", 0) for g in result["groups"])
        print(
            f"window {window}: R arrived={result['arrived']['R']} "
            f"kept={result['kept']['R']} shed={result['dropped']['R']} | "
            f"exact-only count={exact:.0f}, merged count={merged:.0f}"
        )

    stats = await client.stats()
    summary = stats["summary"]
    print(
        f"totals: offered={summary['offered']} shed={summary['dropped']} "
        f"drop ratio={summary['drop_fraction']:.1%}"
    )
    reply = await client.stats(format="prometheus")
    print("prometheus excerpt:")
    for line in reply["prometheus"].splitlines():
        if line.startswith(("triage_drops_total", "window_latency_seconds_count")):
            print(f"  {line}")

    await client.close()
    await server.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
