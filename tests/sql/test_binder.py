"""Tests for semantic analysis (binding) of parsed queries."""

import pytest

from repro.sql import (
    Binder,
    BindError,
    BoundQuery,
    BoundUnion,
    parse_statement,
)


@pytest.fixture
def binder(paper_catalog):
    return Binder(paper_catalog)


def bind(binder, sql):
    return binder.bind(parse_statement(sql))


class TestSources:
    def test_stream_sources(self, binder):
        b = bind(binder, "SELECT * FROM R, S")
        assert [s.name for s in b.sources] == ["R", "S"]
        assert b.sources[0].stream_name == "R"

    def test_alias_binding(self, binder):
        b = bind(binder, "SELECT * FROM R alpha WHERE alpha.a = 1")
        assert b.sources[0].name == "alpha"
        assert len(b.local_predicates["alpha"]) == 1

    def test_unknown_stream(self, binder):
        with pytest.raises(BindError, match="unknown stream"):
            bind(binder, "SELECT * FROM ghost")

    def test_duplicate_source_names(self, binder):
        with pytest.raises(BindError, match="duplicate"):
            bind(binder, "SELECT * FROM R, R")

    def test_subquery_source(self, binder):
        b = bind(binder, "SELECT * FROM (SELECT a FROM R) sub")
        assert b.sources[0].subquery is not None
        assert "a" in b.sources[0].schema

    def test_view_source(self, binder, paper_catalog):
        paper_catalog.create_view("v", parse_statement("SELECT a FROM R"))
        b = bind(binder, "SELECT * FROM v")
        assert b.sources[0].subquery is not None


class TestPredicateClassification:
    def test_equijoin_extraction(self, binder):
        b = bind(binder, "SELECT * FROM R, S, T WHERE R.a = S.b AND S.c = T.d")
        assert [str(p) for p in b.join_predicates] == ["R.a = S.b", "S.c = T.d"]
        assert not b.residual_predicates

    def test_local_predicates_per_source(self, binder):
        b = bind(binder, "SELECT * FROM R, S WHERE R.a = S.b AND S.c > 5 AND R.a < 3")
        assert len(b.local_predicates["S"]) == 1
        assert len(b.local_predicates["R"]) == 1

    def test_residual_non_equijoin(self, binder):
        b = bind(binder, "SELECT * FROM R, S WHERE R.a < S.b")
        assert len(b.residual_predicates) == 1
        assert not b.join_predicates

    def test_residual_multi_column_expression(self, binder):
        b = bind(binder, "SELECT * FROM R, S WHERE R.a + S.b = 10")
        assert len(b.residual_predicates) == 1

    def test_unqualified_column_resolution(self, binder):
        b = bind(binder, "SELECT * FROM R, S WHERE a = b")
        assert [str(p) for p in b.join_predicates] == ["R.a = S.b"]

    def test_ambiguous_column(self, paper_catalog):
        from repro.engine import ColumnType, Schema

        paper_catalog.create_stream("R2", Schema.of(("a", ColumnType.INTEGER)))
        binder = Binder(paper_catalog)
        with pytest.raises(BindError, match="ambiguous"):
            bind(binder, "SELECT * FROM R, R2 WHERE a = 1")

    def test_unknown_qualifier(self, binder):
        with pytest.raises(BindError, match="unknown table qualifier"):
            bind(binder, "SELECT * FROM R WHERE Z.a = 1")

    def test_unknown_column_in_source(self, binder):
        with pytest.raises(BindError, match="no column"):
            bind(binder, "SELECT * FROM R WHERE R.zzz = 1")


class TestSelectList:
    def test_aggregates_extracted(self, binder):
        b = bind(binder, "SELECT a, COUNT(*) AS n, SUM(c) AS s FROM R, S "
                         "WHERE R.a = S.b GROUP BY a")
        assert [a.function for a in b.aggregates] == ["count", "sum"]
        assert b.aggregates[0].argument is None  # COUNT(*)
        assert b.outputs == [("a", b.outputs[0][1])]
        assert b.group_by[0][0] == "a"

    def test_count_star_alias_default(self, binder):
        b = bind(binder, "SELECT COUNT(*) FROM R")
        assert b.aggregates[0].output_name == "count"

    def test_star_with_aggregate_rejected(self, binder):
        with pytest.raises(BindError, match="mix"):
            bind(binder, "SELECT *, COUNT(*) FROM R GROUP BY a")

    def test_group_by_without_aggregate_rejected(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT a FROM R GROUP BY a")

    def test_sum_star_rejected(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT SUM(*) FROM R")

    def test_is_aggregate_flag(self, binder):
        assert bind(binder, "SELECT COUNT(*) FROM R").is_aggregate
        assert not bind(binder, "SELECT a FROM R").is_aggregate


class TestWindowsAndUnions:
    def test_window_clause_bound(self, binder):
        b = bind(
            binder,
            "SELECT * FROM R WINDOW R ['2 seconds']",
        )
        assert b.windows["R"].width == 2.0

    def test_window_unknown_source(self, binder):
        with pytest.raises(BindError, match="unknown source"):
            bind(binder, "SELECT * FROM R WINDOW Z ['1 second']")

    def test_union_bound(self, binder):
        b = bind(binder, "(SELECT a FROM R) UNION ALL (SELECT d FROM T)")
        assert isinstance(b, BoundUnion)
        assert all(isinstance(q, BoundQuery) for q in b.queries)

    def test_paper_query_binds(self, binder, paper_query_text):
        b = bind(binder, paper_query_text)
        assert len(b.sources) == 3
        assert len(b.join_predicates) == 2
        assert b.aggregates[0].output_name == "count"
