"""SLO burn-rate math, alert transitions, gauges, and stock objectives."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO, Alert, SLOEngine, default_service_slos

# A 90% objective: budget 0.1, so burn = 10x the bad fraction.  The fast
# window covers the last 4s, the slow window the last 16s.
LATENCY = SLO(
    "latency",
    threshold=1.0,
    objective=0.9,
    fast_window=4.0,
    slow_window=16.0,
)


def feed(engine, values, t0=1.0, dt=1.0, name="latency"):
    """Observe one value per second starting at ``t0``; returns last t."""
    t = t0
    for v in values:
        engine.observe(name, v, t)
        t += dt
    return t - dt


class TestSLOValidation:
    def test_budget_is_one_minus_objective(self):
        assert SLO("x", 1.0, objective=0.99).budget == pytest.approx(0.01)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_a_proper_fraction(self, objective):
        with pytest.raises(ValueError):
            SLO("x", 1.0, objective=objective)

    def test_windows_must_be_positive_and_ordered(self):
        with pytest.raises(ValueError):
            SLO("x", 1.0, fast_window=0.0)
        with pytest.raises(ValueError):
            SLO("x", 1.0, fast_window=30.0, slow_window=10.0)

    def test_burn_thresholds_must_be_positive(self):
        with pytest.raises(ValueError):
            SLO("x", 1.0, fast_burn=0.0)

    def test_duplicate_names_refused(self):
        with pytest.raises(ValueError):
            SLOEngine([LATENCY, LATENCY])


class TestBurnRates:
    def test_no_observations_is_zero_burn(self):
        engine = SLOEngine([LATENCY])
        assert engine.evaluate(10.0) == []
        status = engine.status()["latency"]
        assert status["burn_fast"] == 0.0
        assert status["burn_slow"] == 0.0
        assert status["budget_remaining"] == 1.0

    def test_healthy_series_never_fires(self):
        engine = SLOEngine([LATENCY])
        t = feed(engine, [0.5] * 20)
        assert engine.evaluate(t) == []
        assert engine.firing == []
        assert engine.status()["latency"]["burn_fast"] == 0.0

    def test_all_bad_burn_is_inverse_budget(self):
        engine = SLOEngine([LATENCY])
        t = feed(engine, [5.0] * 4)
        engine.evaluate(t)
        status = engine.status()["latency"]
        # Every observation bad: burn = 1.0 / budget = 10.
        assert status["burn_fast"] == pytest.approx(10.0)
        assert status["burn_slow"] == pytest.approx(10.0)
        assert status["budget_remaining"] == 0.0

    def test_threshold_is_exclusive(self):
        engine = SLOEngine([LATENCY])
        t = feed(engine, [1.0] * 4)  # exactly at threshold: good
        engine.evaluate(t)
        assert engine.status()["latency"]["burn_fast"] == 0.0

    def test_fast_window_sees_only_recent_events(self):
        engine = SLOEngine([LATENCY])
        # 12 good then 4 bad, one per second: the fast window (4s) holds
        # only the bad tail, the slow window mixes 4 bad into 16.
        t = feed(engine, [0.0] * 12 + [5.0] * 4)
        engine.evaluate(t)
        status = engine.status()["latency"]
        assert status["burn_fast"] == pytest.approx(10.0)
        assert status["burn_slow"] == pytest.approx((4 / 16) / 0.1)

    def test_events_beyond_slow_window_are_pruned(self):
        engine = SLOEngine([LATENCY])
        feed(engine, [5.0] * 4)  # bad burst at t=1..4
        engine.evaluate(100.0)  # far in the future: burst aged out
        status = engine.status()["latency"]
        assert status["burn_slow"] == 0.0
        assert status["budget_remaining"] == 1.0

    def test_unknown_measurement_names_ignored(self):
        engine = SLOEngine([LATENCY])
        engine.observe("rms_error", 1e9, 1.0)  # no SLO tracks this
        assert engine.evaluate(1.0) == []


class TestAlertTransitions:
    def overload(self, engine, t0=1.0):
        """Sustained overload: every window blows the threshold."""
        return feed(engine, [5.0] * 8, t0=t0)

    def test_sustained_overload_fires_within_two_evaluations(self):
        engine = SLOEngine([LATENCY])
        # Overload begins at t=1; windows close once a second and the
        # engine evaluates on the same cadence.
        engine.observe("latency", 5.0, 1.0)
        first = engine.evaluate(1.0)
        engine.observe("latency", 5.0, 2.0)
        second = engine.evaluate(2.0)
        fired = first + second
        assert [a.state for a in fired] == ["firing"]
        assert fired[0].slo == "latency"
        assert fired[0].burn_fast >= LATENCY.fast_burn
        assert fired[0].burn_slow >= LATENCY.slow_burn
        assert engine.firing == ["latency"]

    def test_firing_is_a_transition_not_a_level(self):
        engine = SLOEngine([LATENCY])
        t = self.overload(engine)
        assert len(engine.evaluate(t)) == 1
        # Still overloaded: no repeat alert while the state holds.
        engine.observe("latency", 5.0, t + 1)
        assert engine.evaluate(t + 1) == []
        assert engine.firing == ["latency"]

    def test_recovery_emits_resolved(self):
        engine = SLOEngine([LATENCY])
        t = self.overload(engine)
        engine.evaluate(t)
        # Healthy again; once the bad burst ages past the slow window the
        # burn drops below both thresholds and the alert resolves.
        t2 = feed(engine, [0.1] * 20, t0=t + 1.0)
        alerts = engine.evaluate(t2)
        assert [a.state for a in alerts] == ["resolved"]
        assert engine.firing == []
        assert engine.status()["latency"]["firing_since"] is None

    def test_single_bad_window_in_quiet_stretch_stays_silent(self):
        engine = SLOEngine([LATENCY])
        values = [0.1] * 10 + [5.0] + [0.1] * 5
        t = feed(engine, values)
        fired = []
        for i in range(len(values)):
            fired += engine.evaluate(1.0 + i)
        assert fired == []

    def test_alert_to_dict_round_trips_fields(self):
        alert = Alert(
            slo="latency",
            state="firing",
            at=3.0,
            burn_fast=10.0,
            burn_slow=2.0,
            budget_remaining=0.0,
            description="d",
        )
        d = alert.to_dict()
        assert d["slo"] == "latency" and d["state"] == "firing"
        assert d["at"] == 3.0 and d["budget_remaining"] == 0.0


class TestMetricsExport:
    def test_gauges_and_counter_track_state(self):
        registry = MetricsRegistry()
        engine = SLOEngine([LATENCY], registry)
        t = feed(engine, [5.0] * 4)
        engine.evaluate(t)
        burn = registry.get("slo_burn_rate")
        assert burn.value(slo="latency", window="fast") == pytest.approx(10.0)
        assert burn.value(slo="latency", window="slow") == pytest.approx(10.0)
        budget = registry.get("slo_error_budget_remaining")
        assert budget.value(slo="latency") == 0.0
        firing = registry.get("slo_alert_firing")
        assert firing.value(slo="latency") == 1.0
        assert registry.get("slo_alerts_total").value(slo="latency") == 1
        # Recovery clears the firing gauge but not the counter.
        t2 = feed(engine, [0.1] * 20, t0=t + 1.0)
        engine.evaluate(t2)
        assert firing.value(slo="latency") == 0.0
        assert registry.get("slo_alerts_total").value(slo="latency") == 1

    def test_engine_works_without_registry(self):
        engine = SLOEngine([LATENCY])
        t = feed(engine, [5.0] * 4)
        assert len(engine.evaluate(t)) == 1


class TestDefaultServiceSLOs:
    def test_scaled_to_window_width(self):
        slos = {s.name: s for s in default_service_slos(2.0)}
        assert set(slos) == {
            "window_staleness",
            "result_latency_p99",
            "shed_ratio",
        }
        staleness = slos["window_staleness"]
        assert staleness.threshold == 2.0
        assert staleness.fast_window == 8.0
        assert staleness.slow_window == 32.0
        assert slos["result_latency_p99"].threshold == 0.5
        assert slos["result_latency_p99"].objective == 0.99
        assert slos["shed_ratio"].threshold == 0.5

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            default_service_slos(0.0)
