"""Stream trace record/replay.

The paper's load driver *"read raw tuples off of disk and sent them to
TelegraphCQ with arbitrary time delays between tuple deliveries"*.  This
module is that driver's file format: a plain text trace of
``timestamp<TAB>v1,v2,...`` lines per stream, so experiment workloads can be
frozen to disk, inspected, and replayed bit-identically.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from repro.engine.types import StreamTuple


class TraceError(ValueError):
    """Raised on malformed trace lines."""


def dump_trace(tuples: Iterable[StreamTuple], fp: io.TextIOBase) -> int:
    """Write tuples to an open text file; returns the number written."""
    n = 0
    for t in tuples:
        values = ",".join(repr(v) for v in t.row)
        fp.write(f"{t.timestamp!r}\t{values}\n")
        n += 1
    return n


def load_trace(fp: io.TextIOBase) -> list[StreamTuple]:
    """Read a trace written by :func:`dump_trace`."""
    out = []
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            ts_text, values_text = line.split("\t", 1)
            timestamp = float(ts_text)
            row = tuple(_parse_value(v) for v in values_text.split(","))
        except (ValueError, IndexError) as exc:
            raise TraceError(f"malformed trace line {lineno}: {line!r}") from exc
        out.append(StreamTuple(timestamp, row))
    return out


def _parse_value(text: str):
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        return float(text)


def save_trace_file(tuples: Iterable[StreamTuple], path: str | Path) -> int:
    """Record a stream to ``path``."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_trace(tuples, fp)


def load_trace_file(path: str | Path) -> list[StreamTuple]:
    """Replay a stream from ``path``."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_trace(fp)


def rescale_trace(
    tuples: list[StreamTuple], rate_factor: float
) -> list[StreamTuple]:
    """Replay the same tuples faster/slower ("arbitrary time delays").

    ``rate_factor > 1`` compresses the timeline (higher data rate), exactly
    how the paper's driver swept load without regenerating data.
    """
    if rate_factor <= 0:
        raise ValueError(f"rate_factor must be positive, got {rate_factor}")
    return [StreamTuple(t.timestamp / rate_factor, t.row) for t in tuples]
