"""Tests for experiment series containers and rendering."""

import pytest

from repro.quality import ErrorSummary, Series


def summary(mean, std=0.0):
    # Build via from_values to keep invariants; two values give mean/std.
    return ErrorSummary(mean=mean, std=std, n_runs=3, values=(mean,) * 3)


@pytest.fixture
def series():
    s = Series(
        title="Figure X",
        x_label="rate",
        methods=["data_triage", "drop_only", "summarize_only"],
    )
    s.add_point(
        100,
        {
            "data_triage": summary(1.0),
            "drop_only": summary(0.5),
            "summarize_only": summary(20.0),
        },
    )
    s.add_point(
        800,
        {
            "data_triage": summary(15.0),
            "drop_only": summary(30.0),
            "summarize_only": summary(20.0),
        },
    )
    return s


class TestSeries:
    def test_missing_method_rejected(self, series):
        with pytest.raises(ValueError, match="missing methods"):
            series.add_point(1600, {"data_triage": summary(1.0)})

    def test_to_text_contains_rows_and_header(self, series):
        text = series.to_text()
        assert "Figure X" in text
        assert "rate" in text
        assert "100" in text and "800" in text
        assert "20.0 ± 0.0" in text

    def test_to_csv(self, series):
        csv = series.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("rate,data_triage_mean,data_triage_std")
        assert len(lines) == 3

    def test_method_curve(self, series):
        curve = series.method_curve("drop_only")
        assert curve == [(100, 0.5), (800, 30.0)]

    def test_crossover_found(self, series):
        # drop_only crosses above summarize_only by x=800.
        assert series.crossover("drop_only", "summarize_only") == 800

    def test_crossover_absent(self, series):
        assert series.crossover("data_triage", "summarize_only") is None
