"""Column types, schemas, and stream tuples for the mini query engine.

This is the substrate layer standing in for TelegraphCQ's catalog types.  A
:class:`Schema` is an ordered list of named, typed columns; rows themselves
are plain Python tuples (see :mod:`repro.algebra.multiset`), and a
:class:`StreamTuple` wraps a row with the arrival timestamp the windowing
layer needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, NamedTuple


class ColumnType(enum.Enum):
    """SQL-level column types supported by the engine.

    ``SYNOPSIS`` is the object-relational extension type of paper Section 5.1
    — synopsis values flow through queries like any other column value.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    SYNOPSIS = "synopsis"

    def validate(self, value: Any) -> bool:
        """Is ``value`` acceptable for a column of this type? NULL (None) always is."""
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        if self is ColumnType.TIMESTAMP:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return True  # SYNOPSIS: any object implementing the Synopsis protocol


_TYPE_NAMES = {
    "int": ColumnType.INTEGER,
    "integer": ColumnType.INTEGER,
    "bigint": ColumnType.INTEGER,
    "float": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "cstring": ColumnType.TEXT,
    "varchar": ColumnType.TEXT,
    "bool": ColumnType.BOOLEAN,
    "boolean": ColumnType.BOOLEAN,
    "timestamp": ColumnType.TIMESTAMP,
    "synopsis": ColumnType.SYNOPSIS,
}


def parse_type_name(name: str) -> ColumnType:
    """Map a SQL type name (as written in CREATE STREAM) to a ColumnType."""
    try:
        return _TYPE_NAMES[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown column type {name!r}") from None


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def __str__(self) -> str:
        return f"{self.name} {self.type.value}"


class SchemaError(ValueError):
    """Raised for schema-level mistakes: unknown/duplicate columns, arity, type."""


class Schema:
    """An ordered, immutable list of columns with name-based lookup.

    Column names are case-insensitive (folded to lower case), matching the
    PostgreSQL behaviour TelegraphCQ inherits.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: list[Column] | tuple[Column, ...]) -> None:
        self._columns = tuple(columns)
        index: dict[str, int] = {}
        for pos, col in enumerate(self._columns):
            key = col.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            index[key] = pos
        self._index = index

    @classmethod
    def of(cls, *specs: tuple[str, ColumnType]) -> "Schema":
        """Shorthand: ``Schema.of(("a", ColumnType.INTEGER), ...)``."""
        return cls([Column(name, typ) for name, typ in specs])

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self):
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def position(self, name: str) -> int:
        """Index of the column called ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in schema ({', '.join(self.names)})"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.position(name)]

    def project(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """Schema of a projection onto the given columns, in the given order."""
        return Schema([self.column(n) for n in names])

    def concat(self, other: "Schema", *, prefix_left: str = "", prefix_right: str = "") -> "Schema":
        """Schema of a cross product / join output.

        Optional prefixes (e.g. stream names) disambiguate columns that would
        otherwise collide, mirroring qualified names in SQL output schemas.
        """
        cols = [Column(prefix_left + c.name, c.type) for c in self._columns]
        cols += [Column(prefix_right + c.name, c.type) for c in other._columns]
        return Schema(cols)

    def validate_row(self, row: tuple) -> None:
        """Raise SchemaError unless ``row`` matches this schema's arity and types."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self._columns)}"
            )
        for value, col in zip(row, self._columns):
            if not col.type.validate(value):
                raise SchemaError(
                    f"value {value!r} invalid for column {col.name} ({col.type.value})"
                )

    def validate_columns(self, cols) -> None:
        """Validate a columnar batch (one value list per schema column).

        The column-at-a-time layout of the service's ``cols`` PUBLISH
        encoding: per column, one exact-type scan covers the common
        homogeneous case, falling back to a per-value check only when the
        scan sees anything unusual (NULLs, int-valued floats) so the error
        still names the offending row.  Errors match :meth:`validate_row`'s
        ``row i:``-style shape for a stable wire error message.
        """
        if len(cols) != len(self._columns):
            raise SchemaError(
                f"column count {len(cols)} != schema arity {len(self._columns)}"
            )
        nrows = len(cols[0]) if cols else 0
        for col, values in zip(self._columns, cols):
            if len(values) != nrows:
                raise SchemaError(
                    f"column {col.name} has {len(values)} values, "
                    f"expected {nrows} (ragged columnar batch)"
                )
            t = col.type
            if t is ColumnType.INTEGER and all(
                type(v) is int for v in values
            ):
                continue
            if t is ColumnType.TEXT and all(type(v) is str for v in values):
                continue
            if t is ColumnType.FLOAT and all(
                type(v) is float or type(v) is int for v in values
            ):
                continue
            validate = t.validate
            for i, v in enumerate(values):
                if not validate(v):
                    raise SchemaError(
                        f"row {i}: value {v!r} invalid for column "
                        f"{col.name} ({t.value})"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        return f"Schema({', '.join(str(c) for c in self._columns)})"


class StreamTuple(NamedTuple):
    """A row tagged with its arrival timestamp (seconds, virtual clock).

    Ordering is by timestamp first, which is what the arrival-event merge in
    the load simulator relies on.  A NamedTuple rather than a dataclass: the
    ingest hot path constructs one per admitted row, and tuple construction
    is several times cheaper than dataclass ``__init__`` while keeping the
    same (timestamp, row) lexicographic ordering and equality.
    """

    timestamp: float
    row: tuple

    def __repr__(self) -> str:
        return f"StreamTuple(t={self.timestamp:.4f}, row={self.row})"
