"""Tests for EXPLAIN output (engine plans and the triage rewrite)."""

import pytest

from repro.engine import explain
from repro.rewrite import RewriteError, SPJPlan, explain_rewrite
from repro.sql import Binder, parse_statement


@pytest.fixture
def binder(paper_catalog):
    return Binder(paper_catalog)


def plan_text(binder, sql):
    return explain(binder.bind(parse_statement(sql)))


class TestEngineExplain:
    def test_three_way_join_tree(self, binder, paper_query_text):
        text = plan_text(binder, paper_query_text)
        assert "HashAggregate group=[a]" in text
        assert text.count("HashJoin") == 2
        assert "Scan R AS R" in text
        # The inner join binds R to S first (the greedy order).
        assert text.index("R.a = S.b") > text.index("S.c = T.d")

    def test_filters_shown_on_scans(self, binder):
        text = plan_text(binder, "SELECT * FROM S WHERE S.c > 5")
        assert "filter [(S.c > 5)]" in text

    def test_cross_product_labelled(self, binder):
        text = plan_text(binder, "SELECT * FROM R, T")
        assert "NestedLoopJoin (cross)" in text

    def test_order_limit_distinct_having(self, binder):
        text = plan_text(
            binder,
            "SELECT b, COUNT(*) AS n FROM S GROUP BY b HAVING n > 1 "
            "ORDER BY n DESC LIMIT 3",
        )
        assert "Limit 3" in text
        assert "Sort [n DESC]" in text
        assert "Having" in text

    def test_union_and_subquery(self, binder):
        text = explain(
            binder.bind(
                parse_statement(
                    "(SELECT a FROM R) UNION ALL "
                    "(SELECT d FROM (SELECT d FROM T) sub)"
                )
            )
        )
        assert "UnionAll (2 arms)" in text
        assert "Subquery AS sub" in text

    def test_residual_filter(self, binder):
        text = plan_text(binder, "SELECT * FROM R, S WHERE R.a + S.b = 9")
        assert "Filter ((R.a + S.b) = 9)" in text


class TestRewriteExplain:
    def test_full_account(self, paper_catalog, paper_query_text):
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(parse_statement(paper_query_text))
        )
        text = explain_rewrite(plan)
        assert "R1: R" in text and "R3: T" in text
        assert "term 1: R_dropped ⋈ S_all ⋈ T_all" in text
        assert "term 3: R_kept ⋈ S_kept ⋈ T_dropped" in text
        assert "equijoin on S.c = T.d" in text

    def test_selections_listed(self, paper_catalog):
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(
                parse_statement("SELECT * FROM R, S WHERE R.a = S.b AND S.c > 7")
            )
        )
        text = explain_rewrite(plan)
        assert "select S.c in [8, inf]" in text

    def test_composite_key_link_shown(self, paper_catalog):
        from repro.engine import ColumnType, Schema

        paper_catalog.create_stream(
            "U", Schema.of(("x", ColumnType.INTEGER), ("y", ColumnType.INTEGER))
        )
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(
                parse_statement("SELECT * FROM S, U WHERE S.b = U.x AND S.c = U.y")
            )
        )
        text = explain_rewrite(plan)
        assert "equijoin on S.b = U.x AND S.c = U.y" in text

    def test_uncompilable_shadow_reported(self, paper_catalog):
        # A non-range local predicate defeats the shadow selection compiler.
        plan = SPJPlan.from_bound(
            Binder(paper_catalog).bind(
                parse_statement(
                    "SELECT * FROM R, S WHERE R.a = S.b AND S.c % 2 = 1"
                )
            )
        )
        text = explain_rewrite(plan)
        assert "NOT COMPILABLE" in text
