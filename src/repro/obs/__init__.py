"""repro.obs — the shared observability layer.

One package gathers the four concerns every other layer reports through:

* :mod:`repro.obs.metrics` — the dependency-free metrics registry
  (counters/gauges/histograms with Prometheus text export);
* :mod:`repro.obs.trace` — span + tuple-lifecycle tracing into a bounded
  ring buffer, exportable as Chrome-trace JSON (Perfetto) or JSON lines;
* :mod:`repro.obs.profile` — per-operator EXPLAIN ANALYZE for both
  executor modes (loaded lazily);
* :mod:`repro.obs.report` — per-window accuracy/latency accounting
  (loaded lazily: it pulls in :mod:`repro.quality`, which imports the
  core pipeline — eager import here would be circular, since the pipeline
  itself imports this package's metrics).

:class:`Observability` is the handle instrumented layers accept: it bundles
a registry, a tracer, and the per-window phase-timing store that
:func:`repro.obs.report.build_window_reports` later joins with accuracy.
Constructed with defaults it is *passive* — a fresh registry and the shared
:data:`NULL_TRACER`, so instrumented code pays only `is None` /
``tracer.enabled`` checks.
"""

from __future__ import annotations

from repro.obs.metrics import (  # noqa: F401 - re-exported package surface
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    LATENCY_BUCKETS,
    Counter,
    DeltaSnapshotter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    record_hook_error,
)
from repro.obs.trace import (  # noqa: F401 - re-exported package surface
    NULL_TRACER,
    NullTracer,
    TraceError,
    Tracer,
    merge_jsonl_traces,
    new_span_id,
    new_trace_id,
    validate_chrome_trace,
)

__all__ = [
    "Observability",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DeltaSnapshotter",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "LATENCY_BUCKETS",
    "global_registry",
    "record_hook_error",
    # trace
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceError",
    "new_trace_id",
    "new_span_id",
    "merge_jsonl_traces",
    "validate_chrome_trace",
    # lazy: profile / report / slo / top
    "OperatorProfile",
    "ProfileReport",
    "profile_execution",
    "render_profile",
    "WindowReport",
    "build_window_reports",
    "summarize_reports",
    "SLO",
    "Alert",
    "SLOEngine",
    "default_service_slos",
    "audit_service_slos",
    "Dashboard",
    "sparkline",
    "AUDIT_SCHEMA",
    "DropLedger",
    "ShedEvent",
    "attribute_window",
    "attribute_reports",
    "validate_ledger_jsonl",
    "read_ledger_jsonl",
    "scorecard_rollup",
    "render_scorecard",
    "PROF_SCHEMA",
    "ProfError",
    "SamplingProfiler",
    "set_phase",
    "current_phase",
    "validate_collapsed",
    "parse_collapsed",
    "merge_collapsed",
    "profile_diff",
    "top_functions",
    "render_top",
    "write_flamegraph_svg",
]

#: Names resolved on first attribute access (PEP 562), keeping this package
#: importable from the core pipeline without a circular import through
#: ``repro.quality`` → ``repro.core.pipeline``.
_LAZY = {
    "OperatorProfile": "repro.obs.profile",
    "ProfileReport": "repro.obs.profile",
    "profile_execution": "repro.obs.profile",
    "render_profile": "repro.obs.profile",
    "WindowReport": "repro.obs.report",
    "build_window_reports": "repro.obs.report",
    "summarize_reports": "repro.obs.report",
    "SLO": "repro.obs.slo",
    "Alert": "repro.obs.slo",
    "SLOEngine": "repro.obs.slo",
    "default_service_slos": "repro.obs.slo",
    "audit_service_slos": "repro.obs.slo",
    "Dashboard": "repro.obs.top",
    "sparkline": "repro.obs.top",
    "AUDIT_SCHEMA": "repro.obs.audit",
    "DropLedger": "repro.obs.audit",
    "ShedEvent": "repro.obs.audit",
    "attribute_window": "repro.obs.audit",
    "attribute_reports": "repro.obs.audit",
    "validate_ledger_jsonl": "repro.obs.audit",
    "read_ledger_jsonl": "repro.obs.audit",
    "scorecard_rollup": "repro.obs.audit",
    "render_scorecard": "repro.obs.audit",
    "PROF_SCHEMA": "repro.obs.prof",
    "ProfError": "repro.obs.prof",
    "SamplingProfiler": "repro.obs.prof",
    "set_phase": "repro.obs.prof",
    "current_phase": "repro.obs.prof",
    "validate_collapsed": "repro.obs.prof",
    "parse_collapsed": "repro.obs.prof",
    "merge_collapsed": "repro.obs.prof",
    "profile_diff": "repro.obs.prof",
    "top_functions": "repro.obs.prof",
    "render_top": "repro.obs.prof",
    "write_flamegraph_svg": "repro.obs.prof",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


class Observability:
    """The bundle an instrumented run records into.

    ``registry`` collects metrics, ``tracer`` collects spans and
    tuple-lifecycle events, and :attr:`phase_seconds` accumulates the
    per-window evaluation-phase timings that :class:`WindowReport` joins
    with accuracy.  Pass ``trace=True`` to record spans (the default keeps
    the shared no-op :data:`NULL_TRACER`, so metrics-only instrumentation
    stays cheap).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        *,
        trace: bool = False,
        trace_capacity: int = 65536,
        tuple_events: bool = True,
        label: str = "repro",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        if tracer is None:
            tracer = (
                Tracer(trace_capacity, tuple_events=tuple_events, label=label)
                if trace
                else NULL_TRACER
            )
        self.tracer = tracer
        if self.tracer.enabled:
            # Ring-buffer overflow must be visible, not silent: every event
            # evicted by a full trace buffer counts here.
            self.tracer.bind_drop_counter(
                self.registry.counter(
                    "trace_events_dropped_total",
                    "Trace events evicted by the ring buffer",
                )
            )
        #: window id → {phase: seconds}; run-level phases (queue drain) use
        #: :attr:`run_phase_seconds` instead, since they span windows.
        self.phase_seconds: dict[int, dict[str, float]] = {}
        self.run_phase_seconds: dict[str, float] = {}
        self._phase_hist = self.registry.histogram(
            "pipeline_phase_seconds",
            "Wall time per pipeline phase (drain/exact/shadow/merge)",
            ("phase",),
            buckets=LATENCY_BUCKETS,
        )

    def record_phase(self, window_id: int, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of ``phase`` work to ``window_id``."""
        per = self.phase_seconds.setdefault(window_id, {})
        per[phase] = per.get(phase, 0.0) + seconds
        self._phase_hist.observe(seconds, phase=phase)

    def record_run_phase(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of run-level (cross-window) ``phase`` work."""
        self.run_phase_seconds[phase] = (
            self.run_phase_seconds.get(phase, 0.0) + seconds
        )
        self._phase_hist.observe(seconds, phase=phase)

    def reset(self) -> None:
        """Clear per-run state (trace buffer and phase stores); metrics
        are cumulative and keep counting across runs."""
        self.tracer.clear()
        self.phase_seconds.clear()
        self.run_phase_seconds.clear()
