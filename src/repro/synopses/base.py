"""The ``Synopsis`` datatype: lossy relation summaries with relational ops.

Paper Section 5.1 defines an abstract object-relational datatype
``Synopsis`` together with user-defined functions that perform relational
algebra over it (``project``, ``union_all``, ``equijoin``).  This module
fixes that interface; concrete implementations live in sibling modules
(sparse cubic histograms, MHIST, dense grids, samples, sketches, wavelets).

Conventions shared by all implementations:

* A synopsis summarizes a bag of tuples over named integer-valued
  dimensions.  Each dimension has an inclusive domain ``(lo, hi)`` — the
  paper's experiments use values 1..100.
* ``total()`` estimates the number of summarized tuples; inserting a tuple
  always adds exactly its weight to ``total()`` (estimation error shows up in
  *where* the mass sits, never in how much there is).
* ``equijoin(other, self_dim, other_dim)`` estimates the bag join
  ``self ⋈ other`` on ``self_dim = other_dim``.  The join dimension is kept
  in the output under ``self_dim``'s name (needed because the experiment
  query groups by the join attribute ``R.a``); ``other``'s copy disappears.
* ``group_counts(dim)`` converts a synopsis into per-value estimated counts
  along one dimension — the bridge from shadow-plan output to approximate
  GROUP BY aggregates.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

Bounds = tuple[int, int]


class SynopsisError(ValueError):
    """Raised for dimension mismatches, misaligned joins, bad domains."""


@dataclass(frozen=True)
class Dimension:
    """A named dimension with an inclusive integer domain."""

    name: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise SynopsisError(f"empty domain for {self.name}: [{self.lo}, {self.hi}]")

    @property
    def n_values(self) -> int:
        return self.hi - self.lo + 1

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def renamed(self, name: str) -> "Dimension":
        return Dimension(name, self.lo, self.hi)


class Synopsis(abc.ABC):
    """Abstract synopsis over named dimensions."""

    dimensions: tuple[Dimension, ...]

    # ------------------------------------------------------------------
    # Dimension plumbing
    # ------------------------------------------------------------------
    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def dim_index(self, name: str) -> int:
        """Resolve a dimension by name.

        Accepts SQL-style qualified names on either side: asking for ``R.a``
        finds a dimension named ``a``, and asking for ``a`` finds a
        dimension named ``R.a`` (if unambiguous) — the shadow queries of
        paper Figure 5 pass qualified column names like ``'S.c'`` to the
        synopsis UDFs.
        """
        key = name.lower()
        for i, d in enumerate(self.dimensions):
            if d.name.lower() == key:
                return i
        if "." in key:
            return self.dim_index(key.rsplit(".", 1)[1])
        suffix = "." + key
        matches = [
            i for i, d in enumerate(self.dimensions) if d.name.lower().endswith(suffix)
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SynopsisError(
                f"ambiguous dimension {name!r} among {self.dim_names}"
            )
        raise SynopsisError(
            f"no dimension {name!r} in synopsis over {self.dim_names}"
        )

    def dimension(self, name: str) -> Dimension:
        return self.dimensions[self.dim_index(name)]

    def _check_value(self, values: Sequence[float]) -> None:
        if len(values) != len(self.dimensions):
            raise SynopsisError(
                f"tuple arity {len(values)} != {len(self.dimensions)} dimensions"
            )
        for v, d in zip(values, self.dimensions):
            if not d.contains(v):
                raise SynopsisError(
                    f"value {v!r} outside domain [{d.lo}, {d.hi}] of {d.name}"
                )

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def insert(self, values: Sequence[float], weight: float = 1.0) -> None:
        """Fold one tuple (its dimension values, in order) into the synopsis."""

    def insert_many(self, rows: Iterable[Sequence[float]]) -> None:
        for row in rows:
            self.insert(row)

    def insert_bulk(
        self,
        rows: Iterable[Sequence[float]],
        positions: Sequence[int] | None = None,
        weight: float = 1.0,
    ) -> None:
        """Fold many tuples at once, in order.

        When ``positions`` is given, ``rows`` are full stream rows and
        ``positions`` selects the dimension fields (the triage queue's
        batched shed flush); with ``positions=None`` each row is already a
        dimension-value vector.  Implementations may override with a fused
        loop, but must preserve insert order and per-insert semantics —
        reservoir samples are order- and RNG-sensitive, and every row adds
        exactly ``weight`` to :meth:`total`.
        """
        insert = self.insert
        if positions is None:
            for row in rows:
                insert(row, weight)
        else:
            for row in rows:
                insert([row[p] for p in positions], weight)

    @abc.abstractmethod
    def total(self) -> float:
        """Estimated number of summarized tuples."""

    @abc.abstractmethod
    def project(self, dims: Sequence[str]) -> "Synopsis":
        """Marginalize onto the named dimensions (bag projection)."""

    @abc.abstractmethod
    def union_all(self, other: "Synopsis") -> "Synopsis":
        """Bag union: a synopsis summarizing both input bags."""

    @abc.abstractmethod
    def equijoin(self, other: "Synopsis", self_dim: str, other_dim: str) -> "Synopsis":
        """Estimate the equijoin on ``self_dim = other_dim``.

        Output dimensions: all of ``self``'s, then ``other``'s minus its join
        dimension.  The join dimension survives under ``self_dim``'s name.
        """

    def equijoin_multi(
        self, other: "Synopsis", pairs: Sequence[tuple[str, str]]
    ) -> "Synopsis":
        """Equijoin on several key pairs at once (composite keys).

        The default supports exactly one pair (delegating to
        :meth:`equijoin`); grid-aligned histogram families override it.
        """
        if len(pairs) == 1:
            return self.equijoin(other, pairs[0][0], pairs[0][1])
        raise SynopsisError(
            f"{type(self).__name__} does not support multi-key joins "
            f"({len(pairs)} key pairs requested)"
        )

    @abc.abstractmethod
    def select_range(self, dim: str, lo: int, hi: int) -> "Synopsis":
        """σ: keep mass whose ``dim`` value lies in ``[lo, hi]``."""

    @abc.abstractmethod
    def group_counts(self, dim: str) -> dict[int, float]:
        """Estimated per-value counts along one dimension (marginal)."""

    @abc.abstractmethod
    def scale(self, factor: float) -> "Synopsis":
        """Multiply all mass by ``factor`` (used by sampling estimators)."""

    @abc.abstractmethod
    def storage_size(self) -> int:
        """Number of storage cells (buckets / samples / coefficients)."""

    @abc.abstractmethod
    def empty_like(self) -> "Synopsis":
        """A fresh, empty synopsis with the same dimensions and parameters."""

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.total() <= 0

    def estimate_point(self, **assignments: int) -> float:
        """Estimated count of tuples matching the given dim=value equalities."""
        syn: Synopsis = self
        for dim, value in assignments.items():
            syn = syn.select_range(dim, value, value)
        return syn.total()

    def __repr__(self) -> str:
        dims = ", ".join(f"{d.name}[{d.lo},{d.hi}]" for d in self.dimensions)
        return (
            f"{type(self).__name__}({dims}, total={self.total():.1f}, "
            f"cells={self.storage_size()})"
        )


class SynopsisFactory(abc.ABC):
    """Creates empty synopses for a stream's dimensions.

    The triage queue asks its factory for a fresh synopsis at every window
    boundary; the factory pins the synopsis family and its tuning parameters
    (bucket width, budget, ...), which is how experiments swap synopsis types
    without touching the pipeline.
    """

    @abc.abstractmethod
    def create(self, dimensions: Sequence[Dimension]) -> Synopsis:
        """A fresh, empty synopsis over the given dimensions."""

    @property
    def name(self) -> str:
        return type(self).__name__


def require_same_dimensions(a: Synopsis, b: Synopsis) -> None:
    """Union compatibility check shared by implementations."""
    if a.dimensions != b.dimensions:
        raise SynopsisError(
            f"dimension mismatch: {a.dim_names} {[(d.lo, d.hi) for d in a.dimensions]}"
            f" vs {b.dim_names} {[(d.lo, d.hi) for d in b.dimensions]}"
        )
